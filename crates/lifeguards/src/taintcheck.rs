//! TaintCheck: dynamic information-flow tracking for exploit detection.

use std::collections::HashSet;

use lba_lifeguard::{
    DegradationPolicy, EpochLifeguard, Finding, FindingKind, HandlerCtx, IdempotencyClass,
    Lifeguard, ShadowMemory, ShadowRegs,
};
use lba_record::{EventKind, EventMask, EventRecord};

use crate::taint_summary::{PendingFinding, SymTaint, TaintDep, TaintSummarizer, TaintSummary};

/// Shadow region base for TaintCheck's per-byte taint map.
const SHADOW_BASE: u64 = 0x20_0000_0000;

/// The TaintCheck lifeguard.
///
/// Marks every byte written by `recv` (external input) as tainted, then
/// propagates taint through **all** instructions — the property the paper
/// singles out as LBA's advantage over address-triggered schemes like
/// iWatcher ("LBA … supports tracking data flow through all instructions —
/// a crucial attribute for certain lifeguards such as TaintCheck"):
///
/// * register computation ORs the input operands' taint into the output;
/// * loads pull taint from shadow memory into the output register;
/// * stores push the source register's taint to shadow memory;
/// * loading an immediate (no inputs) clears the output's taint.
///
/// An indirect jump or call through a tainted register, or a syscall with a
/// tainted argument register, is reported as an exploit.
#[derive(Debug, Default)]
pub struct TaintCheck {
    mem_taint: ShadowMemory<u8>,
    reg_taint: ShadowRegs<bool>,
    /// Reports already made, keyed `(pc, kind, tid)` — the same identity
    /// the parallel modes' `(kind, pc, addr, tid)` merge key preserves,
    /// so an identical exploit reached by a different thread is still
    /// reported.
    reported: HashSet<(u64, FindingKind, u8)>,
    tainted_bytes_introduced: u64,
}

impl TaintCheck {
    /// Creates a TaintCheck lifeguard with no taint.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total input bytes marked tainted (diagnostics).
    #[must_use]
    pub fn tainted_bytes_introduced(&self) -> u64 {
        self.tainted_bytes_introduced
    }

    /// Whether register `reg` of thread `tid` is currently tainted
    /// (test/diagnostic hook).
    #[must_use]
    pub fn reg_is_tainted(&self, tid: u8, reg: u8) -> bool {
        self.reg_taint.get(tid, reg)
    }

    /// Whether the byte at application address `addr` is tainted
    /// (test/diagnostic hook).
    #[must_use]
    pub fn byte_is_tainted(&self, addr: u64) -> bool {
        self.mem_taint.get(addr) != 0
    }

    pub(crate) fn shadow_addr(addr: u64) -> u64 {
        SHADOW_BASE + addr
    }

    fn range_tainted(&self, addr: u64, len: u32) -> bool {
        // The per-page non-default counters answer "any byte tainted?"
        // without rescanning resident pages byte by byte.
        self.mem_taint.range_any_nonzero(addr, u64::from(len))
    }

    fn report_once(
        &mut self,
        rec: &EventRecord,
        kind: FindingKind,
        message: String,
        ctx: &mut HandlerCtx<'_>,
    ) {
        if self.reported.insert((rec.pc, kind, rec.tid)) {
            ctx.report(Finding {
                lifeguard: "taintcheck",
                kind,
                pc: rec.pc,
                tid: rec.tid,
                addr: rec.addr,
                message,
            });
        }
    }

    /// Concretizes a symbolic value against the *current* (epoch-entry)
    /// state: definite taint, or any dep register/range tainted.
    fn resolve(&self, value: &SymTaint) -> bool {
        value.definite
            || value.deps.iter().any(|dep| match *dep {
                TaintDep::Reg { tid, reg } => self.reg_taint.get(tid, reg),
                TaintDep::Mem { addr, len } => self.mem_taint.range_any_nonzero(addr, len),
            })
    }
}

/// The merge-thread half of epoch-parallel TaintCheck: resolve the
/// summary's conditional findings and symbolic out-state against the
/// concrete epoch-entry state (all of it *before* applying any write),
/// then apply the writes. See `taint_summary` for why this equals
/// running the epoch sequentially.
impl EpochLifeguard for TaintCheck {
    type Summarizer = TaintSummarizer;

    fn summarizer(&self) -> TaintSummarizer {
        TaintSummarizer::new()
    }

    fn absorb(&mut self, summary: TaintSummary, ctx: &mut HandlerCtx<'_>) {
        // Phase 1: resolve every symbolic value against the entry state.
        // Conditional findings fire (or not) and report through the same
        // per-(pc, kind, tid) dedup as the sequential run, in program
        // order; the syscall case picks the first firing guard of r1..r3
        // exactly as the sequential `(1..=3).find(..)` does.
        for pending in &summary.findings {
            ctx.alu(2);
            match pending {
                PendingFinding::Jump {
                    pc,
                    tid,
                    addr,
                    guard,
                } => {
                    if self.resolve(guard)
                        && self.reported.insert((*pc, FindingKind::TaintedJump, *tid))
                    {
                        ctx.report(Finding {
                            lifeguard: "taintcheck",
                            kind: FindingKind::TaintedJump,
                            pc: *pc,
                            tid: *tid,
                            addr: *addr,
                            message: format!(
                                "indirect control transfer to {addr:#x} through tainted register"
                            ),
                        });
                    }
                }
                PendingFinding::Syscall {
                    pc,
                    tid,
                    addr,
                    size,
                    guards,
                } => {
                    let tainted_arg = (1..=3u8).find(|&r| self.resolve(&guards[r as usize - 1]));
                    if let Some(reg) = tainted_arg {
                        if self
                            .reported
                            .insert((*pc, FindingKind::TaintedSyscallArg, *tid))
                        {
                            ctx.report(Finding {
                                lifeguard: "taintcheck",
                                kind: FindingKind::TaintedSyscallArg,
                                pc: *pc,
                                tid: *tid,
                                addr: *addr,
                                message: format!(
                                    "syscall {size} with tainted argument register r{reg}"
                                ),
                            });
                        }
                    }
                }
            }
        }
        let regs: Vec<((u8, u8), bool)> = summary
            .reg_out
            .iter()
            .map(|(key, value)| {
                ctx.alu(1);
                (*key, self.resolve(value))
            })
            .collect();
        let values: Vec<u8> = summary
            .values
            .iter()
            .map(|value| {
                ctx.alu(1);
                u8::from(self.resolve(value))
            })
            .collect();

        // Phase 2: apply the resolved out-state. Touched shadow bytes are
        // walked as runs of equal value ids per resident summary page.
        for ((tid, reg), tainted) in regs {
            self.reg_taint.set(tid, reg, tainted);
        }
        for (base, cells) in summary.mem_out.pages() {
            let mut i = 0;
            while i < cells.len() {
                let id = cells[i];
                let mut run = 1;
                while i + run < cells.len() && cells[i + run] == id {
                    run += 1;
                }
                if id != 0 {
                    let addr = base.wrapping_add(i as u64);
                    ctx.shadow_write(Self::shadow_addr(addr), run as u32);
                    self.mem_taint
                        .set_range(addr, run as u64, values[(id - 1) as usize]);
                }
                i += run;
            }
        }
        self.tainted_bytes_introduced += summary.tainted_bytes;
    }
}

impl Lifeguard for TaintCheck {
    fn name(&self) -> &'static str {
        "taintcheck"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Alu,
            EventKind::Load,
            EventKind::Store,
            EventKind::Alloc,
            EventKind::Recv,
            EventKind::IndirectJump,
            EventKind::Syscall,
        ])
    }

    /// Capture-side soundness contract: **none**. Every access propagates
    /// taint — a load *writes* its destination register's taint, a store
    /// *writes* shadow memory — so a "duplicate" is never a re-check of a
    /// settled verdict; dropping one desynchronises the whole downstream
    /// taint flow (the same sequential-dependence property that excludes
    /// TaintCheck from address-interleaved sharding). The filter
    /// therefore never touches TaintCheck's stream, whatever the window
    /// size.
    fn idempotency(&self) -> IdempotencyClass {
        IdempotencyClass::None
    }

    /// Degradation contract: TaintCheck tolerates **nothing**, for the
    /// same reason its idempotency class is `None` writ large. Taint is
    /// a property of the *complete* data-flow graph: an `alu` record
    /// moves taint between registers (and an immediate clears it), so
    /// no kind is profile-only; a repeated access is not idempotent
    /// (the taint it copies may differ each time), so no window may
    /// widen; and no capture-side oracle can call an access "settled" —
    /// any load can pull taint into a register that later reaches an
    /// indirect jump. Declaring [`DegradationPolicy::none`] makes the
    /// guarantee structural: the capture controller is never even
    /// constructed for a none-policy, so TaintCheck's degraded and
    /// undegraded pipelines are the same code path and its stream is
    /// provably untouched under any load.
    fn degradation(&self) -> DegradationPolicy {
        DegradationPolicy::none()
    }

    fn on_event(&mut self, rec: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        match rec.kind {
            EventKind::Alu => {
                // taint(out) = taint(in1) | taint(in2): two shadow-register
                // reads, the merge, and the shadow-register write.
                ctx.alu(3);
                if let Some(out) = rec.out {
                    let t = rec.in1.is_some_and(|r| self.reg_taint.get(rec.tid, r))
                        || rec.in2.is_some_and(|r| self.reg_taint.get(rec.tid, r));
                    self.reg_taint.set(rec.tid, out, t);
                }
            }
            EventKind::Load => {
                // Shadow-address arithmetic, the per-byte taint merge over
                // the loaded width, and the shadow-register write.
                ctx.alu(4);
                ctx.shadow_read(Self::shadow_addr(rec.addr), rec.size);
                if let Some(out) = rec.out {
                    let t = self.range_tainted(rec.addr, rec.size);
                    self.reg_taint.set(rec.tid, out, t);
                }
            }
            EventKind::Store => {
                // Shadow-address arithmetic plus replicating the register
                // taint across the stored bytes.
                ctx.alu(4);
                ctx.shadow_write(Self::shadow_addr(rec.addr), rec.size);
                let t = rec.in1.is_some_and(|r| self.reg_taint.get(rec.tid, r));
                // Clean stores over untouched shadow allocate nothing.
                self.mem_taint
                    .set_range(rec.addr, u64::from(rec.size), u8::from(t));
            }
            EventKind::Alloc => {
                // A fresh pointer is untainted; clear the output register.
                ctx.alu(1);
                if let Some(out) = rec.out {
                    self.reg_taint.set(rec.tid, out, false);
                }
            }
            EventKind::Recv => {
                // Taint the received range; chunked shadow stores.
                ctx.alu(2);
                self.tainted_bytes_introduced += u64::from(rec.size);
                let mut off = 0u64;
                let len = u64::from(rec.size);
                while off < len {
                    let chunk = (len - off).min(8);
                    ctx.shadow_write(Self::shadow_addr(rec.addr + off), chunk as u32);
                    ctx.alu(1);
                    off += chunk;
                }
                self.mem_taint.set_range(rec.addr, len, 1);
            }
            EventKind::IndirectJump => {
                ctx.alu(2);
                if rec.in1.is_some_and(|r| self.reg_taint.get(rec.tid, r)) {
                    self.report_once(
                        rec,
                        FindingKind::TaintedJump,
                        format!(
                            "indirect control transfer to {:#x} through tainted register",
                            rec.addr
                        ),
                        ctx,
                    );
                }
            }
            EventKind::Syscall => {
                // Check the argument registers (r1..r3 by convention).
                ctx.alu(3);
                let tainted_arg = (1..=3u8).find(|&r| self.reg_taint.get(rec.tid, r));
                if let Some(reg) = tainted_arg {
                    self.report_once(
                        rec,
                        FindingKind::TaintedSyscallArg,
                        format!("syscall {} with tainted argument register r{reg}", rec.size),
                        ctx,
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::{MemSystem, MemSystemConfig};
    use lba_lifeguard::DispatchEngine;

    struct Rig {
        mem: MemSystem,
        engine: DispatchEngine,
        findings: Vec<Finding>,
        lg: TaintCheck,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                mem: MemSystem::new(MemSystemConfig::dual_core()),
                engine: DispatchEngine::default(),
                findings: Vec::new(),
                lg: TaintCheck::new(),
            }
        }

        fn deliver(&mut self, rec: EventRecord) {
            self.engine
                .deliver(&mut self.lg, &rec, &mut self.mem, 1, &mut self.findings);
        }
    }

    const BUF: u64 = 0x4000_0000;

    fn recv(addr: u64, size: u32) -> EventRecord {
        EventRecord {
            pc: 0x1000,
            kind: EventKind::Recv,
            tid: 0,
            in1: Some(1),
            in2: Some(2),
            out: None,
            addr,
            size,
        }
    }

    fn ijump(in_reg: u8, target: u64) -> EventRecord {
        EventRecord {
            pc: 0x2000,
            kind: EventKind::IndirectJump,
            tid: 0,
            in1: Some(in_reg),
            in2: None,
            out: None,
            addr: target,
            size: 0,
        }
    }

    fn alu(out: u8, in1: Option<u8>, in2: Option<u8>) -> EventRecord {
        EventRecord::alu(0x1800, 0, in1, in2, Some(out))
    }

    #[test]
    fn recv_taints_memory() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 16));
        assert!(rig.lg.byte_is_tainted(BUF));
        assert!(rig.lg.byte_is_tainted(BUF + 15));
        assert!(!rig.lg.byte_is_tainted(BUF + 16));
        assert_eq!(rig.lg.tainted_bytes_introduced(), 16);
    }

    #[test]
    fn load_propagates_taint_to_register() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8));
        assert!(rig.lg.reg_is_tainted(0, 3));
    }

    #[test]
    fn alu_merges_operand_taint() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8));
        rig.deliver(alu(4, Some(3), Some(5))); // tainted | clean
        assert!(rig.lg.reg_is_tainted(0, 4));
        rig.deliver(alu(4, Some(5), Some(6))); // clean | clean overwrites
        assert!(!rig.lg.reg_is_tainted(0, 4));
    }

    #[test]
    fn immediate_move_clears_taint() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8));
        assert!(rig.lg.reg_is_tainted(0, 3));
        rig.deliver(EventRecord::alu(0x1010, 0, None, None, Some(3))); // movi r3
        assert!(!rig.lg.reg_is_tainted(0, 3));
    }

    #[test]
    fn store_then_load_round_trips_taint() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8));
        // Store the tainted register elsewhere, then load it back into a
        // different register.
        rig.deliver(EventRecord::store(
            0x1010,
            0,
            Some(3),
            Some(4),
            BUF + 0x100,
            8,
        ));
        rig.deliver(EventRecord::load(
            0x1018,
            0,
            Some(4),
            Some(5),
            BUF + 0x100,
            8,
        ));
        assert!(rig.lg.reg_is_tainted(0, 5));
    }

    #[test]
    fn clean_store_clears_memory_taint() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        assert!(rig.lg.byte_is_tainted(BUF));
        rig.deliver(EventRecord::store(0x1010, 0, Some(7), Some(4), BUF, 8));
        assert!(!rig.lg.byte_is_tainted(BUF), "overwritten by clean data");
    }

    #[test]
    fn tainted_indirect_jump_detected() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8));
        rig.deliver(ijump(3, 0x3000));
        assert_eq!(rig.findings.len(), 1);
        assert_eq!(rig.findings[0].kind, FindingKind::TaintedJump);
    }

    #[test]
    fn clean_indirect_jump_not_reported() {
        let mut rig = Rig::new();
        rig.deliver(ijump(3, 0x3000));
        assert!(rig.findings.is_empty());
    }

    #[test]
    fn tainted_syscall_arg_detected() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(1), BUF, 8)); // into r1
        rig.deliver(EventRecord {
            pc: 0x1010,
            kind: EventKind::Syscall,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 0,
            size: 4,
        });
        assert_eq!(rig.findings.len(), 1);
        assert_eq!(rig.findings[0].kind, FindingKind::TaintedSyscallArg);
    }

    #[test]
    fn taint_is_per_thread_in_registers() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8)); // t0.r3
        assert!(rig.lg.reg_is_tainted(0, 3));
        assert!(!rig.lg.reg_is_tainted(1, 3));
    }

    #[test]
    fn alloc_clears_output_register_taint() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8));
        assert!(rig.lg.reg_is_tainted(0, 3));
        rig.deliver(EventRecord {
            pc: 0x1010,
            kind: EventKind::Alloc,
            tid: 0,
            in1: Some(1),
            in2: None,
            out: Some(3),
            addr: BUF + 0x1000,
            size: 64,
        });
        assert!(!rig.lg.reg_is_tainted(0, 3));
    }

    #[test]
    fn duplicate_exploit_reports_suppressed() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF, 8));
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8));
        rig.deliver(ijump(3, 0x3000));
        rig.deliver(ijump(3, 0x3000));
        assert_eq!(rig.findings.len(), 1);
    }

    #[test]
    fn same_exploit_site_reported_per_thread() {
        // Regression: the dedup key used to be (pc, kind) only, so the
        // second thread reaching the same tainted jump was silently
        // dropped — diverging from the (kind, pc, addr, tid) merge key
        // the parallel modes dedup by.
        let mut rig = Rig::new();
        for tid in [0u8, 1] {
            let mut r = recv(BUF, 8);
            r.tid = tid;
            rig.deliver(r);
            let mut load = EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8);
            load.tid = tid;
            rig.deliver(load);
            let mut jump = ijump(3, 0x3000);
            jump.tid = tid;
            rig.deliver(jump);
            rig.deliver(jump); // same thread again: still deduped
        }
        assert_eq!(rig.findings.len(), 2, "one report per thread");
        assert_eq!(rig.findings[0].tid, 0);
        assert_eq!(rig.findings[1].tid, 1);
    }

    /// Drives `records` sequentially through one TaintCheck, and in
    /// epoch-sized chunks through summarize-then-absorb; both must land
    /// on identical findings, register/memory taint, and diagnostics.
    fn check_epoch_equivalence(records: &[EventRecord], epoch_len: usize) {
        let mut seq = Rig::new();
        for rec in records {
            seq.deliver(*rec);
        }

        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let engine = DispatchEngine::default();
        let mut master = TaintCheck::new();
        let mut summarizer = master.summarizer();
        let mut findings = Vec::new();
        let mut summaries = Vec::new();
        for chunk in records.chunks(epoch_len) {
            let mut scratch = Vec::new();
            engine.deliver_batch(&mut summarizer, chunk, &mut mem, 1, &mut scratch);
            assert!(scratch.is_empty(), "summarizers never report directly");
            summaries.push(summarizer.finish_epoch());
        }
        use lba_lifeguard::EpochSummarizer as _;
        assert!(!summarizer.is_open());
        for summary in summaries {
            let mut ctx = HandlerCtx::new(&mut mem, 1, &mut findings);
            master.absorb(summary, &mut ctx);
        }

        assert_eq!(findings, seq.findings, "epoch {epoch_len}");
        assert_eq!(
            master.tainted_bytes_introduced(),
            seq.lg.tainted_bytes_introduced()
        );
        for tid in 0..2u8 {
            for reg in 0..16u8 {
                assert_eq!(
                    master.reg_is_tainted(tid, reg),
                    seq.lg.reg_is_tainted(tid, reg),
                    "t{tid}.r{reg} at epoch {epoch_len}"
                );
            }
        }
        for addr in BUF..BUF + 0x200 {
            assert_eq!(
                master.byte_is_tainted(addr),
                seq.lg.byte_is_tainted(addr),
                "byte {addr:#x} at epoch {epoch_len}"
            );
        }
    }

    #[test]
    fn summarize_then_absorb_equals_sequential() {
        // A stream exercising every rule: recv taint, loads/stores with
        // partial overlap, alu merges and clears, alloc clears, a clean
        // and a tainted jump, syscalls with first-tainted-register
        // selection, and cross-epoch taint flow through registers and
        // memory.
        let syscall = |pc: u64| EventRecord {
            pc,
            kind: EventKind::Syscall,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 0,
            size: 7,
        };
        let records = vec![
            recv(BUF, 16),
            EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8),
            alu(4, Some(3), Some(5)),
            EventRecord::store(0x1010, 0, Some(4), Some(6), BUF + 0x40, 8),
            syscall(0x1014),
            EventRecord::load(0x1018, 0, Some(6), Some(1), BUF + 0x40, 4),
            syscall(0x101c),                                       // r1 now tainted
            syscall(0x101c),                                       // deduped
            EventRecord::alu(0x1020, 0, None, None, Some(3)),      // clear r3
            ijump(3, 0x3000),                                      // clean jump
            EventRecord::store(0x1024, 0, Some(3), None, BUF, 16), // clean store over taint
            EventRecord::load(0x1028, 0, Some(2), Some(7), BUF + 8, 8),
            ijump(7, 0x3000), // tainted jump
            ijump(7, 0x3008), // deduped (same pc via helper), different target
            EventRecord {
                pc: 0x1030,
                kind: EventKind::Alloc,
                tid: 0,
                in1: Some(1),
                in2: None,
                out: Some(7),
                addr: BUF + 0x100,
                size: 32,
            },
            ijump(7, 0x3000), // r7 cleared by alloc: clean again (pc differs per helper? no — same pc, deduped anyway)
            EventRecord::load(0x1034, 0, Some(2), Some(5), BUF + 0x44, 2),
            EventRecord::store(0x1038, 0, Some(5), None, BUF + 0x180, 4),
        ];
        for epoch_len in [1, 2, 3, 5, 7, records.len()] {
            check_epoch_equivalence(&records, epoch_len);
        }
    }

    #[test]
    fn partial_overlap_load_picks_up_taint() {
        let mut rig = Rig::new();
        rig.deliver(recv(BUF + 4, 4));
        // 8-byte load straddling clean and tainted bytes.
        rig.deliver(EventRecord::load(0x1008, 0, Some(2), Some(3), BUF, 8));
        assert!(rig.lg.reg_is_tainted(0, 3));
    }
}
