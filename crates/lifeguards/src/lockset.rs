//! LockSet: Eraser-style data-race detection.

use std::collections::{HashMap, HashSet};

use lba_lifeguard::{
    DegradationPolicy, Finding, FindingKind, HandlerCtx, IdempotencyClass, Lifeguard, ShadowMemory,
    WindowSpec,
};
use lba_mem::layout;
use lba_record::{EventKind, EventMask, EventRecord};

/// Shadow region base for per-word access state.
const SHADOW_BASE: u64 = 0x30_0000_0000;
/// Shadow region base for the lockset descriptor table.
const TABLE_BASE: u64 = 0x38_0000_0000;

/// Monitored granule: one 32-bit word, as in the original Eraser.
const GRANULE: u64 = 4;

/// Word states of the Eraser state machine.
const VIRGIN: u64 = 0;
const EXCLUSIVE: u64 = 1;
const SHARED: u64 = 2;
const SHARED_MOD: u64 = 3;

/// Configuration of the [`LockSet`] lifeguard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockSetConfig {
    /// Whether lockset operations (add/remove/intersect) are memoised.
    ///
    /// The LBA lifeguard interns locksets and caches operation results —
    /// cheap table lookups in the common case. Disabling memoisation makes
    /// every operation recompute over the set elements, modelling the
    /// software-only race detectors of the paper's era (the DBI baseline
    /// runs in this mode; DESIGN.md §5).
    pub memoize: bool,
    /// Extra instructions per monitored access for entering/leaving the
    /// checking routine. Zero under LBA, where the dispatch hardware jumps
    /// straight into the handler; Valgrind-era software race detectors
    /// paid a helper-function call (spills, argument marshalling) at every
    /// access, which is a large part of their 30-85x slowdowns.
    pub call_overhead: u64,
}

impl Default for LockSetConfig {
    fn default() -> Self {
        LockSetConfig {
            memoize: true,
            call_overhead: 0,
        }
    }
}

/// An interning table of locksets with memoised add/remove/intersect.
///
/// Lockset id 0 is the empty set. Operation methods return the result id
/// plus the modelled instruction cost of the operation.
#[derive(Debug, Default)]
struct LocksetTable {
    sets: Vec<Vec<u64>>,
    intern: HashMap<Vec<u64>, u32>,
    add_cache: HashMap<(u32, u64), u32>,
    remove_cache: HashMap<(u32, u64), u32>,
    intersect_cache: HashMap<(u32, u32), u32>,
    memoize: bool,
}

impl LocksetTable {
    fn new(memoize: bool) -> Self {
        let mut t = LocksetTable {
            memoize,
            ..Default::default()
        };
        t.sets.push(Vec::new()); // id 0: empty lockset
        t.intern.insert(Vec::new(), 0);
        t
    }

    fn intern(&mut self, set: Vec<u64>) -> u32 {
        if let Some(&id) = self.intern.get(&set) {
            return id;
        }
        let id = u32::try_from(self.sets.len()).expect("fewer than 2^32 locksets");
        self.sets.push(set.clone());
        self.intern.insert(set, id);
        id
    }

    fn elements(&self, id: u32) -> &[u64] {
        &self.sets[id as usize]
    }

    fn add(&mut self, id: u32, lock: u64) -> (u32, u64) {
        if self.memoize {
            if let Some(&hit) = self.add_cache.get(&(id, lock)) {
                return (hit, 4);
            }
        }
        let mut set = self.sets[id as usize].clone();
        let cost = 6 + 2 * set.len() as u64;
        if let Err(pos) = set.binary_search(&lock) {
            set.insert(pos, lock);
        }
        let out = self.intern(set);
        if self.memoize {
            self.add_cache.insert((id, lock), out);
        }
        (out, cost)
    }

    fn remove(&mut self, id: u32, lock: u64) -> (u32, u64) {
        if self.memoize {
            if let Some(&hit) = self.remove_cache.get(&(id, lock)) {
                return (hit, 4);
            }
        }
        let mut set = self.sets[id as usize].clone();
        let cost = 6 + 2 * set.len() as u64;
        if let Ok(pos) = set.binary_search(&lock) {
            set.remove(pos);
        }
        let out = self.intern(set);
        if self.memoize {
            self.remove_cache.insert((id, lock), out);
        }
        (out, cost)
    }

    fn intersect(&mut self, a: u32, b: u32) -> (u32, u64) {
        if a == b {
            // Id equality is one compare, but loading both ids and the
            // compare itself still cost a few instructions.
            return (a, 3);
        }
        if self.memoize {
            // Memo hit: hash the id pair, probe the cache, compare tags.
            if let Some(&hit) = self.intersect_cache.get(&(a, b)) {
                return (hit, 8);
            }
        }
        let (sa, sb) = (&self.sets[a as usize], &self.sets[b as usize]);
        let cost = 6 + 3 * (sa.len() + sb.len()) as u64;
        let out_set: Vec<u64> = sa
            .iter()
            .filter(|x| sb.binary_search(x).is_ok())
            .copied()
            .collect();
        let out = self.intern(out_set);
        if self.memoize {
            self.intersect_cache.insert((a, b), out);
        }
        (out, cost)
    }
}

fn pack(state: u64, payload: u64) -> u64 {
    (payload << 2) | state
}

fn unpack(cell: u64) -> (u64, u64) {
    (cell & 3, cell >> 2)
}

/// The LockSet lifeguard (Eraser algorithm).
///
/// For every shared-region word it maintains the Virgin → Exclusive →
/// Shared / Shared-Modified state machine with a *candidate lockset*: the
/// set of locks consistently held across all accesses. A write to a word
/// whose candidate set becomes empty is reported as a possible data race.
///
/// Thread-private stack accesses are not monitored (they cannot race).
#[derive(Debug)]
pub struct LockSet {
    table: LocksetTable,
    /// Per-thread current lockset id.
    held: Vec<u32>,
    shadow: ShadowMemory<u64>,
    reported: HashSet<u64>,
    races: u64,
    checked: u64,
    call_overhead: u64,
}

impl Default for LockSet {
    fn default() -> Self {
        Self::new()
    }
}

impl LockSet {
    /// Creates a LockSet lifeguard with the default (memoised) config.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(LockSetConfig::default())
    }

    /// Creates a LockSet lifeguard with an explicit configuration.
    #[must_use]
    pub fn with_config(config: LockSetConfig) -> Self {
        LockSet {
            table: LocksetTable::new(config.memoize),
            held: Vec::new(),
            shadow: ShadowMemory::new(),
            reported: HashSet::new(),
            races: 0,
            checked: 0,
            call_overhead: config.call_overhead,
        }
    }

    /// Number of race reports so far.
    #[must_use]
    pub fn races(&self) -> u64 {
        self.races
    }

    /// Number of monitored accesses so far.
    #[must_use]
    pub fn checked_accesses(&self) -> u64 {
        self.checked
    }

    /// The locks currently held by thread `tid` (diagnostics).
    #[must_use]
    pub fn locks_held(&self, tid: u8) -> &[u64] {
        let id = self.held.get(tid as usize).copied().unwrap_or(0);
        self.table.elements(id)
    }

    fn held_id(&mut self, tid: u8) -> u32 {
        let idx = tid as usize;
        if self.held.len() <= idx {
            self.held.resize(idx + 1, 0);
        }
        self.held[idx]
    }

    fn report_race(&mut self, rec: &EventRecord, granule: u64, ctx: &mut HandlerCtx<'_>) {
        if self.reported.insert(granule) {
            self.races += 1;
            ctx.report(Finding {
                lifeguard: "lockset",
                kind: FindingKind::DataRace,
                pc: rec.pc,
                tid: rec.tid,
                addr: granule * GRANULE,
                message: format!(
                    "word {:#x} accessed with empty candidate lockset ({} by thread {})",
                    granule * GRANULE,
                    rec.kind,
                    rec.tid
                ),
            });
        }
    }

    fn check_granule(&mut self, rec: &EventRecord, granule: u64, ctx: &mut HandlerCtx<'_>) {
        let is_write = rec.kind == EventKind::Store;
        let tid = rec.tid;
        let shadow_addr = SHADOW_BASE + granule * 8;
        // Granule decompose + shadow-address arithmetic.
        ctx.alu(3);
        ctx.shadow_read(shadow_addr, 8);
        // Eraser's per-access fixed work: unpack the shadow word (state,
        // payload, read/write mode bits), dispatch on the state, and keep
        // the access-mode bits current with a repack + write-back.
        ctx.alu(4);
        let (state, payload) = unpack(self.shadow.get(granule));
        match state {
            VIRGIN => {
                self.shadow.set(granule, pack(EXCLUSIVE, u64::from(tid)));
                ctx.shadow_write(shadow_addr, 8);
                ctx.alu(2);
            }
            EXCLUSIVE => {
                if payload == u64::from(tid) {
                    // Same owner: update the mode bits (read vs write) and
                    // write the shadow word back.
                    ctx.alu(3);
                    ctx.shadow_write(shadow_addr, 8);
                    return;
                }
                // Second thread: enter the shared states with the
                // accessor's current lockset as candidate set.
                let candidate = self.held_id(tid);
                let next = if is_write { SHARED_MOD } else { SHARED };
                self.shadow.set(granule, pack(next, u64::from(candidate)));
                ctx.shadow_write(shadow_addr, 8);
                ctx.alu(3);
                if next == SHARED_MOD && self.table.elements(candidate).is_empty() {
                    self.report_race(rec, granule, ctx);
                }
            }
            SHARED | SHARED_MOD => {
                let held = self.held_id(tid);
                let old_id = u32::try_from(payload).expect("payload is a lockset id");
                // Pointer chase into the lockset descriptor table (header
                // word plus the first element word).
                ctx.shadow_read(TABLE_BASE + payload * 16, 8);
                ctx.shadow_read(TABLE_BASE + payload * 16 + 8, 8);
                let (new_id, cost) = self.table.intersect(old_id, held);
                ctx.alu(cost);
                let next = if is_write || state == SHARED_MOD {
                    SHARED_MOD
                } else {
                    SHARED
                };
                // Mode bits always change on a read↔write alternation;
                // Eraser writes the shadow word back each time.
                self.shadow.set(granule, pack(next, u64::from(new_id)));
                ctx.shadow_write(shadow_addr, 8);
                ctx.alu(4);
                if next == SHARED_MOD && self.table.elements(new_id).is_empty() {
                    self.report_race(rec, granule, ctx);
                }
            }
            _ => unreachable!("2-bit state"),
        }
    }

    fn on_access(&mut self, rec: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        // Range check: stack words are thread-private.
        ctx.alu(2);
        if !layout::is_shared_region(rec.addr) {
            return;
        }
        // Software variants pay a helper call per monitored access.
        ctx.alu(self.call_overhead);
        self.checked += 1;
        let first = rec.addr / GRANULE;
        let last = (rec.addr + u64::from(rec.size).max(1) - 1) / GRANULE;
        for granule in first..=last {
            self.check_granule(rec, granule, ctx);
        }
    }
}

impl Lifeguard for LockSet {
    fn name(&self) -> &'static str {
        "lockset"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Load,
            EventKind::Store,
            EventKind::Lock,
            EventKind::Unlock,
        ])
    }

    fn on_event(&mut self, rec: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        match rec.kind {
            EventKind::Load | EventKind::Store => self.on_access(rec, ctx),
            EventKind::Lock => {
                let id = self.held_id(rec.tid);
                let (new_id, cost) = self.table.add(id, rec.addr);
                self.held[rec.tid as usize] = new_id;
                ctx.alu(2 + cost);
            }
            EventKind::Unlock => {
                let id = self.held_id(rec.tid);
                let (new_id, cost) = self.table.remove(id, rec.addr);
                self.held[rec.tid as usize] = new_id;
                ctx.alu(2 + cost);
            }
            _ => {}
        }
    }

    /// Capture-side soundness contract: a repeated identical access (same
    /// `pc`, `tid`, exact `addr` and `size` — exact, because Eraser state
    /// is per 4-byte word and a wide access may straddle) is
    /// findings-idempotent as long as (i) the accessor's held lockset is
    /// unchanged — hence the flush on every `lock`/`unlock` — and (ii) no
    /// other thread touched the word in between, which would move the
    /// Virgin → Exclusive → Shared(-Modified) machine — hence the flush
    /// on every thread interleave. Within one same-thread, same-lockset
    /// run the candidate-set intersection is idempotent
    /// (`C ∩ held ∩ held = C ∩ held`), the state machine can only move
    /// monotonically toward the state the first occurrence already
    /// reached, and any race report a duplicate could raise was either
    /// raised by its first occurrence or suppressed by the per-word
    /// report dedup.
    fn idempotency(&self) -> IdempotencyClass {
        IdempotencyClass::Window(WindowSpec {
            addr_granule_log2: 0,
            invalidate_on: EventMask::of(&[EventKind::Lock, EventKind::Unlock]),
            flush_on_thread_switch: true,
        })
    }

    /// Degradation-soundness contract: LockSet tolerates **window
    /// widening only**.
    ///
    /// * **Widening** is sound because each suppressed duplicate is
    ///   findings-idempotent under the window contract above, and the
    ///   window's flush triggers (`lock`/`unlock`, thread interleave)
    ///   are unchanged by its size; re-tightening flushes the extra
    ///   entries.
    /// * **No droppable kinds**: the thread-switch flush is keyed off
    ///   *every* record of another thread, access or not — a dropped
    ///   `alu`-only interleave would mask the tid change the window's
    ///   soundness argument conditions on. A droppable set would need a
    ///   proof that it can never hide an interleave; LockSet declares
    ///   none instead.
    /// * **No sampling**: a sampled-out access could be a fresh word's
    ///   first touch, whose Virgin → Exclusive initialisation every
    ///   later transition of the Eraser machine (and so every later
    ///   race verdict on that word) depends on. No capture-side oracle
    ///   can call a word's verdict "settled" while further accesses can
    ///   still empty its candidate lockset.
    fn degradation(&self) -> DegradationPolicy {
        DegradationPolicy {
            widen_window: true,
            droppable: EventMask::EMPTY,
            sampling: None,
            findings_sound: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::{MemSystem, MemSystemConfig};
    use lba_lifeguard::DispatchEngine;

    struct Rig {
        mem: MemSystem,
        engine: DispatchEngine,
        findings: Vec<Finding>,
        lg: LockSet,
    }

    impl Rig {
        fn new() -> Self {
            Self::with_config(LockSetConfig::default())
        }

        fn with_config(config: LockSetConfig) -> Self {
            Rig {
                mem: MemSystem::new(MemSystemConfig::dual_core()),
                engine: DispatchEngine::default(),
                findings: Vec::new(),
                lg: LockSet::with_config(config),
            }
        }

        fn deliver(&mut self, rec: EventRecord) -> u64 {
            self.engine
                .deliver(&mut self.lg, &rec, &mut self.mem, 1, &mut self.findings)
        }

        fn lock(&mut self, tid: u8, lock: u64) -> u64 {
            self.deliver(EventRecord {
                pc: 0x1000,
                kind: EventKind::Lock,
                tid,
                in1: Some(1),
                in2: None,
                out: None,
                addr: lock,
                size: 0,
            })
        }

        fn unlock(&mut self, tid: u8, lock: u64) -> u64 {
            self.deliver(EventRecord {
                pc: 0x1008,
                kind: EventKind::Unlock,
                tid,
                in1: Some(1),
                in2: None,
                out: None,
                addr: lock,
                size: 0,
            })
        }

        fn load(&mut self, tid: u8, addr: u64) -> u64 {
            self.deliver(EventRecord::load(0x2000, tid, Some(2), Some(3), addr, 4))
        }

        fn store(&mut self, tid: u8, addr: u64) -> u64 {
            self.deliver(EventRecord::store(0x2008, tid, Some(3), Some(2), addr, 4))
        }
    }

    const DATA: u64 = layout::HEAP_BASE + 0x40;
    const LOCK_A: u64 = layout::GLOBAL_BASE + 0x10;
    const LOCK_B: u64 = layout::GLOBAL_BASE + 0x20;

    #[test]
    fn single_thread_never_races() {
        let mut rig = Rig::new();
        for _ in 0..10 {
            rig.store(0, DATA);
            rig.load(0, DATA);
        }
        assert!(rig.findings.is_empty());
    }

    #[test]
    fn consistent_locking_never_races() {
        let mut rig = Rig::new();
        for round in 0..5 {
            for tid in 0..2 {
                rig.lock(tid, LOCK_A);
                rig.store(tid, DATA);
                rig.load(tid, DATA);
                rig.unlock(tid, LOCK_A);
                let _ = round;
            }
        }
        assert!(rig.findings.is_empty(), "got {:?}", rig.findings);
    }

    #[test]
    fn unprotected_sharing_races() {
        let mut rig = Rig::new();
        rig.store(0, DATA);
        rig.store(1, DATA); // second writer, no locks held
        assert_eq!(rig.findings.len(), 1);
        assert_eq!(rig.findings[0].kind, FindingKind::DataRace);
        assert_eq!(rig.lg.races(), 1);
    }

    #[test]
    fn one_unlocked_writer_races_even_after_locked_history() {
        let mut rig = Rig::new();
        rig.lock(0, LOCK_A);
        rig.store(0, DATA);
        rig.unlock(0, LOCK_A);
        rig.lock(1, LOCK_A);
        rig.store(1, DATA);
        rig.unlock(1, LOCK_A);
        assert!(rig.findings.is_empty());
        // Thread 0 now writes without the lock: candidate set empties.
        rig.store(0, DATA);
        assert_eq!(rig.findings.len(), 1);
    }

    #[test]
    fn different_locks_race() {
        let mut rig = Rig::new();
        rig.lock(0, LOCK_A);
        rig.store(0, DATA); // Exclusive(t0)
        rig.unlock(0, LOCK_A);
        rig.lock(1, LOCK_B);
        rig.store(1, DATA); // SharedModified, candidate = {B}
        rig.unlock(1, LOCK_B);
        assert!(
            rig.findings.is_empty(),
            "Eraser needs a third access to see ∅"
        );
        rig.lock(0, LOCK_A);
        rig.store(0, DATA); // candidate = {B} ∩ {A} = ∅ → race
        rig.unlock(0, LOCK_A);
        assert_eq!(rig.findings.len(), 1);
    }

    #[test]
    fn shared_read_only_does_not_race() {
        let mut rig = Rig::new();
        rig.store(0, DATA); // initialise (exclusive)
        rig.load(1, DATA); // shared, read-only — no report per Eraser
        rig.load(2, DATA);
        assert!(rig.findings.is_empty());
    }

    #[test]
    fn read_shared_then_unlocked_write_races() {
        let mut rig = Rig::new();
        rig.store(0, DATA);
        rig.load(1, DATA); // -> Shared with empty candidate (no locks)
        rig.store(1, DATA); // -> SharedModified, empty set: race
        assert_eq!(rig.findings.len(), 1);
    }

    #[test]
    fn race_reported_once_per_word() {
        let mut rig = Rig::new();
        rig.store(0, DATA);
        rig.store(1, DATA);
        rig.store(0, DATA);
        rig.store(1, DATA);
        assert_eq!(rig.findings.len(), 1);
        // A different word reports separately.
        rig.store(0, DATA + 64);
        rig.store(1, DATA + 64);
        assert_eq!(rig.findings.len(), 2);
    }

    #[test]
    fn stack_accesses_not_monitored() {
        let mut rig = Rig::new();
        let stack = layout::stack_top(0) - 16;
        rig.store(0, stack);
        rig.store(1, stack);
        assert!(rig.findings.is_empty());
        assert_eq!(rig.lg.checked_accesses(), 0);
    }

    #[test]
    fn locks_held_tracks_lock_unlock() {
        let mut rig = Rig::new();
        rig.lock(0, LOCK_A);
        rig.lock(0, LOCK_B);
        assert_eq!(rig.lg.locks_held(0), &[LOCK_A, LOCK_B]);
        rig.unlock(0, LOCK_A);
        assert_eq!(rig.lg.locks_held(0), &[LOCK_B]);
        assert_eq!(rig.lg.locks_held(1), &[] as &[u64]);
    }

    #[test]
    fn wide_access_checks_both_words() {
        let mut rig = Rig::new();
        // Thread 0 writes an 8-byte value covering two granules; thread 1
        // then races on the *second* word via a 4-byte store.
        rig.deliver(EventRecord::store(0x2008, 0, Some(3), Some(2), DATA, 8));
        rig.store(1, DATA + 4);
        assert_eq!(rig.findings.len(), 1);
        assert_eq!(rig.findings[0].addr, DATA + 4);
    }

    #[test]
    fn memoized_steady_state_is_cheaper() {
        let steady = |memoize: bool| -> u64 {
            let mut rig = Rig::with_config(LockSetConfig {
                memoize,
                call_overhead: 0,
            });
            // Build up shared state with two locks held by both threads.
            for tid in 0..2 {
                rig.lock(tid, LOCK_A);
                rig.lock(tid, LOCK_B);
                rig.store(tid, DATA);
                rig.unlock(tid, LOCK_B);
                rig.unlock(tid, LOCK_A);
            }
            // Steady state: repeat the same locked access pattern, summing
            // the full event cost (lockset add/remove dominates).
            let mut total = 0;
            for tid in 0..2 {
                total += rig.lock(tid, LOCK_A);
                total += rig.lock(tid, LOCK_B);
                total += rig.store(tid, DATA);
                total += rig.unlock(tid, LOCK_B);
                total += rig.unlock(tid, LOCK_A);
            }
            total
        };
        assert!(
            steady(true) < steady(false),
            "memoised lockset ops must be cheaper in steady state"
        );
    }
}
