//! The three lifeguards evaluated in the paper (§3).
//!
//! * [`AddrCheck`] — "detects accesses to unallocated memory, double
//!   `free()`, and memory leaks" (after Valgrind's Addrcheck tool);
//! * [`TaintCheck`] — "detects security exploits by tracking the
//!   propagation of inputs, and checking if they eventually modify jump
//!   target addresses or other critical data" (after Newsome & Song);
//! * [`LockSet`] — "detects possible data races in multithreaded programs
//!   using the LockSet algorithm" (after Eraser, Savage et al.).
//!
//! All three implement [`lba_lifeguard::Lifeguard`], so they run unchanged
//! under the LBA dispatch engine (on the lifeguard core) and under the DBI
//! baseline (inline on the application core) — only the cost attribution
//! differs, exactly as in the paper's comparison.
//!
//! # Capture-filter soundness stories
//!
//! Each lifeguard declares how much capture-side duplicate suppression it
//! tolerates ([`lba_lifeguard::Lifeguard::idempotency`]); the filtered
//! run is proptest-pinned byte-identical in findings to the unfiltered
//! one (`tests/idempotency.rs` at the workspace root):
//!
//! * [`AddrCheck`] — **window-dedupable at the 16-byte allocation
//!   granule.** Its verdict is a function of `(pc, granule)` and the
//!   granule's allocation state; only `alloc`/`free` change that state,
//!   so they flush the window. Reports are already deduplicated on
//!   `(pc, granule)`, so a suppressed re-check can never have produced a
//!   new finding.
//! * [`LockSet`] — **window-dedupable at the exact address, flushed on
//!   `lock`/`unlock` and on every thread interleave.** Within one
//!   same-thread, same-lockset run, Eraser's candidate-set intersection
//!   is idempotent and the word state machine only moves toward the
//!   state the first occurrence reached; cross-thread accesses and
//!   lockset changes — the two things that can alter a settled verdict —
//!   both flush.
//! * [`MemProfile`] — **fold-dedupable at the 64-byte line.** Duplicates
//!   matter only as counts, so the filter accumulates them and re-emits
//!   an [`lba_record::EventKind::Repeat`] summary on eviction and at
//!   flush points; the handler multiplies the summary back in, keeping
//!   every total exact.
//! * [`TaintCheck`] — **opts out entirely.** Every access propagates
//!   taint state, so no record is a pure re-check; the filter provably
//!   never drops from its stream (mirroring its exclusion from
//!   address-interleaved sharding). Its parallelism story is *epoch
//!   summaries* instead: [`taint_summary`] computes per-epoch symbolic
//!   transfer functions over unknown epoch-entry state, which a merge
//!   step resolves sequentially — byte-identical findings, summarize
//!   work off the critical path (see the module's soundness argument
//!   and `lba_core::run_taint_parallel`).
//!
//! # Degradation contracts
//!
//! Each lifeguard likewise declares how capture may *degrade* under
//! back-pressure ([`lba_lifeguard::Lifeguard::degradation`]), following
//! the same contract discipline; the per-lifeguard soundness arguments
//! sit next to the idempotency stories on each `degradation` impl, and
//! `tests/degradation.rs` pins them:
//!
//! * [`AddrCheck`] — widening, `lock`/`unlock` dropping, and sampling of
//!   provably-allocated regions via its [`AllocSettled`] oracle;
//! * [`LockSet`] — widening only (an interleave or first touch must
//!   never be masked);
//! * [`MemProfile`] — widening, dropping of every profile-irrelevant
//!   kind, and unconditional sampling (its profile, not any finding, is
//!   what degrades);
//! * [`TaintCheck`] — nothing: a none-policy means the capture
//!   controller is never constructed and its stream is provably
//!   untouched.
//!
//! # Examples
//!
//! ```
//! use lba_cache::{MemSystem, MemSystemConfig};
//! use lba_lifeguard::{DispatchEngine, Lifeguard};
//! use lba_lifeguards::AddrCheck;
//! use lba_record::{EventKind, EventRecord};
//!
//! let mut mem = MemSystem::new(MemSystemConfig::dual_core());
//! let mut findings = Vec::new();
//! let engine = DispatchEngine::default();
//! let mut addrcheck = AddrCheck::new();
//!
//! // A load from heap memory that was never allocated:
//! let rec = EventRecord::load(0x1000, 0, Some(1), Some(2), 0x4000_0040, 8);
//! engine.deliver(&mut addrcheck, &rec, &mut mem, 1, &mut findings);
//! assert_eq!(findings.len(), 1);
//! ```

mod addrcheck;
mod lockset;
mod memprofile;
pub mod taint_summary;
mod taintcheck;

pub use addrcheck::{AddrCheck, AllocSettled};
pub use lockset::{LockSet, LockSetConfig};
pub use memprofile::{MemProfile, MemoryProfile};
pub use taint_summary::{SymTaint, TaintDep, TaintSummarizer, TaintSummary};
pub use taintcheck::TaintCheck;
