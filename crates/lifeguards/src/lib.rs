//! The three lifeguards evaluated in the paper (§3).
//!
//! * [`AddrCheck`] — "detects accesses to unallocated memory, double
//!   `free()`, and memory leaks" (after Valgrind's Addrcheck tool);
//! * [`TaintCheck`] — "detects security exploits by tracking the
//!   propagation of inputs, and checking if they eventually modify jump
//!   target addresses or other critical data" (after Newsome & Song);
//! * [`LockSet`] — "detects possible data races in multithreaded programs
//!   using the LockSet algorithm" (after Eraser, Savage et al.).
//!
//! All three implement [`lba_lifeguard::Lifeguard`], so they run unchanged
//! under the LBA dispatch engine (on the lifeguard core) and under the DBI
//! baseline (inline on the application core) — only the cost attribution
//! differs, exactly as in the paper's comparison.
//!
//! # Examples
//!
//! ```
//! use lba_cache::{MemSystem, MemSystemConfig};
//! use lba_lifeguard::{DispatchEngine, Lifeguard};
//! use lba_lifeguards::AddrCheck;
//! use lba_record::{EventKind, EventRecord};
//!
//! let mut mem = MemSystem::new(MemSystemConfig::dual_core());
//! let mut findings = Vec::new();
//! let engine = DispatchEngine::default();
//! let mut addrcheck = AddrCheck::new();
//!
//! // A load from heap memory that was never allocated:
//! let rec = EventRecord::load(0x1000, 0, Some(1), Some(2), 0x4000_0040, 8);
//! engine.deliver(&mut addrcheck, &rec, &mut mem, 1, &mut findings);
//! assert_eq!(findings.len(), 1);
//! ```

mod addrcheck;
mod lockset;
mod memprofile;
mod taintcheck;

pub use addrcheck::AddrCheck;
pub use lockset::{LockSet, LockSetConfig};
pub use memprofile::{MemProfile, MemoryProfile};
pub use taintcheck::TaintCheck;
