//! Symbolic taint transfer functions: the worker-side half of
//! epoch-parallel TaintCheck.
//!
//! A [`TaintSummarizer`] consumes one epoch's records through the
//! ordinary dispatch path and computes, instead of concrete taint, a
//! *transfer function*: for every register it writes and every shadow
//! byte it touches, an out-state expressed over the unknown epoch-entry
//! state ([`SymTaint`]), plus the epoch's *conditional findings* —
//! exploit reports whose guard references unknown inputs. The merge
//! thread resolves everything against the concrete entry state
//! (`TaintCheck::absorb` in `taintcheck.rs`), reproducing the sequential
//! run's findings and state byte for byte.
//!
//! # Why a disjunction lattice suffices
//!
//! Taint propagation is monotone: every rule ORs source taints into the
//! destination (`taint(out) = taint(in1) | taint(in2)`, loads OR the
//! loaded bytes, stores copy the source register). There is no negation
//! — an operation either *clears* (constant out-state) or *ORs
//! unknowns*. Every symbolic value is therefore exactly a disjunction
//! `definite ∨ dep₁ ∨ dep₂ ∨ …` over epoch-entry registers and
//! epoch-entry shadow ranges, saturating to the constant *tainted* the
//! moment any definite source joins. Composition (substituting one
//! epoch's out-state into the next epoch's deps) and concretization
//! (evaluating deps against concrete entry state) both distribute over
//! the disjunction, which is the whole soundness argument:
//! compose-then-concretize ≡ concretize-then-run ≡ sequential.
//!
//! The one construct that is *not* a disjunction — TaintCheck's syscall
//! check reports the **first** tainted register of `r1..r3` — is kept
//! conditional instead: the pending finding carries all three guards and
//! the merge thread picks the first that fires, mirroring the
//! sequential `(1..=3).find(..)` exactly.

use std::collections::{BTreeMap, HashMap, HashSet};

use lba_lifeguard::{
    EpochSummarizer, EpochSummary, FindingKind, HandlerCtx, IdempotencyClass, Lifeguard,
    ShadowMemory,
};
use lba_record::{EventKind, EventMask, EventRecord};

use crate::taintcheck::TaintCheck;

/// One unknown the symbolic value may depend on: a register's or a
/// shadow range's taint at epoch entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaintDep {
    /// Epoch-entry taint of `reg` on thread `tid`.
    Reg {
        /// Thread id.
        tid: u8,
        /// Register number (masked to the 16-register file).
        reg: u8,
    },
    /// Epoch-entry taint of any byte in `[addr, addr + len)`.
    Mem {
        /// First application byte address.
        addr: u64,
        /// Bytes covered.
        len: u64,
    },
}

/// A symbolic taint value: `definite ∨ (deps[0] ∨ deps[1] ∨ …)` over
/// epoch-entry state. `definite` saturates the disjunction (deps are
/// dropped); an empty, non-definite value is *definitely clean*.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SymTaint {
    pub(crate) definite: bool,
    pub(crate) deps: Vec<TaintDep>,
}

impl SymTaint {
    /// The constant *clean* value.
    #[must_use]
    pub fn clean() -> Self {
        SymTaint::default()
    }

    /// The constant *tainted* value.
    #[must_use]
    pub fn tainted() -> Self {
        SymTaint {
            definite: true,
            deps: Vec::new(),
        }
    }

    /// The identity value of one epoch-entry register.
    #[must_use]
    pub fn reg(tid: u8, reg: u8) -> Self {
        SymTaint {
            definite: false,
            deps: vec![TaintDep::Reg {
                tid,
                reg: reg & 0xf,
            }],
        }
    }

    /// Whether this value is the constant *clean* (no report, no write
    /// of taint can ever come from it).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.definite && self.deps.is_empty()
    }

    /// Whether this value is the constant *tainted*.
    #[must_use]
    pub fn is_definite(&self) -> bool {
        self.definite
    }

    /// ORs `other` into `self`, saturating on definite taint.
    pub fn or_with(&mut self, other: &SymTaint) {
        if self.definite {
            return;
        }
        if other.definite {
            self.definite = true;
            self.deps.clear();
            return;
        }
        for dep in &other.deps {
            if !self.deps.contains(dep) {
                self.deps.push(*dep);
            }
        }
    }
}

/// A finding whose guard references unknown epoch-entry state; the merge
/// thread evaluates the guard(s) against the concrete entry state and
/// reports through the master's dedup, in program order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PendingFinding {
    /// An indirect control transfer through a possibly tainted register.
    Jump {
        /// Faulting pc.
        pc: u64,
        /// Thread id.
        tid: u8,
        /// Jump target (diagnostic).
        addr: u64,
        /// Taint of the jump-target register at this point.
        guard: SymTaint,
    },
    /// A syscall with possibly tainted argument registers. The report
    /// names the *first* tainted register of `r1..r3`, so all three
    /// guards travel and the merge thread picks.
    Syscall {
        /// Faulting pc.
        pc: u64,
        /// Thread id.
        tid: u8,
        /// The record's addr field (diagnostic).
        addr: u64,
        /// Syscall number (diagnostic).
        size: u32,
        /// Taint of argument registers r1, r2, r3 at this point.
        guards: [SymTaint; 3],
    },
}

/// The symbolic transfer function of one epoch of TaintCheck's stream.
#[derive(Debug)]
pub struct TaintSummary {
    /// Out-state of every register written this epoch (BTreeMap: the
    /// stitch applies these in deterministic order). Registers absent
    /// here pass through unchanged.
    pub(crate) reg_out: BTreeMap<(u8, u8), SymTaint>,
    /// Out-state of every shadow byte written this epoch, as interned
    /// value ids: cell 0 = untouched (pass-through), id `n` = `values[n-1]`.
    pub(crate) mem_out: ShadowMemory<u32>,
    /// The interned symbolic values `mem_out` references.
    pub(crate) values: Vec<SymTaint>,
    /// Conditional findings, in program order.
    pub(crate) findings: Vec<PendingFinding>,
    /// Input bytes marked tainted this epoch (`recv`).
    pub(crate) tainted_bytes: u64,
    /// Records folded in (subscribed kinds).
    pub(crate) records: u64,
}

impl EpochSummary for TaintSummary {
    fn records(&self) -> u64 {
        self.records
    }
}

/// Worker-side TaintCheck: same subscriptions, same handler costs, but
/// the state it builds is the symbolic [`TaintSummary`] of the records
/// seen since the last [`finish_epoch`](EpochSummarizer::finish_epoch).
#[derive(Debug, Default)]
pub struct TaintSummarizer {
    regs: BTreeMap<(u8, u8), SymTaint>,
    mem: ShadowMemory<u32>,
    values: Vec<SymTaint>,
    /// Interning table over `values` (ids are index + 1).
    interned: HashMap<SymTaint, u32>,
    findings: Vec<PendingFinding>,
    /// Exact-duplicate pending findings suppressed (same key, same
    /// guards, same diagnostics: if the first fires the master dedups
    /// the rest; if it doesn't, an identical guard doesn't either).
    finding_seen: HashSet<PendingFinding>,
    /// `(pc, kind, tid)` keys guaranteed to have fired already this
    /// epoch (a definite guard): later pendings with the key are dead.
    reported: HashSet<(u64, FindingKind, u8)>,
    tainted_bytes: u64,
    records: u64,
}

impl TaintSummarizer {
    /// Creates a summarizer holding the identity transfer function.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current symbolic value of a register: its in-epoch write if
    /// any, else the epoch-entry unknown.
    fn reg_val(&self, tid: u8, reg: u8) -> SymTaint {
        self.regs
            .get(&(tid, reg & 0xf))
            .cloned()
            .unwrap_or_else(|| SymTaint::reg(tid, reg))
    }

    /// The merged symbolic taint of `len` shadow bytes at `addr`:
    /// untouched runs become epoch-entry `Mem` deps (coalesced), touched
    /// bytes OR their interned values in.
    fn range_val(&self, addr: u64, len: u64) -> SymTaint {
        let mut out = SymTaint::clean();
        let mut untouched_run: Option<(u64, u64)> = None; // (start, len)
        for i in 0..len {
            let byte = addr.wrapping_add(i);
            let id = self.mem.get(byte);
            if id == 0 {
                untouched_run = match untouched_run {
                    Some((start, run)) => Some((start, run + 1)),
                    None => Some((byte, 1)),
                };
            } else {
                if let Some((start, run)) = untouched_run.take() {
                    out.or_with(&SymTaint {
                        definite: false,
                        deps: vec![TaintDep::Mem {
                            addr: start,
                            len: run,
                        }],
                    });
                }
                out.or_with(&self.values[(id - 1) as usize]);
                if out.definite {
                    return out;
                }
            }
        }
        if let Some((start, run)) = untouched_run {
            out.or_with(&SymTaint {
                definite: false,
                deps: vec![TaintDep::Mem {
                    addr: start,
                    len: run,
                }],
            });
        }
        out
    }

    /// Interns `value`, returning its id (index into `values` + 1).
    fn intern(&mut self, value: SymTaint) -> u32 {
        if let Some(&id) = self.interned.get(&value) {
            return id;
        }
        self.values.push(value.clone());
        let id = u32::try_from(self.values.len()).expect("fewer than 2^32 distinct values");
        self.interned.insert(value, id);
        id
    }

    fn pend(&mut self, key: (u64, FindingKind, u8), finding: PendingFinding, definite: bool) {
        if self.reported.contains(&key) || !self.finding_seen.insert(finding.clone()) {
            return;
        }
        if definite {
            self.reported.insert(key);
        }
        self.findings.push(finding);
    }
}

impl Lifeguard for TaintSummarizer {
    fn name(&self) -> &'static str {
        "taintcheck-summarizer"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Alu,
            EventKind::Load,
            EventKind::Store,
            EventKind::Alloc,
            EventKind::Recv,
            EventKind::IndirectJump,
            EventKind::Syscall,
        ])
    }

    fn idempotency(&self) -> IdempotencyClass {
        IdempotencyClass::None
    }

    /// Mirrors `TaintCheck::on_event` rule for rule — same `ctx` cost
    /// charges, symbolic instead of concrete propagation.
    fn on_event(&mut self, rec: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        self.records += 1;
        match rec.kind {
            EventKind::Alu => {
                ctx.alu(3);
                if let Some(out) = rec.out {
                    let mut t = SymTaint::clean();
                    if let Some(r) = rec.in1 {
                        t.or_with(&self.reg_val(rec.tid, r));
                    }
                    if let Some(r) = rec.in2 {
                        t.or_with(&self.reg_val(rec.tid, r));
                    }
                    self.regs.insert((rec.tid, out & 0xf), t);
                }
            }
            EventKind::Load => {
                ctx.alu(4);
                ctx.shadow_read(TaintCheck::shadow_addr(rec.addr), rec.size);
                if let Some(out) = rec.out {
                    let t = self.range_val(rec.addr, u64::from(rec.size));
                    self.regs.insert((rec.tid, out & 0xf), t);
                }
            }
            EventKind::Store => {
                ctx.alu(4);
                ctx.shadow_write(TaintCheck::shadow_addr(rec.addr), rec.size);
                let t = rec
                    .in1
                    .map_or_else(SymTaint::clean, |r| self.reg_val(rec.tid, r));
                let id = self.intern(t);
                self.mem.set_range(rec.addr, u64::from(rec.size), id);
            }
            EventKind::Alloc => {
                ctx.alu(1);
                if let Some(out) = rec.out {
                    self.regs.insert((rec.tid, out & 0xf), SymTaint::clean());
                }
            }
            EventKind::Recv => {
                ctx.alu(2);
                self.tainted_bytes += u64::from(rec.size);
                let mut off = 0u64;
                let len = u64::from(rec.size);
                while off < len {
                    let chunk = (len - off).min(8);
                    ctx.shadow_write(TaintCheck::shadow_addr(rec.addr + off), chunk as u32);
                    ctx.alu(1);
                    off += chunk;
                }
                let id = self.intern(SymTaint::tainted());
                self.mem.set_range(rec.addr, len, id);
            }
            EventKind::IndirectJump => {
                ctx.alu(2);
                let guard = rec
                    .in1
                    .map_or_else(SymTaint::clean, |r| self.reg_val(rec.tid, r));
                if !guard.is_clean() {
                    let definite = guard.is_definite();
                    self.pend(
                        (rec.pc, FindingKind::TaintedJump, rec.tid),
                        PendingFinding::Jump {
                            pc: rec.pc,
                            tid: rec.tid,
                            addr: rec.addr,
                            guard,
                        },
                        definite,
                    );
                }
            }
            EventKind::Syscall => {
                ctx.alu(3);
                let guards = [
                    self.reg_val(rec.tid, 1),
                    self.reg_val(rec.tid, 2),
                    self.reg_val(rec.tid, 3),
                ];
                if guards.iter().any(|g| !g.is_clean()) {
                    let definite = guards.iter().any(SymTaint::is_definite);
                    self.pend(
                        (rec.pc, FindingKind::TaintedSyscallArg, rec.tid),
                        PendingFinding::Syscall {
                            pc: rec.pc,
                            tid: rec.tid,
                            addr: rec.addr,
                            size: rec.size,
                            guards,
                        },
                        definite,
                    );
                }
            }
            _ => {}
        }
    }
}

impl EpochSummarizer for TaintSummarizer {
    type Summary = TaintSummary;

    fn finish_epoch(&mut self) -> TaintSummary {
        self.interned.clear();
        self.finding_seen.clear();
        self.reported.clear();
        TaintSummary {
            reg_out: std::mem::take(&mut self.regs),
            mem_out: std::mem::take(&mut self.mem),
            values: std::mem::take(&mut self.values),
            findings: std::mem::take(&mut self.findings),
            tainted_bytes: std::mem::take(&mut self.tainted_bytes),
            records: std::mem::take(&mut self.records),
        }
    }

    fn is_open(&self) -> bool {
        self.records > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_taint_saturates_and_dedups() {
        let mut v = SymTaint::reg(0, 3);
        v.or_with(&SymTaint::reg(0, 3));
        assert_eq!(v.deps.len(), 1, "duplicate deps collapse");
        v.or_with(&SymTaint::reg(1, 4));
        assert_eq!(v.deps.len(), 2);
        v.or_with(&SymTaint::tainted());
        assert!(v.is_definite());
        assert!(v.deps.is_empty(), "definite saturates the disjunction");
        v.or_with(&SymTaint::reg(0, 5));
        assert!(v.deps.is_empty(), "saturated values stay saturated");
        assert!(SymTaint::clean().is_clean());
        assert!(!SymTaint::reg(0, 1).is_clean());
    }

    #[test]
    fn reg_mask_folds_into_the_16_register_file() {
        assert_eq!(SymTaint::reg(0, 0x13), SymTaint::reg(0, 3));
    }
}
