//! AddrCheck: allocation-state checking (unallocated accesses, double
//! frees, leaks).

use std::collections::{HashMap, HashSet};

use lba_lifeguard::{
    DegradationPolicy, Finding, FindingKind, HandlerCtx, IdempotencyClass, Lifeguard,
    RegionClassifier, SamplingSpec, ShadowMemory, WindowSpec,
};
use lba_mem::layout;
use lba_record::{EventKind, EventMask, EventRecord};

/// Shadow region base for AddrCheck's allocation bitmap.
const SHADOW_BASE: u64 = 0x10_0000_0000;

/// Heap granule shadowed by one state byte. The simulated allocator aligns
/// blocks to 16 bytes, so a 16-byte granule loses no precision.
const GRANULE: u64 = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Live { len: u64 },
    Freed,
}

/// The AddrCheck lifeguard.
///
/// Tracks every heap block from its `alloc` event, marks the covered
/// granules allocated in shadow memory, checks each heap load/store against
/// the shadow state, validates `free` events against the block table, and
/// reports still-live blocks as leaks at end of log.
///
/// Accesses outside the heap (stack, globals, code) are not checked —
/// mirroring the original Addrcheck tool's heap focus.
#[derive(Debug, Default)]
pub struct AddrCheck {
    shadow: ShadowMemory<u8>,
    blocks: HashMap<u64, BlockState>,
    /// Deduplication: one unallocated-access report per (pc, granule).
    reported_access: HashSet<(u64, u64)>,
    checked_accesses: u64,
    bad_accesses: u64,
}

impl AddrCheck {
    /// Creates an AddrCheck lifeguard with an empty heap model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap accesses checked so far.
    #[must_use]
    pub fn checked_accesses(&self) -> u64 {
        self.checked_accesses
    }

    /// Accesses that hit unallocated memory.
    #[must_use]
    pub fn bad_accesses(&self) -> u64 {
        self.bad_accesses
    }

    fn granule(addr: u64) -> u64 {
        (addr - layout::HEAP_BASE) / GRANULE
    }

    fn shadow_addr(granule: u64) -> u64 {
        SHADOW_BASE + granule
    }

    /// Marks `len` bytes from `addr` with shadow state `state`, charging
    /// chunked shadow writes (8 granule bytes per write).
    fn mark_range(&mut self, addr: u64, len: u64, state: u8, ctx: &mut HandlerCtx<'_>) {
        let first = Self::granule(addr);
        let count = len.div_ceil(GRANULE).max(1);
        self.shadow.set_range(first, count, state);
        let mut g = first;
        let end = first + count;
        while g < end {
            let chunk = (end - g).min(8);
            ctx.shadow_write(Self::shadow_addr(g), chunk as u32);
            ctx.alu(1); // loop bookkeeping
            g += chunk;
        }
    }

    fn check_access(&mut self, rec: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        // Like the original Addrcheck tool, *every* access goes through the
        // addressability lookup: shadow-address arithmetic, the shadow
        // load, a boundary check when the access may straddle a granule,
        // and the state test. Only heap addresses carry allocation state.
        ctx.alu(4); // shadow address arithmetic + granule decompose
        let shadow_probe = if layout::is_heap(rec.addr) {
            Self::shadow_addr(Self::granule(rec.addr))
        } else {
            // Stack/global A-bits live in a separate always-addressable
            // shadow region; the lookup still costs a load.
            SHADOW_BASE + 0x8000_0000 + (rec.addr >> 4)
        };
        ctx.shadow_read(shadow_probe, 1);
        ctx.alu(2); // straddle check (width vs granule boundary)
        ctx.alu(2); // state test + conditional branch
        if !layout::is_heap(rec.addr) {
            return;
        }
        self.checked_accesses += 1;
        let granule = Self::granule(rec.addr);
        if self.shadow.get(granule) == 0 && self.reported_access.insert((rec.pc, granule)) {
            self.bad_accesses += 1;
            ctx.report(Finding {
                lifeguard: self.name(),
                kind: FindingKind::UnallocatedAccess,
                pc: rec.pc,
                tid: rec.tid,
                addr: rec.addr,
                message: format!(
                    "{} of {} bytes at {:#x} hits unallocated heap memory",
                    rec.kind, rec.size, rec.addr
                ),
            });
        }
    }

    fn handle_alloc(&mut self, rec: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        // A failed allocation (addr 0) still retires an event.
        ctx.alu(2);
        if rec.addr == 0 {
            return;
        }
        // Block-table insert: hashing plus bucket write.
        ctx.alu(4);
        self.blocks.insert(
            rec.addr,
            BlockState::Live {
                len: u64::from(rec.size),
            },
        );
        self.mark_range(rec.addr, u64::from(rec.size), 1, ctx);
    }

    fn handle_free(&mut self, rec: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        // Block-table lookup.
        ctx.alu(4);
        match self.blocks.get(&rec.addr).copied() {
            Some(BlockState::Live { len }) => {
                self.blocks.insert(rec.addr, BlockState::Freed);
                self.mark_range(rec.addr, len, 0, ctx);
            }
            Some(BlockState::Freed) => {
                ctx.report(Finding {
                    lifeguard: self.name(),
                    kind: FindingKind::DoubleFree,
                    pc: rec.pc,
                    tid: rec.tid,
                    addr: rec.addr,
                    message: format!("block {:#x} freed twice", rec.addr),
                });
            }
            None => {
                ctx.report(Finding {
                    lifeguard: self.name(),
                    kind: FindingKind::InvalidFree,
                    pc: rec.pc,
                    tid: rec.tid,
                    addr: rec.addr,
                    message: format!("free of {:#x}, which is not a block start", rec.addr),
                });
            }
        }
    }
}

/// AddrCheck's capture-side soundness oracle for region sampling: a
/// miniature mirror of the allocation state the lifeguard itself keeps,
/// rebuilt from the same `alloc`/`free` records (the classifier observes
/// every record in stream order, before any degradation decision, so it
/// never lags the verdict state downstream).
///
/// An access is *settled* when it provably cannot change AddrCheck's
/// findings: it lies outside the heap (AddrCheck ignores it), or every
/// 16-byte granule it touches is currently allocated (the shadow lookup
/// reports it clean). Accesses to freed or never-allocated heap granules
/// are never settled — they are exactly the ones that produce
/// `UnallocatedAccess` findings — so they always ship, degraded or not.
#[derive(Debug, Default)]
pub struct AllocSettled {
    /// Live blocks only (`addr → len`): a free removes its block, a
    /// double/invalid free changes nothing, mirroring [`AddrCheck`].
    blocks: HashMap<u64, u64>,
    allocated: HashSet<u64>,
}

impl AllocSettled {
    fn granules(addr: u64, len: u64) -> std::ops::RangeInclusive<u64> {
        // First-to-last *byte*, so an unaligned span still covers every
        // granule it touches.
        AddrCheck::granule(addr)..=AddrCheck::granule(addr + len.max(1) - 1)
    }
}

impl RegionClassifier for AllocSettled {
    fn observe(&mut self, rec: &EventRecord) {
        match rec.kind {
            EventKind::Alloc if rec.addr != 0 => {
                let len = u64::from(rec.size);
                self.blocks.insert(rec.addr, len);
                self.allocated.extend(Self::granules(rec.addr, len));
            }
            EventKind::Free => {
                if let Some(len) = self.blocks.remove(&rec.addr) {
                    for g in Self::granules(rec.addr, len) {
                        self.allocated.remove(&g);
                    }
                }
            }
            _ => {}
        }
    }

    fn verdict_settled(&self, rec: &EventRecord) -> bool {
        if !layout::is_heap(rec.addr) {
            return true;
        }
        Self::granules(rec.addr, u64::from(rec.size)).all(|g| self.allocated.contains(&g))
    }
}

impl Lifeguard for AddrCheck {
    fn name(&self) -> &'static str {
        "addrcheck"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Load,
            EventKind::Store,
            EventKind::Alloc,
            EventKind::Free,
        ])
    }

    fn on_event(&mut self, record: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        match record.kind {
            EventKind::Load | EventKind::Store => self.check_access(record, ctx),
            EventKind::Alloc => self.handle_alloc(record, ctx),
            EventKind::Free => self.handle_free(record, ctx),
            _ => {}
        }
    }

    /// Capture-side soundness contract: AddrCheck's verdict for an access
    /// is a pure function of `(pc, granule(addr))` and the granule's
    /// allocation state — which only `alloc`/`free` events change — and a
    /// repeated verdict never adds a finding because reports are already
    /// deduplicated on `(pc, granule)`. So duplicates keyed at the
    /// 16-byte allocation granule may be dropped outright, with the
    /// window flushed on every `alloc`/`free`. No thread-switch flush is
    /// needed: other threads' loads and stores cannot move allocation
    /// state, and the report dedup key is thread-insensitive.
    fn idempotency(&self) -> IdempotencyClass {
        IdempotencyClass::Window(WindowSpec {
            addr_granule_log2: GRANULE.trailing_zeros() as u8,
            invalidate_on: EventMask::of(&[EventKind::Alloc, EventKind::Free]),
            flush_on_thread_switch: false,
        })
    }

    /// Degradation-soundness contract, piece by piece:
    ///
    /// * **Window widening** — sound for the same reason the window
    ///   itself is: a wider window under the identical [`WindowSpec`]
    ///   only suppresses more `(pc, granule)` duplicates, each of which
    ///   is findings-idempotent per the argument above, and
    ///   re-tightening flushes the extra entries.
    /// * **Droppable kinds** — `lock`/`unlock` carry no allocation
    ///   state, AddrCheck does not subscribe to them, and the window
    ///   does not invalidate on them; dropping them at capture removes
    ///   wire traffic the dispatch engine would mask to a no-op anyway.
    /// * **Sampling** — gated by [`AllocSettled`], which mirrors the
    ///   block table from the same `alloc`/`free` stream: only accesses
    ///   whose every granule is currently allocated (or lies outside the
    ///   heap) may be demoted, and those are exactly the accesses whose
    ///   shadow lookup is clean and whose dedup key adds nothing — no
    ///   finding can appear, disappear, or change. Every `alloc`/`free`
    ///   repromotes all regions, so demotion never outlives the
    ///   allocation state it was proven against.
    ///
    /// Findings under any mix of these are therefore byte-identical to
    /// an undegraded run (`findings_sound`), which the degradation test
    /// grid pins.
    fn degradation(&self) -> DegradationPolicy {
        DegradationPolicy {
            widen_window: true,
            droppable: EventMask::of(&[EventKind::Lock, EventKind::Unlock]),
            sampling: Some(SamplingSpec {
                region_granule_log2: GRANULE.trailing_zeros() as u8,
                // Demote a granule after 8 consecutively-clean accesses;
                // then ship 1 in 8. Modest, because every alloc/free
                // restarts the proof.
                clean_threshold: 8,
                sample_rate: 8,
                repromote_on: EventMask::of(&[EventKind::Alloc, EventKind::Free]),
                make_classifier: || Box::new(AllocSettled::default()),
            }),
            findings_sound: true,
        }
    }

    fn on_finish(&mut self, ctx: &mut HandlerCtx<'_>) {
        // Leak scan: walk the block table.
        let mut leaks: Vec<(u64, u64)> = self
            .blocks
            .iter()
            .filter_map(|(&addr, &state)| match state {
                BlockState::Live { len } => Some((addr, len)),
                BlockState::Freed => None,
            })
            .collect();
        leaks.sort_unstable();
        ctx.alu(2 * self.blocks.len() as u64);
        for (addr, len) in leaks {
            ctx.report(Finding {
                lifeguard: self.name(),
                kind: FindingKind::Leak,
                pc: 0,
                tid: 0,
                addr,
                message: format!("{len}-byte block at {addr:#x} never freed"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::{MemSystem, MemSystemConfig};
    use lba_lifeguard::DispatchEngine;

    struct Rig {
        mem: MemSystem,
        engine: DispatchEngine,
        findings: Vec<Finding>,
        lg: AddrCheck,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                mem: MemSystem::new(MemSystemConfig::dual_core()),
                engine: DispatchEngine::default(),
                findings: Vec::new(),
                lg: AddrCheck::new(),
            }
        }

        fn deliver(&mut self, rec: EventRecord) -> u64 {
            self.engine
                .deliver(&mut self.lg, &rec, &mut self.mem, 1, &mut self.findings)
        }

        fn finish(&mut self) {
            self.engine
                .finish(&mut self.lg, &mut self.mem, 1, &mut self.findings);
        }

        fn kinds(&self) -> Vec<FindingKind> {
            self.findings.iter().map(|f| f.kind).collect()
        }
    }

    fn alloc(addr: u64, size: u32) -> EventRecord {
        EventRecord {
            pc: 0x1000,
            kind: EventKind::Alloc,
            tid: 0,
            in1: Some(1),
            in2: None,
            out: Some(2),
            addr,
            size,
        }
    }

    fn free(addr: u64) -> EventRecord {
        EventRecord {
            pc: 0x1008,
            kind: EventKind::Free,
            tid: 0,
            in1: Some(2),
            in2: None,
            out: None,
            addr,
            size: 0,
        }
    }

    fn load(pc: u64, addr: u64) -> EventRecord {
        EventRecord::load(pc, 0, Some(2), Some(3), addr, 8)
    }

    const HEAP: u64 = layout::HEAP_BASE;

    #[test]
    fn allocated_access_is_clean() {
        let mut rig = Rig::new();
        rig.deliver(alloc(HEAP, 64));
        rig.deliver(load(0x1010, HEAP + 8));
        rig.deliver(load(0x1018, HEAP + 63));
        assert!(rig.findings.is_empty());
        assert_eq!(rig.lg.checked_accesses(), 2);
    }

    #[test]
    fn unallocated_access_detected() {
        let mut rig = Rig::new();
        rig.deliver(load(0x1010, HEAP + 0x100));
        assert_eq!(rig.kinds(), vec![FindingKind::UnallocatedAccess]);
    }

    #[test]
    fn use_after_free_detected() {
        let mut rig = Rig::new();
        rig.deliver(alloc(HEAP, 64));
        rig.deliver(free(HEAP));
        rig.deliver(load(0x1010, HEAP + 8));
        assert_eq!(rig.kinds(), vec![FindingKind::UnallocatedAccess]);
    }

    #[test]
    fn duplicate_reports_are_suppressed() {
        let mut rig = Rig::new();
        for _ in 0..5 {
            rig.deliver(load(0x1010, HEAP + 0x100));
        }
        assert_eq!(rig.findings.len(), 1, "same pc+granule reports once");
        rig.deliver(load(0x2020, HEAP + 0x100));
        assert_eq!(rig.findings.len(), 2, "different pc reports again");
    }

    #[test]
    fn double_free_detected() {
        let mut rig = Rig::new();
        rig.deliver(alloc(HEAP, 32));
        rig.deliver(free(HEAP));
        rig.deliver(free(HEAP));
        assert_eq!(rig.kinds(), vec![FindingKind::DoubleFree]);
    }

    #[test]
    fn invalid_free_detected() {
        let mut rig = Rig::new();
        rig.deliver(alloc(HEAP, 32));
        rig.deliver(free(HEAP + 16));
        assert_eq!(rig.kinds(), vec![FindingKind::InvalidFree]);
    }

    #[test]
    fn leaks_reported_at_finish() {
        let mut rig = Rig::new();
        rig.deliver(alloc(HEAP, 32));
        rig.deliver(alloc(HEAP + 32, 48));
        rig.deliver(free(HEAP));
        rig.finish();
        assert_eq!(rig.kinds(), vec![FindingKind::Leak]);
        assert_eq!(rig.findings[0].addr, HEAP + 32);
    }

    #[test]
    fn stack_accesses_are_ignored() {
        let mut rig = Rig::new();
        rig.deliver(load(0x1010, layout::stack_top(0) - 8));
        rig.deliver(load(0x1010, layout::GLOBAL_BASE));
        assert!(rig.findings.is_empty());
        assert_eq!(rig.lg.checked_accesses(), 0);
    }

    #[test]
    fn realloc_of_freed_block_is_clean_again() {
        let mut rig = Rig::new();
        rig.deliver(alloc(HEAP, 64));
        rig.deliver(free(HEAP));
        rig.deliver(alloc(HEAP, 64));
        rig.deliver(load(0x1010, HEAP + 8));
        assert!(rig.findings.is_empty());
        // And freeing it again is legitimate.
        rig.deliver(free(HEAP));
        assert!(rig.findings.is_empty());
    }

    #[test]
    fn alloc_settled_mirrors_allocation_state() {
        use lba_lifeguard::RegionClassifier;
        let mut cls = AllocSettled::default();
        let probe = load(0x1010, HEAP + 8);
        assert!(
            !cls.verdict_settled(&probe),
            "unallocated heap is unsettled"
        );
        cls.observe(&alloc(HEAP, 64));
        assert!(cls.verdict_settled(&probe), "allocated granule settles");
        cls.observe(&free(HEAP));
        assert!(!cls.verdict_settled(&probe), "freed granule unsettles");
        // Double free / invalid free leave the mirror unchanged.
        cls.observe(&free(HEAP));
        cls.observe(&free(HEAP + 8));
        assert!(!cls.verdict_settled(&probe));
    }

    #[test]
    fn alloc_settled_requires_every_touched_granule() {
        use lba_lifeguard::RegionClassifier;
        let mut cls = AllocSettled::default();
        cls.observe(&alloc(HEAP, 16));
        // An 8-byte access straddling into the next, unallocated granule
        // is not settled; the same access within the block is.
        assert!(!cls.verdict_settled(&load(0x1010, HEAP + 12)));
        assert!(cls.verdict_settled(&load(0x1010, HEAP + 4)));
    }

    #[test]
    fn alloc_settled_ignores_non_heap_addresses() {
        use lba_lifeguard::RegionClassifier;
        let cls = AllocSettled::default();
        assert!(cls.verdict_settled(&load(0x1010, layout::stack_top(0) - 8)));
        assert!(cls.verdict_settled(&load(0x1010, layout::GLOBAL_BASE)));
    }

    #[test]
    fn degradation_policy_excludes_window_invalidators() {
        // The contract: droppable kinds must never overlap what the
        // idempotency window invalidates on, or the flush triggers would
        // be dropped before reaching the filter.
        let lg = AddrCheck::new();
        let policy = lg.degradation();
        assert!(!policy.droppable.contains(EventKind::Alloc));
        assert!(!policy.droppable.contains(EventKind::Free));
        assert!(!policy.droppable.contains(EventKind::Load));
        assert!(!policy.droppable.contains(EventKind::Store));
        assert!(policy.findings_sound);
        assert!(!policy.is_none());
    }

    #[test]
    fn every_access_pays_the_addressability_lookup() {
        // Like the original tool, stack accesses are not semantically
        // checked but still go through the A-bit lookup, so their cost is
        // the same as a clean heap access (modulo cache effects).
        let mut rig = Rig::new();
        rig.deliver(alloc(HEAP, 64));
        // Warm both paths once.
        rig.deliver(load(0x1010, HEAP));
        rig.deliver(load(0x1018, layout::stack_top(0) - 8));
        let heap_cost = rig.deliver(load(0x1010, HEAP));
        let stack_cost = rig.deliver(load(0x1018, layout::stack_top(0) - 8));
        assert_eq!(heap_cost, stack_cost);
        assert!(stack_cost >= 8, "the lookup is not free: {stack_cost}");
    }
}
