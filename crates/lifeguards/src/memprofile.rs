//! MemProfile: a performance-monitoring lifeguard.
//!
//! The paper positions LBA as "general-purpose … aimed to enable efficient
//! monitoring for a wide variety of program bugs, security attacks, and
//! **performance problems**" (§1). The three evaluation lifeguards are all
//! bug detectors; this fourth lifeguard demonstrates the performance side:
//! it builds a memory profile from the log — hot cache lines, per-PC
//! access counts, allocation statistics — without touching the
//! application, exactly the always-on profiling use case.
//!
//! MemProfile never reports findings; its output is a [`MemoryProfile`].

use std::collections::HashMap;

use lba_lifeguard::{
    AlwaysSettled, DegradationPolicy, HandlerCtx, IdempotencyClass, Lifeguard, SamplingSpec,
    WindowSpec,
};
use lba_record::{EventKind, EventMask, EventRecord};

/// Cache-line granularity used for the hot-line histogram.
const LINE_BYTES: u64 = 64;

/// The profile accumulated by [`MemProfile`].
#[derive(Debug, Clone, Default)]
pub struct MemoryProfile {
    /// Total loads observed.
    pub loads: u64,
    /// Total stores observed.
    pub stores: u64,
    /// Bytes moved by loads + stores.
    pub bytes_accessed: u64,
    /// Heap allocations observed.
    pub allocs: u64,
    /// Heap frees observed.
    pub frees: u64,
    /// Total bytes requested from the allocator.
    pub bytes_allocated: u64,
    /// Running live-allocation estimate (allocated − freed blocks' sizes).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_live_bytes: u64,
    line_counts: HashMap<u64, u64>,
    pc_counts: HashMap<u64, u64>,
    block_sizes: HashMap<u64, u64>,
}

impl MemoryProfile {
    /// The `n` most-accessed 64-byte lines as `(line_address, accesses)`,
    /// hottest first.
    #[must_use]
    pub fn hottest_lines(&self, n: usize) -> Vec<(u64, u64)> {
        let mut lines: Vec<(u64, u64)> = self.line_counts.iter().map(|(&a, &c)| (a, c)).collect();
        lines.sort_unstable_by_key(|&(addr, count)| (std::cmp::Reverse(count), addr));
        lines.truncate(n);
        lines
    }

    /// The `n` instructions issuing the most memory accesses, as
    /// `(pc, accesses)`, hottest first.
    #[must_use]
    pub fn hottest_pcs(&self, n: usize) -> Vec<(u64, u64)> {
        let mut pcs: Vec<(u64, u64)> = self.pc_counts.iter().map(|(&a, &c)| (a, c)).collect();
        pcs.sort_unstable_by_key(|&(pc, count)| (std::cmp::Reverse(count), pc));
        pcs.truncate(n);
        pcs
    }

    /// Number of distinct 64-byte lines touched (working-set estimate).
    #[must_use]
    pub fn distinct_lines(&self) -> usize {
        self.line_counts.len()
    }
}

/// The performance-profiling lifeguard.
///
/// # Examples
///
/// ```
/// use lba_cache::{MemSystem, MemSystemConfig};
/// use lba_lifeguard::DispatchEngine;
/// use lba_lifeguards::MemProfile;
/// use lba_record::EventRecord;
///
/// let mut mem = MemSystem::new(MemSystemConfig::dual_core());
/// let mut findings = Vec::new();
/// let engine = DispatchEngine::default();
/// let mut profiler = MemProfile::new();
/// for i in 0..10 {
///     let rec = EventRecord::load(0x1000, 0, Some(1), Some(2), 0x4000_0000 + i, 1);
///     engine.deliver(&mut profiler, &rec, &mut mem, 1, &mut findings);
/// }
/// assert_eq!(profiler.profile().loads, 10);
/// assert_eq!(profiler.profile().hottest_lines(1)[0], (0x4000_0000, 10));
/// ```
#[derive(Debug, Default)]
pub struct MemProfile {
    profile: MemoryProfile,
}

impl MemProfile {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The profile gathered so far.
    #[must_use]
    pub fn profile(&self) -> &MemoryProfile {
        &self.profile
    }

    /// Consumes the profiler, returning the profile.
    #[must_use]
    pub fn into_profile(self) -> MemoryProfile {
        self.profile
    }
}

impl Lifeguard for MemProfile {
    fn name(&self) -> &'static str {
        "memprofile"
    }

    fn subscriptions(&self) -> EventMask {
        EventMask::of(&[
            EventKind::Load,
            EventKind::Store,
            EventKind::Alloc,
            EventKind::Free,
            EventKind::Repeat,
        ])
    }

    /// Capture-side soundness contract: MemProfile's duplicates are
    /// meaningful, but only as *counts* — a repeated access at the same
    /// `pc` and 64-byte line contributes exactly `+1` to the same load or
    /// store counter, the same line and pc histogram buckets, and
    /// `+size` bytes. So duplicates may be folded: the capture filter
    /// accumulates them per window entry and re-emits one
    /// [`EventKind::Repeat`] summary on eviction or flush, which the
    /// `on_event` handler multiplies back in. Totals are exact at every
    /// window flush point (syscalls, via the trigger below, and end of
    /// program); only the *intermediate* profile between flushes lags.
    /// Alloc/free never flush: allocation statistics ride un-deduped
    /// events, and `peak_live_bytes` depends only on their order, which
    /// filtering preserves.
    fn idempotency(&self) -> IdempotencyClass {
        IdempotencyClass::Fold(WindowSpec {
            addr_granule_log2: LINE_BYTES.trailing_zeros() as u8,
            invalidate_on: EventMask::of(&[EventKind::Syscall]),
            flush_on_thread_switch: false,
        })
    }

    /// Degradation-soundness contract: MemProfile has no findings to
    /// protect (`findings_sound` is trivially kept — the degraded and
    /// undegraded finding sets are both empty); what degrades is the
    /// *profile*, from exact counts to a sampled estimate, and only
    /// while the load signal is past threshold.
    ///
    /// * **Window widening** — a wider fold window only accumulates
    ///   more duplicates per `Repeat` summary; totals stay exact at
    ///   every flush point.
    /// * **Droppable kinds** — everything the profile never reads:
    ///   control-flow, lock, input and liveness records. `syscall` is
    ///   *excluded* even though unread, because the fold window
    ///   invalidates on it — dropping it would defer the flush that
    ///   keeps totals exact at syscall boundaries.
    /// * **Sampling** — [`AlwaysSettled`]: with no verdicts at stake,
    ///   every access is settled by definition, so long-hot 64-byte
    ///   lines demote to 1-in-N capture and the histogram under-counts
    ///   (by exactly the amount `DegradationStats::sampled_out`
    ///   records) until load falls. Nothing repromotes regions except
    ///   the always-on triggers (findings cannot occur; syscalls do).
    fn degradation(&self) -> DegradationPolicy {
        DegradationPolicy {
            widen_window: true,
            droppable: EventMask::of(&[
                EventKind::Alu,
                EventKind::Branch,
                EventKind::Jump,
                EventKind::IndirectJump,
                EventKind::Call,
                EventKind::Return,
                EventKind::Lock,
                EventKind::Unlock,
                EventKind::Recv,
                EventKind::ThreadEnd,
            ]),
            sampling: Some(SamplingSpec {
                region_granule_log2: LINE_BYTES.trailing_zeros() as u8,
                clean_threshold: 8,
                sample_rate: 8,
                repromote_on: EventMask::EMPTY,
                make_classifier: || Box::new(AlwaysSettled),
            }),
            findings_sound: true,
        }
    }

    fn on_event(&mut self, rec: &EventRecord, ctx: &mut HandlerCtx<'_>) {
        let p = &mut self.profile;
        match rec.kind {
            EventKind::Load | EventKind::Store => {
                if rec.kind == EventKind::Load {
                    p.loads += 1;
                } else {
                    p.stores += 1;
                }
                p.bytes_accessed += u64::from(rec.size);
                *p.line_counts
                    .entry(rec.addr & !(LINE_BYTES - 1))
                    .or_insert(0) += 1;
                *p.pc_counts.entry(rec.pc).or_insert(0) += 1;
                // Two hash-table increments: ~4 instructions each, plus
                // the line/pc arithmetic.
                ctx.alu(10);
            }
            EventKind::Repeat => {
                // A capture-side fold summary: `count` suppressed
                // duplicates of one access, multiplied back in so the
                // totals match an unfiltered run exactly — one handler
                // invocation instead of `count`.
                let count = u64::from(rec.repeat_count());
                if rec.repeat_is_store() {
                    p.stores += count;
                } else {
                    p.loads += count;
                }
                p.bytes_accessed += count * u64::from(rec.repeat_width());
                *p.line_counts
                    .entry(rec.addr & !(LINE_BYTES - 1))
                    .or_insert(0) += count;
                *p.pc_counts.entry(rec.pc).or_insert(0) += count;
                // Same bucket work as a single access, plus the count
                // multiplies.
                ctx.alu(12);
            }
            EventKind::Alloc => {
                p.allocs += 1;
                p.bytes_allocated += u64::from(rec.size);
                p.live_bytes += u64::from(rec.size);
                p.peak_live_bytes = p.peak_live_bytes.max(p.live_bytes);
                if rec.addr != 0 {
                    p.block_sizes.insert(rec.addr, u64::from(rec.size));
                }
                ctx.alu(8);
            }
            EventKind::Free => {
                p.frees += 1;
                if let Some(size) = p.block_sizes.remove(&rec.addr) {
                    p.live_bytes = p.live_bytes.saturating_sub(size);
                }
                ctx.alu(8);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::{MemSystem, MemSystemConfig};
    use lba_lifeguard::DispatchEngine;

    struct Rig {
        mem: MemSystem,
        engine: DispatchEngine,
        findings: Vec<lba_lifeguard::Finding>,
        lg: MemProfile,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                mem: MemSystem::new(MemSystemConfig::dual_core()),
                engine: DispatchEngine::default(),
                findings: Vec::new(),
                lg: MemProfile::new(),
            }
        }

        fn deliver(&mut self, rec: EventRecord) {
            self.engine
                .deliver(&mut self.lg, &rec, &mut self.mem, 1, &mut self.findings);
        }
    }

    #[test]
    fn counts_loads_stores_and_bytes() {
        let mut rig = Rig::new();
        rig.deliver(EventRecord::load(0x1000, 0, None, None, 0x100, 8));
        rig.deliver(EventRecord::store(0x1008, 0, None, None, 0x108, 4));
        let p = rig.lg.profile();
        assert_eq!(p.loads, 1);
        assert_eq!(p.stores, 1);
        assert_eq!(p.bytes_accessed, 12);
    }

    #[test]
    fn hot_lines_sorted_by_count() {
        let mut rig = Rig::new();
        for _ in 0..5 {
            rig.deliver(EventRecord::load(0x1000, 0, None, None, 0x40, 4));
        }
        for _ in 0..3 {
            rig.deliver(EventRecord::load(0x1008, 0, None, None, 0x100, 4));
        }
        let hot = rig.lg.profile().hottest_lines(2);
        assert_eq!(hot, vec![(0x40, 5), (0x100, 3)]);
        assert_eq!(rig.lg.profile().distinct_lines(), 2);
    }

    #[test]
    fn hot_pcs_identify_the_access_site() {
        let mut rig = Rig::new();
        for i in 0..4 {
            rig.deliver(EventRecord::load(0x2000, 0, None, None, 0x40 * i, 4));
        }
        rig.deliver(EventRecord::store(0x2008, 0, None, None, 0x999, 4));
        assert_eq!(rig.lg.profile().hottest_pcs(1), vec![(0x2000, 4)]);
    }

    #[test]
    fn allocation_stats_track_peak_live() {
        let mut rig = Rig::new();
        let alloc = |addr: u64, size: u32| EventRecord {
            pc: 0x1000,
            kind: EventKind::Alloc,
            tid: 0,
            in1: None,
            in2: None,
            out: Some(1),
            addr,
            size,
        };
        let free = |addr: u64| EventRecord {
            pc: 0x1008,
            kind: EventKind::Free,
            tid: 0,
            in1: Some(1),
            in2: None,
            out: None,
            addr,
            size: 0,
        };
        rig.deliver(alloc(0x4000_0000, 100));
        rig.deliver(alloc(0x4000_1000, 200));
        rig.deliver(free(0x4000_0000));
        rig.deliver(alloc(0x4000_2000, 50));
        let p = rig.lg.profile();
        assert_eq!(p.allocs, 3);
        assert_eq!(p.frees, 1);
        assert_eq!(p.bytes_allocated, 350);
        assert_eq!(p.live_bytes, 250);
        assert_eq!(p.peak_live_bytes, 300);
    }

    #[test]
    fn never_reports_findings() {
        let mut rig = Rig::new();
        for i in 0..100 {
            rig.deliver(EventRecord::load(0x1000, 0, None, None, i * 64, 8));
        }
        assert!(rig.findings.is_empty());
    }
}
