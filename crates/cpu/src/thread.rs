//! Per-thread execution contexts.

use lba_isa::Reg;
use lba_mem::layout;

/// Maximum call-stack depth per thread.
pub const MAX_CALL_DEPTH: usize = 4096;

/// Scheduling state of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Waiting to acquire the lock at the given address.
    Blocked(u64),
    /// Finished (halted or returned from its entry function).
    Halted,
}

/// Architectural state of one thread.
#[derive(Debug, Clone)]
pub(crate) struct ThreadCtx {
    pub tid: u8,
    pub pc: u64,
    pub regs: [u64; Reg::COUNT],
    pub state: ThreadState,
    /// Return-address stack (the core model keeps return addresses in a
    /// link stack rather than simulated memory; DESIGN.md §2).
    pub ras: Vec<u64>,
}

impl ThreadCtx {
    pub fn new(tid: u8, entry: u64) -> Self {
        let mut regs = [0u64; Reg::COUNT];
        regs[Reg::SP.index()] = layout::stack_top(tid);
        ThreadCtx {
            tid,
            pc: entry,
            regs,
            state: ThreadState::Runnable,
            ras: Vec::new(),
        }
    }

    /// Reads a register; `r0` is hard-wired to zero.
    pub fn read(&self, reg: Reg) -> u64 {
        if reg == Reg::ZERO {
            0
        } else {
            self.regs[reg.index()]
        }
    }

    /// Writes a register; writes to `r0` are discarded.
    pub fn write(&mut self, reg: Reg, value: u64) {
        if reg != Reg::ZERO {
            self.regs[reg.index()] = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut t = ThreadCtx::new(0, 0x1000);
        t.write(Reg::ZERO, 99);
        assert_eq!(t.read(Reg::ZERO), 0);
    }

    #[test]
    fn stack_pointer_initialised_per_thread() {
        let t0 = ThreadCtx::new(0, 0x1000);
        let t1 = ThreadCtx::new(1, 0x1000);
        assert_eq!(t0.read(Reg::SP), layout::stack_top(0));
        assert_eq!(t1.read(Reg::SP), layout::stack_top(1));
        assert_ne!(t0.read(Reg::SP), t1.read(Reg::SP));
    }

    #[test]
    fn new_thread_is_runnable_at_entry() {
        let t = ThreadCtx::new(3, 0x2000);
        assert_eq!(t.state, ThreadState::Runnable);
        assert_eq!(t.pc, 0x2000);
        assert_eq!(t.tid, 3);
    }
}
