//! The machine: threads, scheduler, instruction semantics and retire hook.

use std::collections::HashMap;

use lba_cache::MemSystem;
use lba_isa::{AluOp, Instruction, Program, Reg, INST_BYTES};
use lba_mem::{layout, HeapAllocator, Memory};
use lba_record::{EventKind, EventRecord};

use crate::error::RunError;
use crate::thread::{ThreadCtx, ThreadState, MAX_CALL_DEPTH};

/// Configuration of a [`Machine`].
///
/// The `*_cycles` fields model the library/kernel work behind runtime
/// events; the paper's benchmarks pay the equivalent costs inside libc and
/// the OS (DESIGN.md §5 documents the substitution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Round-robin timeslice in retired instructions.
    pub quantum: u64,
    /// Heap arena size in bytes.
    pub heap_size: u64,
    /// Modelled cycles for `alloc` beyond the base instruction cost.
    pub alloc_cycles: u64,
    /// Modelled cycles for `free` beyond the base instruction cost.
    pub free_cycles: u64,
    /// Modelled cycles for `lock`/`unlock` beyond the base instruction cost.
    pub lock_cycles: u64,
    /// Modelled kernel cycles for `syscall` beyond the base instruction cost.
    pub syscall_cycles: u64,
    /// Hard stop on retired instructions (runaway-loop guard).
    pub max_instructions: u64,
    /// Which [`MemSystem`] core this machine's accesses are charged to.
    pub core: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            quantum: 4096,
            heap_size: layout::HEAP_SIZE,
            alloc_cycles: 20,
            free_cycles: 15,
            lock_cycles: 10,
            syscall_cycles: 50,
            max_instructions: 200_000_000,
            core: 0,
        }
    }
}

/// One retired instruction: its event record and base execution cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// The capture-hardware view of the instruction.
    pub record: EventRecord,
    /// Base cycles: 1 (CPI) + fetch and data-cache penalties + runtime-event
    /// costs. Excludes any monitoring overhead.
    pub cycles: u64,
}

/// Result of one [`Machine::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired.
    Retired(Retired),
    /// All threads have halted.
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct LockInfo {
    owner: u8,
}

/// An executing MiniISA program: memory, heap, threads and scheduler.
///
/// The machine is deterministic: the same program and configuration always
/// produce the same instruction stream, which the co-simulation layers rely
/// on (LBA and DBI runs of one program see identical event streams).
///
/// Cache-cycle accounting is externalised: [`Machine::step`] charges its
/// fetch and data accesses to the [`MemSystem`] core named in the
/// configuration, so monitors sharing that core (DBI) or running on another
/// core (LBA lifeguard) naturally interact through the cache model.
#[derive(Debug, Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    config: MachineConfig,
    memory: Memory,
    heap: HeapAllocator,
    threads: Vec<ThreadCtx>,
    locks: HashMap<u64, LockInfo>,
    current: usize,
    quantum_left: u64,
    input_pos: usize,
    retired: u64,
}

impl<'p> Machine<'p> {
    /// Creates a machine with one thread per program entry point, loading
    /// data segments into memory.
    ///
    /// # Panics
    ///
    /// Panics if the program declares more than 255 entry points.
    #[must_use]
    pub fn new(program: &'p Program, config: MachineConfig) -> Self {
        assert!(program.entries().len() <= 255, "too many threads");
        let mut memory = Memory::new();
        // Load the encoded code image so instruction fetches touch real
        // bytes (the I-cache model keys on addresses; contents are for
        // completeness and debugging).
        memory.write_slice(lba_isa::CODE_BASE, &program.encode_code());
        for seg in program.data() {
            memory.write_slice(seg.addr, &seg.bytes);
        }
        let threads = program
            .entries()
            .iter()
            .enumerate()
            .map(|(tid, &entry)| ThreadCtx::new(tid as u8, entry))
            .collect();
        Machine {
            program,
            config,
            memory,
            heap: HeapAllocator::new(layout::HEAP_BASE, config.heap_size),
            threads,
            locks: HashMap::new(),
            current: 0,
            quantum_left: config.quantum,
            input_pos: 0,
            retired: 0,
        }
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The machine's memory (for examples and assertions).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The heap allocator state (leak inspection in examples/tests).
    #[must_use]
    pub fn heap(&self) -> &HeapAllocator {
        &self.heap
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Scheduling state of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn thread_state(&self, tid: u8) -> ThreadState {
        self.threads[tid as usize].state
    }

    /// Reads an architectural register of thread `tid` (for tests/examples).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn reg(&self, tid: u8, reg: Reg) -> u64 {
        self.threads[tid as usize].read(reg)
    }

    fn all_halted(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Halted)
    }

    fn next_runnable(&self, from: usize) -> Option<usize> {
        let n = self.threads.len();
        (1..=n)
            .map(|i| (from + i) % n)
            .find(|&i| self.threads[i].state == ThreadState::Runnable)
    }

    /// Executes until the next instruction retires.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on invalid control flow, deadlock, call-depth
    /// overflow or when the instruction limit is reached.
    pub fn step(&mut self, mem: &mut MemSystem) -> Result<StepOutcome, RunError> {
        if self.all_halted() {
            return Ok(StepOutcome::Finished);
        }
        if self.retired >= self.config.max_instructions {
            return Err(RunError::InstructionLimit {
                limit: self.config.max_instructions,
            });
        }
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > self.threads.len() + 1 {
                return Err(RunError::Deadlock);
            }
            if self.threads[self.current].state != ThreadState::Runnable || self.quantum_left == 0 {
                match self.next_runnable(self.current) {
                    Some(idx) => {
                        self.current = idx;
                        self.quantum_left = self.config.quantum;
                    }
                    None => {
                        return if self.all_halted() {
                            Ok(StepOutcome::Finished)
                        } else {
                            Err(RunError::Deadlock)
                        };
                    }
                }
            }
            if let Some(retired) = self.try_execute(mem)? {
                self.quantum_left -= 1;
                self.retired += 1;
                return Ok(StepOutcome::Retired(retired));
            }
            // Current thread blocked on a lock; reschedule.
        }
    }

    /// Runs to completion, passing every retired instruction to `sink`.
    /// Returns the total base cycles (the unmonitored execution time).
    ///
    /// # Errors
    ///
    /// Propagates any [`RunError`] from [`Machine::step`].
    pub fn run(
        &mut self,
        mem: &mut MemSystem,
        mut sink: impl FnMut(&Retired),
    ) -> Result<u64, RunError> {
        let mut cycles = 0;
        loop {
            match self.step(mem)? {
                StepOutcome::Retired(r) => {
                    cycles += r.cycles;
                    sink(&r);
                }
                StepOutcome::Finished => return Ok(cycles),
            }
        }
    }

    /// Executes one instruction on the current thread. Returns `None` when
    /// the thread blocked on a lock (no instruction retired).
    fn try_execute(&mut self, mem: &mut MemSystem) -> Result<Option<Retired>, RunError> {
        let core = self.config.core;
        let idx = self.current;
        let tid = self.threads[idx].tid;
        let pc = self.threads[idx].pc;
        let inst = *self.program.fetch(pc).ok_or(RunError::BadPc { pc, tid })?;

        let mut cycles = 1 + mem.inst_fetch(core, pc);
        let mut next_pc = pc + INST_BYTES;
        let (in1, in2) = {
            let ins = inst.inputs();
            (ins[0].map(|r| r.to_byte()), ins[1].map(|r| r.to_byte()))
        };
        let out = inst.output().map(|r| r.to_byte());
        let mut halt_thread = false;

        let record = match inst {
            Instruction::Nop => EventRecord::alu(pc, tid, None, None, None),
            Instruction::Halt => {
                halt_thread = true;
                EventRecord {
                    pc,
                    kind: EventKind::ThreadEnd,
                    tid,
                    in1: None,
                    in2: None,
                    out: None,
                    addr: 0,
                    size: 0,
                }
            }
            Instruction::MovImm { rd, imm } => {
                self.threads[idx].write(rd, imm as u64);
                EventRecord::alu(pc, tid, None, None, out)
            }
            Instruction::Mov { rd, rs } => {
                let v = self.threads[idx].read(rs);
                self.threads[idx].write(rd, v);
                EventRecord::alu(pc, tid, in1, None, out)
            }
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let a = self.threads[idx].read(rs1);
                let b = self.threads[idx].read(rs2);
                self.threads[idx].write(rd, eval_alu(op, a, b));
                EventRecord::alu(pc, tid, in1, in2, out)
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let a = self.threads[idx].read(rs1);
                self.threads[idx].write(rd, eval_alu(op, a, imm as u64));
                EventRecord::alu(pc, tid, in1, None, out)
            }
            Instruction::Load {
                rd,
                base,
                offset,
                width,
            } => {
                let ea = self.threads[idx].read(base).wrapping_add(offset as u64);
                let w = width.bytes();
                cycles += mem.data_access(core, ea, w, false);
                let v = self.memory.read_width(ea, w);
                self.threads[idx].write(rd, v);
                EventRecord::load(pc, tid, in1, out, ea, w)
            }
            Instruction::Store {
                src,
                base,
                offset,
                width,
            } => {
                let ea = self.threads[idx].read(base).wrapping_add(offset as u64);
                let w = width.bytes();
                cycles += mem.data_access(core, ea, w, true);
                let v = self.threads[idx].read(src);
                self.memory.write_width(ea, v, w);
                EventRecord::store(pc, tid, in1, in2, ea, w)
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let a = self.threads[idx].read(rs1);
                let b = self.threads[idx].read(rs2);
                let taken = cond.eval(a, b);
                if taken {
                    next_pc = target;
                }
                EventRecord {
                    pc,
                    kind: EventKind::Branch,
                    tid,
                    in1,
                    in2,
                    out: None,
                    addr: target,
                    size: u32::from(taken),
                }
            }
            Instruction::Jump { target } => {
                next_pc = target;
                EventRecord {
                    pc,
                    kind: EventKind::Jump,
                    tid,
                    in1: None,
                    in2: None,
                    out: None,
                    addr: target,
                    size: 0,
                }
            }
            Instruction::JumpReg { rs } => {
                let target = self.threads[idx].read(rs);
                if self.program.index_of(target).is_none() {
                    return Err(RunError::BadJumpTarget { pc, target, tid });
                }
                next_pc = target;
                EventRecord {
                    pc,
                    kind: EventKind::IndirectJump,
                    tid,
                    in1,
                    in2: None,
                    out: None,
                    addr: target,
                    size: 0,
                }
            }
            Instruction::Call { target } => {
                if self.threads[idx].ras.len() >= MAX_CALL_DEPTH {
                    return Err(RunError::CallDepth { tid });
                }
                self.threads[idx].ras.push(pc + INST_BYTES);
                next_pc = target;
                EventRecord {
                    pc,
                    kind: EventKind::Call,
                    tid,
                    in1: None,
                    in2: None,
                    out: None,
                    addr: target,
                    size: 0,
                }
            }
            Instruction::CallReg { rs } => {
                let target = self.threads[idx].read(rs);
                if self.program.index_of(target).is_none() {
                    return Err(RunError::BadJumpTarget { pc, target, tid });
                }
                if self.threads[idx].ras.len() >= MAX_CALL_DEPTH {
                    return Err(RunError::CallDepth { tid });
                }
                self.threads[idx].ras.push(pc + INST_BYTES);
                next_pc = target;
                EventRecord {
                    pc,
                    kind: EventKind::IndirectJump,
                    tid,
                    in1,
                    in2: None,
                    out: None,
                    addr: target,
                    size: 0,
                }
            }
            Instruction::Ret => match self.threads[idx].ras.pop() {
                Some(ra) => {
                    next_pc = ra;
                    EventRecord {
                        pc,
                        kind: EventKind::Return,
                        tid,
                        in1: None,
                        in2: None,
                        out: None,
                        addr: ra,
                        size: 0,
                    }
                }
                None => {
                    // Returning from the entry function ends the thread.
                    halt_thread = true;
                    EventRecord {
                        pc,
                        kind: EventKind::ThreadEnd,
                        tid,
                        in1: None,
                        in2: None,
                        out: None,
                        addr: 0,
                        size: 0,
                    }
                }
            },
            Instruction::Alloc { rd, size } => {
                let req = self.threads[idx].read(size);
                cycles += self.config.alloc_cycles;
                let ptr = self.heap.alloc(req).unwrap_or(0);
                self.threads[idx].write(rd, ptr);
                EventRecord {
                    pc,
                    kind: EventKind::Alloc,
                    tid,
                    in1,
                    in2: None,
                    out,
                    addr: ptr,
                    size: req.min(u64::from(u32::MAX)) as u32,
                }
            }
            Instruction::Free { rs } => {
                let addr = self.threads[idx].read(rs);
                cycles += self.config.free_cycles;
                // Tolerant runtime: erroneous frees are the lifeguard's to
                // flag; the heap itself stays consistent.
                let _ = self.heap.free(addr);
                EventRecord {
                    pc,
                    kind: EventKind::Free,
                    tid,
                    in1,
                    in2: None,
                    out: None,
                    addr,
                    size: 0,
                }
            }
            Instruction::Lock { rs } => {
                let addr = self.threads[idx].read(rs);
                match self.locks.get(&addr) {
                    Some(info) if info.owner != tid => {
                        // Lock held elsewhere: block without retiring.
                        self.threads[idx].state = ThreadState::Blocked(addr);
                        return Ok(None);
                    }
                    _ => {
                        self.locks.insert(addr, LockInfo { owner: tid });
                    }
                }
                cycles += self.config.lock_cycles;
                EventRecord {
                    pc,
                    kind: EventKind::Lock,
                    tid,
                    in1,
                    in2: None,
                    out: None,
                    addr,
                    size: 0,
                }
            }
            Instruction::Unlock { rs } => {
                let addr = self.threads[idx].read(rs);
                if self.locks.get(&addr).is_some_and(|info| info.owner == tid) {
                    self.locks.remove(&addr);
                    for t in &mut self.threads {
                        if t.state == ThreadState::Blocked(addr) {
                            t.state = ThreadState::Runnable;
                        }
                    }
                }
                cycles += self.config.lock_cycles;
                EventRecord {
                    pc,
                    kind: EventKind::Unlock,
                    tid,
                    in1,
                    in2: None,
                    out: None,
                    addr,
                    size: 0,
                }
            }
            Instruction::Recv { base, len } => {
                let dst = self.threads[idx].read(base);
                let n = self.threads[idx].read(len);
                let n = n.min(1 << 20); // cap one transfer at 1 MiB
                let bytes = self.next_input(n as usize);
                self.memory.write_slice(dst, &bytes);
                // Kernel-side copy: charge one write per 8-byte chunk.
                let mut off = 0u64;
                while off < n {
                    cycles += mem.data_access(core, dst + off, 8.min((n - off) as u32), true);
                    off += 8;
                }
                EventRecord {
                    pc,
                    kind: EventKind::Recv,
                    tid,
                    in1,
                    in2,
                    out: None,
                    addr: dst,
                    size: n as u32,
                }
            }
            Instruction::Syscall { num } => {
                cycles += self.config.syscall_cycles;
                EventRecord {
                    pc,
                    kind: EventKind::Syscall,
                    tid,
                    in1: None,
                    in2: None,
                    out: None,
                    addr: 0,
                    size: u32::from(num),
                }
            }
        };

        if halt_thread {
            self.threads[idx].state = ThreadState::Halted;
        } else {
            self.threads[idx].pc = next_pc;
        }
        Ok(Some(Retired { record, cycles }))
    }

    /// Produces `n` input bytes; the stream repeats cyclically so `recv`
    /// always delivers the requested length (deterministic workloads rely
    /// on this). An empty input stream yields zeros.
    fn next_input(&mut self, n: usize) -> Vec<u8> {
        let input = self.program.input();
        if input.is_empty() {
            return vec![0; n];
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(input[self.input_pos]);
            self.input_pos = (self.input_pos + 1) % input.len();
        }
        out
    }
}

fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        // Division by zero yields 0 rather than trapping (RISC-V semantics
        // would give all-ones; 0 keeps planted-bug workloads deterministic).
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::MemSystemConfig;
    use lba_isa::parse_program;

    fn run_program(src: &str) -> (Vec<EventRecord>, u64) {
        let program = parse_program(src).expect("valid program");
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        let mut records = Vec::new();
        let cycles = machine
            .run(&mut mem, |r| records.push(r.record))
            .expect("runs");
        (records, cycles)
    }

    #[test]
    fn straight_line_arithmetic() {
        let program = parse_program("movi r1, 6\nmuli r1, r1, 7\nhalt").unwrap();
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        machine.run(&mut mem, |_| {}).unwrap();
        assert_eq!(machine.reg(0, lba_isa::r(1)), 42);
    }

    #[test]
    fn loop_retires_expected_count() {
        let (records, _) = run_program(
            "
            movi r1, 10
            top:
              subi r1, r1, 1
              bne r1, r0, top
            halt
            ",
        );
        // 1 movi + 10*(subi+bne) + halt(thread-end)
        assert_eq!(records.len(), 1 + 20 + 1);
        assert_eq!(records.last().unwrap().kind, EventKind::ThreadEnd);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let (records, _) = run_program(
            "
            movi r2, 0x100000
            movi r1, 77
            store.8 r1, [r2+0]
            load.8 r3, [r2+0]
            store.8 r3, [r2+8]
            halt
            ",
        );
        let stores: Vec<_> = records
            .iter()
            .filter(|r| r.kind == EventKind::Store)
            .collect();
        assert_eq!(stores.len(), 2);
        assert_eq!(stores[0].addr, 0x10_0000);
        assert_eq!(stores[1].addr, 0x10_0008);
    }

    #[test]
    fn memory_values_visible_after_run() {
        let program = parse_program(
            "
            movi r2, 0x100000
            movi r1, 513
            store.4 r1, [r2+0]
            halt
            ",
        )
        .unwrap();
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        machine.run(&mut mem, |_| {}).unwrap();
        assert_eq!(machine.memory().read_u32(0x10_0000), 513);
    }

    #[test]
    fn call_and_ret_use_link_stack() {
        let (records, _) = run_program(
            "
            call f
            halt
            f:
              ret
            ",
        );
        let kinds: Vec<_> = records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Call, EventKind::Return, EventKind::ThreadEnd]
        );
        assert_eq!(
            records[1].addr,
            lba_isa::CODE_BASE + INST_BYTES,
            "returns to halt"
        );
    }

    #[test]
    fn ret_from_entry_ends_thread() {
        let (records, _) = run_program("nop\nret");
        assert_eq!(records.last().unwrap().kind, EventKind::ThreadEnd);
    }

    #[test]
    fn alloc_free_events_carry_addresses() {
        let (records, _) = run_program(
            "
            movi r1, 64
            alloc r2, r1
            free r2
            halt
            ",
        );
        let alloc = records.iter().find(|r| r.kind == EventKind::Alloc).unwrap();
        let free = records.iter().find(|r| r.kind == EventKind::Free).unwrap();
        assert_eq!(alloc.addr, layout::HEAP_BASE);
        assert_eq!(alloc.size, 64);
        assert_eq!(free.addr, alloc.addr);
    }

    #[test]
    fn recv_writes_input_and_reports_range() {
        let program = parse_program(
            "
            .input \"abcd\"
            movi r1, 0x100000
            movi r2, 6
            recv r1, r2
            halt
            ",
        )
        .unwrap();
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        let mut recv = None;
        machine
            .run(&mut mem, |r| {
                if r.record.kind == EventKind::Recv {
                    recv = Some(r.record);
                }
            })
            .unwrap();
        let recv = recv.expect("recv event");
        assert_eq!(recv.addr, 0x10_0000);
        assert_eq!(recv.size, 6);
        // Input repeats cyclically: "abcdab".
        assert_eq!(machine.memory().read_vec(0x10_0000, 6), b"abcdab");
    }

    #[test]
    fn indirect_jump_through_register() {
        let (records, _) = run_program(
            "
            lea r1, target
            jmpr r1
            nop
            target:
              halt
            ",
        );
        let ij = records
            .iter()
            .find(|r| r.kind == EventKind::IndirectJump)
            .unwrap();
        assert_eq!(ij.addr, lba_isa::CODE_BASE + 3 * INST_BYTES);
        // The nop was skipped.
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn bad_indirect_target_is_an_error() {
        let program = parse_program("movi r1, 0x999999\njmpr r1\nhalt").unwrap();
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        let err = machine.run(&mut mem, |_| {}).unwrap_err();
        assert!(matches!(
            err,
            RunError::BadJumpTarget {
                target: 0x99_9999,
                ..
            }
        ));
    }

    #[test]
    fn two_threads_interleave() {
        let (records, _) = run_program(
            "
            .entry t0
            .entry t1
            t0:
              movi r1, 1
              halt
            t1:
              movi r1, 2
              halt
            ",
        );
        let tids: std::collections::HashSet<u8> = records.iter().map(|r| r.tid).collect();
        assert_eq!(tids.len(), 2);
        assert_eq!(
            records
                .iter()
                .filter(|r| r.kind == EventKind::ThreadEnd)
                .count(),
            2
        );
    }

    #[test]
    fn contended_lock_serialises() {
        // Thread 0 takes the lock, then both threads increment a shared
        // counter under the lock; final value must be 2.
        let (records, _) = run_program(
            "
            .entry t0
            .entry t1
            t0:
              movi r2, 0x100000
              movi r3, 0x100100
              lock r3
              load.8 r1, [r2+0]
              addi r1, r1, 1
              store.8 r1, [r2+0]
              unlock r3
              halt
            t1:
              movi r2, 0x100000
              movi r3, 0x100100
              lock r3
              load.8 r1, [r2+0]
              addi r1, r1, 1
              store.8 r1, [r2+0]
              unlock r3
              halt
            ",
        );
        assert_eq!(
            records.iter().filter(|r| r.kind == EventKind::Lock).count(),
            2
        );
        assert_eq!(
            records
                .iter()
                .filter(|r| r.kind == EventKind::Unlock)
                .count(),
            2
        );
    }

    #[test]
    fn lock_updates_are_atomic_under_contention() {
        // Small quantum forces interleaving inside the critical section if
        // locking were broken.
        let src = "
            .entry t0
            .entry t1
            t0:
              movi r2, 0x100000
              movi r3, 0x100100
              movi r4, 50
            t0loop:
              lock r3
              load.8 r1, [r2+0]
              addi r1, r1, 1
              store.8 r1, [r2+0]
              unlock r3
              subi r4, r4, 1
              bne r4, r0, t0loop
              halt
            t1:
              movi r2, 0x100000
              movi r3, 0x100100
              movi r4, 50
            t1loop:
              lock r3
              load.8 r1, [r2+0]
              addi r1, r1, 1
              store.8 r1, [r2+0]
              unlock r3
              subi r4, r4, 1
              bne r4, r0, t1loop
              halt
            ";
        let program = parse_program(src).unwrap();
        let config = MachineConfig {
            quantum: 3,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&program, config);
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        machine.run(&mut mem, |_| {}).unwrap();
        assert_eq!(machine.memory().read_u64(0x10_0000), 100);
    }

    #[test]
    fn deadlock_detected() {
        // Two threads acquire two locks in opposite order with a small
        // quantum: classic ABBA deadlock.
        let src = "
            .entry t0
            .entry t1
            t0:
              movi r1, 0x100000
              movi r2, 0x100100
              lock r1
              nop
              nop
              nop
              nop
              lock r2
              halt
            t1:
              movi r1, 0x100000
              movi r2, 0x100100
              lock r2
              nop
              nop
              nop
              nop
              lock r1
              halt
            ";
        let program = parse_program(src).unwrap();
        let config = MachineConfig {
            quantum: 4,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&program, config);
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        let err = machine.run(&mut mem, |_| {}).unwrap_err();
        assert_eq!(err, RunError::Deadlock);
    }

    #[test]
    fn instruction_limit_guards_runaway_loops() {
        let program = parse_program("top:\n  jmp top\nhalt").unwrap();
        let config = MachineConfig {
            max_instructions: 100,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&program, config);
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        let err = machine.run(&mut mem, |_| {}).unwrap_err();
        assert_eq!(err, RunError::InstructionLimit { limit: 100 });
    }

    #[test]
    fn syscall_charges_kernel_cycles() {
        let program = parse_program("syscall 1\nhalt").unwrap();
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        let mut sys_cycles = 0;
        machine
            .run(&mut mem, |r| {
                if r.record.kind == EventKind::Syscall {
                    sys_cycles = r.cycles;
                }
            })
            .unwrap();
        assert!(sys_cycles >= MachineConfig::default().syscall_cycles);
    }

    #[test]
    fn double_free_is_tolerated_but_visible_in_events() {
        let (records, _) = run_program(
            "
            movi r1, 32
            alloc r2, r1
            free r2
            free r2
            halt
            ",
        );
        let frees: Vec<_> = records
            .iter()
            .filter(|r| r.kind == EventKind::Free)
            .collect();
        assert_eq!(
            frees.len(),
            2,
            "both frees retire; the lifeguard flags the second"
        );
        assert_eq!(frees[0].addr, frees[1].addr);
    }

    #[test]
    fn cycles_include_cache_penalties() {
        let (_, cycles_cold) = run_program(
            "
            movi r2, 0x100000
            load.8 r1, [r2+0]
            halt
            ",
        );
        // 3 instructions at CPI 1 plus at least one I-miss and one D-miss.
        assert!(
            cycles_cold > 3 + 100,
            "cold misses dominate: got {cycles_cold}"
        );
    }

    #[test]
    fn step_after_finish_keeps_returning_finished() {
        let program = parse_program("halt").unwrap();
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        machine.run(&mut mem, |_| {}).unwrap();
        assert_eq!(machine.step(&mut mem).unwrap(), StepOutcome::Finished);
        assert_eq!(machine.step(&mut mem).unwrap(), StepOutcome::Finished);
    }
}
