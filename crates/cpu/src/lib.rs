//! The in-order CPU model executing MiniISA programs.
//!
//! Implements the paper's §3 core model: single cycle per instruction plus
//! cache penalties from [`lba_cache::MemSystem`]. The machine supports
//! multiple application threads (for the LockSet workloads `water` and
//! `zchaff`) scheduled round-robin on one core, a user-level heap backing
//! `alloc`/`free`, blocking locks, an external input stream for `recv`, and
//! a retire hook producing one [`lba_record::EventRecord`] per instruction —
//! the LBA capture unit's view.
//!
//! # Examples
//!
//! ```
//! use lba_cache::{MemSystem, MemSystemConfig};
//! use lba_cpu::{Machine, MachineConfig, StepOutcome};
//! use lba_isa::parse_program;
//!
//! let program = parse_program("movi r1, 2\nmuli r1, r1, 21\nhalt")?;
//! let mut machine = Machine::new(&program, MachineConfig::default());
//! let mut mem = MemSystem::new(MemSystemConfig::single_core());
//! let mut retired = 0;
//! while let lba_cpu::StepOutcome::Retired(_) = machine.step(&mut mem)? {
//!     retired += 1;
//! }
//! assert_eq!(retired, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod error;
mod machine;
mod thread;

pub use error::RunError;
pub use machine::{Machine, MachineConfig, Retired, StepOutcome};
pub use thread::ThreadState;
