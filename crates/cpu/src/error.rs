//! Execution errors.

use std::fmt;

/// Error terminating a [`Machine`](crate::Machine) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The program counter left the code image.
    BadPc {
        /// The invalid program counter.
        pc: u64,
        /// The thread that faulted.
        tid: u8,
    },
    /// An indirect jump or call targeted an address outside the code image.
    BadJumpTarget {
        /// Address of the faulting instruction.
        pc: u64,
        /// The invalid target.
        target: u64,
        /// The thread that faulted.
        tid: u8,
    },
    /// Every live thread is blocked on a lock.
    Deadlock,
    /// The call stack exceeded the maximum depth.
    CallDepth {
        /// The thread that faulted.
        tid: u8,
    },
    /// The configured instruction limit was reached (runaway-loop guard).
    InstructionLimit {
        /// The configured limit.
        limit: u64,
    },
    /// The configured log buffer is smaller than a single transport frame,
    /// so not even one record could ever be shipped to the lifeguard.
    LogBufferTooSmall {
        /// The configured buffer size in bytes.
        buffer_bytes: u64,
        /// The minimum frame size in bytes (one cache line).
        frame_bytes: u64,
    },
    /// `records_per_frame` was configured to zero: no frame could ever
    /// seal, so no record would reach the lifeguard.
    ZeroRecordsPerFrame,
    /// The live log channel's consumer stopped draining for longer than
    /// the configured stall timeout
    /// (`LogConfig::channel_stall_timeout`): the producer latched the
    /// stall and abandoned the run instead of spinning on the full queue
    /// forever.
    ChannelStalled,
    /// The run's flight recording could not be written or closed (disk
    /// full, permissions, retention delete failure).
    Recording {
        /// What the stream layer reported.
        detail: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::BadPc { pc, tid } => {
                write!(f, "thread {tid} fetched from invalid pc {pc:#x}")
            }
            RunError::BadJumpTarget { pc, target, tid } => write!(
                f,
                "thread {tid} at {pc:#x} jumped to invalid target {target:#x}"
            ),
            RunError::Deadlock => write!(f, "all live threads are blocked on locks"),
            RunError::CallDepth { tid } => write!(f, "thread {tid} exceeded call depth"),
            RunError::InstructionLimit { limit } => {
                write!(f, "instruction limit of {limit} reached")
            }
            RunError::LogBufferTooSmall {
                buffer_bytes,
                frame_bytes,
            } => write!(
                f,
                "log buffer of {buffer_bytes} B cannot hold a single {frame_bytes} B log frame"
            ),
            RunError::ZeroRecordsPerFrame => {
                write!(f, "log records_per_frame must be non-zero")
            }
            RunError::ChannelStalled => write!(
                f,
                "log channel stalled: the consumer stopped draining past the configured timeout"
            ),
            RunError::Recording { detail } => {
                write!(f, "flight recording failed: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}
