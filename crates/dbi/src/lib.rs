//! The Valgrind-style dynamic-binary-instrumentation baseline.
//!
//! The paper's comparison point runs the *same* lifeguard analyses via
//! software-only DBI on the application's own core. That design has two
//! overhead sources the paper calls out explicitly:
//!
//! 1. the monitor and the application **compete for processor resources**
//!    (cycles, registers, L1 cache) because they share a core, and
//! 2. the software **recreates hardware state** (instruction pointers,
//!    effective addresses, …) that LBA's capture hardware provides for
//!    free.
//!
//! [`DbiEngine`] models this by charging, per retired instruction:
//! amortised binary-translation/dispatch cost, per-event register
//! save/restore, basic-block entry overhead, and the lifeguard's own work
//! inflated by a register-pressure factor — with all shadow-memory traffic
//! going through the **application core's** caches
//! ([`HandlerCtx::with_work_factor`](lba_lifeguard::HandlerCtx)), so cache
//! pollution emerges from the simulation.
//!
//! The lifeguard implementations are shared verbatim with the LBA path;
//! only the execution model differs, exactly as in the paper.
//!
//! # Examples
//!
//! ```
//! use lba_cache::{MemSystem, MemSystemConfig};
//! use lba_dbi::DbiEngine;
//! use lba_lifeguards::AddrCheck;
//! use lba_record::EventRecord;
//!
//! let mut mem = MemSystem::new(MemSystemConfig::single_core());
//! let mut findings = Vec::new();
//! let engine = DbiEngine::default();
//! let mut lifeguard = AddrCheck::new();
//!
//! let rec = EventRecord::load(0x1000, 0, Some(1), Some(2), 0x4000_0000, 8);
//! let overhead = engine.instrument(&mut lifeguard, &rec, &mut mem, 0, &mut findings);
//! assert!(overhead > 10, "DBI charges translation + dispatch + analysis");
//! ```

use lba_cache::MemSystem;
use lba_lifeguard::{Finding, HandlerCtx, Lifeguard};
use lba_record::{EventKind, EventRecord};

/// Cycle model of the DBI baseline.
///
/// Defaults are calibrated so the three lifeguards land in the paper's
/// reported Valgrind band (10–85× slowdowns) with per-benchmark variation
/// coming from the cache model; see DESIGN.md §2 and §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbiConfig {
    /// Amortised binary-translation and dispatch cycles per retired
    /// instruction (code-cache lookups, IR bookkeeping).
    pub translation_cycles: u64,
    /// Extra cycles at each basic-block entry (chaining, environment
    /// checks); charged when a control-flow instruction retires.
    pub block_entry_cycles: u64,
    /// Register save/restore plus argument marshalling per instrumented
    /// event.
    pub event_overhead_cycles: u64,
    /// Multiplier (percent) on the lifeguard's instruction work: software
    /// instrumentation suffers register pressure and lacks the hardware
    /// dispatch assist (100 = parity with the LBA lifeguard core).
    pub work_factor_pct: u64,
    /// Cycles to recreate hardware state the architecture does not expose
    /// (effective addresses, branch targets) — the paper's second DBI
    /// overhead source (§1). Charged per event that carries an address.
    pub state_reconstruction_cycles: u64,
}

impl Default for DbiConfig {
    fn default() -> Self {
        DbiConfig {
            translation_cycles: 5,
            block_entry_cycles: 8,
            event_overhead_cycles: 14,
            work_factor_pct: 250,
            state_reconstruction_cycles: 6,
        }
    }
}

/// The DBI execution engine: instruments every retired instruction inline
/// on the application core.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbiEngine {
    config: DbiConfig,
}

impl DbiEngine {
    /// Creates an engine with the given cycle model.
    #[must_use]
    pub fn new(config: DbiConfig) -> Self {
        DbiEngine { config }
    }

    /// The engine's cycle model.
    #[must_use]
    pub fn config(&self) -> &DbiConfig {
        &self.config
    }

    /// Charges the instrumentation overhead for one retired instruction and
    /// runs the lifeguard handler inline. Returns the extra cycles beyond
    /// the application's own execution.
    pub fn instrument(
        &self,
        lifeguard: &mut dyn Lifeguard,
        record: &EventRecord,
        mem: &mut MemSystem,
        core: usize,
        findings: &mut Vec<Finding>,
    ) -> u64 {
        let mut cycles = self.config.translation_cycles;
        if is_block_end(record.kind) {
            cycles += self.config.block_entry_cycles;
        }
        if lifeguard.subscriptions().contains(record.kind) {
            cycles += self.config.event_overhead_cycles;
            if record.kind.has_addr() {
                cycles += self.config.state_reconstruction_cycles;
            }
            let mut ctx =
                HandlerCtx::with_work_factor(mem, core, findings, self.config.work_factor_pct);
            lifeguard.on_event(record, &mut ctx);
            cycles += ctx.cycles();
        }
        cycles
    }

    /// Runs the lifeguard's end-of-program hook inline.
    pub fn finish(
        &self,
        lifeguard: &mut dyn Lifeguard,
        mem: &mut MemSystem,
        core: usize,
        findings: &mut Vec<Finding>,
    ) -> u64 {
        let mut ctx =
            HandlerCtx::with_work_factor(mem, core, findings, self.config.work_factor_pct);
        lifeguard.on_finish(&mut ctx);
        ctx.cycles()
    }
}

fn is_block_end(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::Branch
            | EventKind::Jump
            | EventKind::IndirectJump
            | EventKind::Call
            | EventKind::Return
            | EventKind::ThreadEnd
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::MemSystemConfig;
    use lba_lifeguards::{AddrCheck, TaintCheck};
    use lba_mem::layout;

    fn mem() -> MemSystem {
        MemSystem::new(MemSystemConfig::single_core())
    }

    #[test]
    fn unsubscribed_events_still_pay_translation() {
        let mut mem = mem();
        let mut findings = Vec::new();
        let engine = DbiEngine::default();
        let mut lg = AddrCheck::new();
        // AddrCheck does not subscribe to ALU events; Valgrind still
        // translates them.
        let rec = EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(3));
        let cycles = engine.instrument(&mut lg, &rec, &mut mem, 0, &mut findings);
        assert_eq!(cycles, DbiConfig::default().translation_cycles);
    }

    #[test]
    fn control_flow_pays_block_entry() {
        let mut mem = mem();
        let mut findings = Vec::new();
        let engine = DbiEngine::default();
        let mut lg = AddrCheck::new();
        let rec = EventRecord {
            pc: 0x1000,
            kind: EventKind::Branch,
            tid: 0,
            in1: Some(1),
            in2: Some(2),
            out: None,
            addr: 0x1000,
            size: 1,
        };
        let cfg = DbiConfig::default();
        let cycles = engine.instrument(&mut lg, &rec, &mut mem, 0, &mut findings);
        assert_eq!(cycles, cfg.translation_cycles + cfg.block_entry_cycles);
    }

    #[test]
    fn dbi_event_costs_more_than_lba_dispatch() {
        // The same record through DBI and through the LBA dispatch engine:
        // DBI must be strictly more expensive.
        let rec = EventRecord::load(0x1000, 0, Some(1), Some(2), layout::HEAP_BASE, 8);

        let mut mem_dbi = mem();
        let mut f1 = Vec::new();
        let mut lg1 = AddrCheck::new();
        let dbi = DbiEngine::default();
        // Warm shadow caches.
        dbi.instrument(&mut lg1, &rec, &mut mem_dbi, 0, &mut f1);
        let dbi_cost = dbi.instrument(&mut lg1, &rec, &mut mem_dbi, 0, &mut f1);

        let mut mem_lba = MemSystem::new(MemSystemConfig::dual_core());
        let mut f2 = Vec::new();
        let mut lg2 = AddrCheck::new();
        let engine = lba_lifeguard::DispatchEngine::default();
        engine.deliver(&mut lg2, &rec, &mut mem_lba, 1, &mut f2);
        let lba_cost = engine.deliver(&mut lg2, &rec, &mut mem_lba, 1, &mut f2);

        assert!(
            dbi_cost > 2 * lba_cost,
            "DBI ({dbi_cost}) should far exceed LBA dispatch ({lba_cost})"
        );
    }

    #[test]
    fn shadow_traffic_pollutes_application_cache() {
        let mut m = mem();
        let mut findings = Vec::new();
        let engine = DbiEngine::default();
        let mut lg = TaintCheck::new();
        // Warm an application line.
        m.data_access(0, 0x4000_0000, 8, false);
        assert_eq!(m.data_access(0, 0x4000_0000, 8, false), 0);
        // Stream enough distinct taint-shadow stores through the same core
        // to evict it (shadow region is disjoint from app data).
        for i in 0..4096u64 {
            let rec = EventRecord::store(0x1000, 0, Some(1), Some(2), 0x5000_0000 + i * 64, 8);
            engine.instrument(&mut lg, &rec, &mut m, 0, &mut findings);
        }
        assert!(
            m.data_access(0, 0x4000_0000, 8, false) > 0,
            "application line must have been evicted by shadow traffic"
        );
    }

    #[test]
    fn findings_identical_to_lba_path() {
        // The same buggy event stream must produce the same findings under
        // both execution models (analysis code is shared).
        let stream = [
            EventRecord {
                pc: 0x1000,
                kind: EventKind::Alloc,
                tid: 0,
                in1: Some(1),
                in2: None,
                out: Some(2),
                addr: layout::HEAP_BASE,
                size: 32,
            },
            EventRecord {
                pc: 0x1008,
                kind: EventKind::Free,
                tid: 0,
                in1: Some(2),
                in2: None,
                out: None,
                addr: layout::HEAP_BASE,
                size: 0,
            },
            EventRecord {
                pc: 0x1010,
                kind: EventKind::Free,
                tid: 0,
                in1: Some(2),
                in2: None,
                out: None,
                addr: layout::HEAP_BASE,
                size: 0,
            },
            EventRecord::load(0x1018, 0, Some(2), Some(3), layout::HEAP_BASE, 8),
        ];

        let run_dbi = || {
            let mut m = mem();
            let mut findings = Vec::new();
            let mut lg = AddrCheck::new();
            let engine = DbiEngine::default();
            for rec in &stream {
                engine.instrument(&mut lg, rec, &mut m, 0, &mut findings);
            }
            engine.finish(&mut lg, &mut m, 0, &mut findings);
            findings
        };
        let run_lba = || {
            let mut m = MemSystem::new(MemSystemConfig::dual_core());
            let mut findings = Vec::new();
            let mut lg = AddrCheck::new();
            let engine = lba_lifeguard::DispatchEngine::default();
            for rec in &stream {
                engine.deliver(&mut lg, rec, &mut m, 1, &mut findings);
            }
            engine.finish(&mut lg, &mut m, 1, &mut findings);
            findings
        };
        assert_eq!(run_dbi(), run_lba());
    }
}
