//! Value predictors used by the VPC-style compressor.
//!
//! All predictors are deterministic and updated identically by the
//! compressor and decompressor, which is what makes flag-bit encoding
//! lossless.

/// Predicts the last seen value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LastValuePredictor {
    last: u64,
}

impl LastValuePredictor {
    /// Creates a predictor whose initial prediction is 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current prediction.
    #[must_use]
    pub fn predict(&self) -> u64 {
        self.last
    }

    /// Records the actual value.
    pub fn update(&mut self, actual: u64) {
        self.last = actual;
    }
}

/// Predicts `last + stride`, tracking the most recent stride.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StridePredictor {
    last: u64,
    stride: u64,
}

impl StridePredictor {
    /// Creates a predictor whose initial prediction is 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current prediction.
    #[must_use]
    pub fn predict(&self) -> u64 {
        self.last.wrapping_add(self.stride)
    }

    /// The last observed value.
    #[must_use]
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Records the actual value, updating the stride.
    pub fn update(&mut self, actual: u64) {
        self.stride = actual.wrapping_sub(self.last);
        self.last = actual;
    }
}

/// A finite-context-method predictor over value deltas.
///
/// The context is a hash of the two most recent deltas (kept by the caller,
/// per log source); the table maps contexts to the predicted next delta.
/// This catches repeating non-constant stride patterns (e.g. struct-of-array
/// walks) that defeat the plain stride predictor.
#[derive(Debug, Clone)]
pub struct FcmPredictor {
    table: Vec<u64>,
    mask: u64,
}

impl FcmPredictor {
    /// Creates a predictor with `2^log2_entries` table entries.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or exceeds 24.
    #[must_use]
    pub fn new(log2_entries: u32) -> Self {
        assert!((1..=24).contains(&log2_entries), "table size out of range");
        let len = 1usize << log2_entries;
        FcmPredictor {
            table: vec![0; len],
            mask: (len - 1) as u64,
        }
    }

    fn index(&self, key: u64, d1: u64, d2: u64) -> usize {
        // Mix the source key and the two recent deltas (Fibonacci hashing).
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ d1.wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ d2.wrapping_mul(0x94d0_49bb_1331_11eb);
        (h & self.mask) as usize
    }

    /// Predicted next delta for source `key` with recent deltas `d1`, `d2`.
    #[must_use]
    pub fn predict(&self, key: u64, d1: u64, d2: u64) -> u64 {
        self.table[self.index(key, d1, d2)]
    }

    /// Records the actual delta for the context.
    pub fn update(&mut self, key: u64, d1: u64, d2: u64, actual_delta: u64) {
        let idx = self.index(key, d1, d2);
        self.table[idx] = actual_delta;
    }
}

impl Default for FcmPredictor {
    fn default() -> Self {
        // 2^12 entries (32 KiB) keeps the table hot in L1/L2 on both ends
        // of the stream — the update is a random-indexed store on *every*
        // address-carrying record, so residency matters more than the last
        // percent of hit rate. Both sides build the same table, so the
        // stream stays losslessly decodable.
        Self::new(12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_predicts_repeats() {
        let mut p = LastValuePredictor::new();
        p.update(7);
        assert_eq!(p.predict(), 7);
        p.update(9);
        assert_eq!(p.predict(), 9);
    }

    #[test]
    fn stride_predicts_arithmetic_sequences() {
        let mut p = StridePredictor::new();
        p.update(100);
        p.update(108);
        assert_eq!(p.predict(), 116);
        p.update(116);
        assert_eq!(p.predict(), 124);
    }

    #[test]
    fn stride_handles_negative_strides_via_wrapping() {
        let mut p = StridePredictor::new();
        p.update(100);
        p.update(92);
        assert_eq!(p.predict(), 84);
    }

    #[test]
    fn fcm_learns_alternating_deltas() {
        // Pattern +8, +24, +8, +24… defeats a stride predictor but has a
        // deterministic delta given the previous two deltas.
        let mut p = FcmPredictor::new(10);
        let key = 0x1040;
        let (mut d1, mut d2) = (0u64, 0u64);
        let deltas = [8u64, 24, 8, 24, 8, 24, 8, 24];
        let mut hits = 0;
        for &d in &deltas {
            if p.predict(key, d1, d2) == d {
                hits += 1;
            }
            p.update(key, d1, d2, d);
            d2 = d1;
            d1 = d;
        }
        assert!(
            hits >= 4,
            "fcm should learn the alternation, got {hits} hits"
        );
    }

    #[test]
    fn fcm_sources_are_mostly_independent() {
        let mut p = FcmPredictor::new(14);
        p.update(1, 0, 0, 42);
        // A different key with the same delta context should (almost
        // certainly) map elsewhere.
        assert_ne!(p.predict(2, 0, 0), 42);
    }

    #[test]
    #[should_panic(expected = "table size")]
    fn fcm_rejects_zero_size() {
        let _ = FcmPredictor::new(0);
    }
}
