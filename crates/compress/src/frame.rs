//! Chunked (framed) encoding of the compressed log stream.
//!
//! The paper ships the log through the cache hierarchy, so the transport
//! unit is not a record but a *cache-line multiple*: the capture hardware
//! accumulates compressed records and writes whole lines. This module
//! packages the streaming codec ([`LogCompressor`]/[`LogDecompressor`])
//! into self-contained frames that both transport implementations (the
//! deterministic timing model and the live SPSC channel) can ship as
//! opaque byte buffers.
//!
//! # Wire format
//!
//! ```text
//! ┌───────────────┬───────────────┬──────────────────┬─────────────┐
//! │ record count  │ payload bytes │ payload           │ zero padding│
//! │ u32 LE        │ u32 LE        │ (compressed bits  │ to a 64 B   │
//! │               │               │  or raw records)  │ multiple    │
//! └───────────────┴───────────────┴──────────────────┴─────────────┘
//! ```
//!
//! Every frame's total length is a multiple of [`FRAME_LINE_BYTES`]; the
//! minimum frame is one line.
//!
//! # Predictor-state policy
//!
//! Predictor state (PC successor tables, per-PC address predictors, FCM)
//! is **carried across frames**: a frame is decodable given the stream
//! prefix — the decoder must have consumed frames 0..n in order before
//! frame n+1. Only the *bit alignment* resets at a frame boundary: each
//! frame's payload starts byte-aligned with a fresh bit stream, and the
//! padding bits after its last record are discarded. Carrying state keeps
//! the compression ratio intact (a reset would re-pay every cold-predictor
//! miss each frame); the prefix requirement is exactly what an in-order
//! log transport guarantees.

use std::fmt;

use lba_record::{DecodeRecordError, EventRecord, RAW_RECORD_BYTES};

use crate::bits::{BitReader, BitWriter};
use crate::compressor::{CompressionStats, DecodeStreamError, LogCompressor, LogDecompressor};

/// Frame granularity: every frame is a multiple of one 64-byte cache line.
pub const FRAME_LINE_BYTES: usize = 64;

/// Bytes of frame header (record count + payload length, both `u32` LE).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Top bit of the header's record-count word: set when this frame closes
/// an *epoch* (the unit the epoch-parallel lifeguard modes stitch in
/// order). The record count occupies the low 31 bits, so the mark costs
/// no wire bytes; introducing it bumped [`crate::CODEC_VERSION`].
const EPOCH_END_MARK: u32 = 1 << 31;

/// Second-from-top bit of the header's record-count word: set when this
/// frame was sealed while the capture controller held degraded capture
/// engaged. Degraded spans thereby ride the wire — and the flight
/// recorder — frame-accurately (the controller seals the open frame at
/// every engage/disengage transition), so offline replay can report them
/// without any side channel. The record count keeps the low 30 bits;
/// introducing this mark bumped [`crate::CODEC_VERSION`] to 4.
const DEGRADED_MARK: u32 = 1 << 30;

/// Bits of the header count word that carry marks, not record count.
const HEADER_MARKS: u32 = EPOCH_END_MARK | DEGRADED_MARK;

/// Configuration shared by [`FrameEncoder`] and [`FrameDecoder`].
///
/// Both ends of a channel must agree on `compress`; `records_per_frame`
/// only matters on the encoding side (the count travels in the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameConfig {
    /// Records per sealed frame (a frame seals early on [`FrameEncoder::flush`]).
    pub records_per_frame: usize,
    /// `true`: VPC-compressed payload; `false`: raw 25-byte records.
    pub compress: bool,
}

impl FrameConfig {
    /// Nominal wire size of one sealed full frame under this configuration:
    /// header plus `records_per_frame` raw-encoded records, padded to the
    /// cache-line multiple. Compression typically shrinks the payload well
    /// below this, so the figure serves as the budget-to-frame-count
    /// conversion (e.g. turning a byte budget into a live queue depth), not
    /// as a hard per-frame bound.
    #[must_use]
    pub fn nominal_wire_bytes(&self) -> usize {
        let unpadded = FRAME_HEADER_BYTES + self.records_per_frame * RAW_RECORD_BYTES;
        unpadded.div_ceil(FRAME_LINE_BYTES) * FRAME_LINE_BYTES
    }
}

impl Default for FrameConfig {
    fn default() -> Self {
        FrameConfig {
            records_per_frame: 256,
            compress: true,
        }
    }
}

/// One sealed frame: an opaque, self-delimiting wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Number of records carried.
    pub records: u32,
    /// The wire image: header + payload + padding (length a multiple of
    /// [`FRAME_LINE_BYTES`]).
    pub bytes: Vec<u8>,
    /// Payload bits before framing (excludes header and padding).
    pub payload_bits: u64,
    /// Whether this frame closes an epoch (sealed via
    /// [`FrameEncoder::push_epoch`] with `end_epoch`); carried on the
    /// wire as the header's top record-count bit.
    pub epoch_end: bool,
    /// Whether this frame was sealed while degraded capture was engaged
    /// (see [`FrameEncoder::set_degraded`]); carried on the wire as the
    /// header's second-from-top record-count bit.
    pub degraded: bool,
}

impl Frame {
    /// Total bits on the wire, padding included.
    #[must_use]
    pub fn wire_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Reads the epoch-end mark straight from a frame's wire image,
    /// without decoding the payload — the live receivers and offline
    /// replay use this to reassemble epochs from marked frames.
    #[must_use]
    pub fn header_epoch_end(bytes: &[u8]) -> bool {
        bytes.len() >= 4
            && u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) & EPOCH_END_MARK != 0
    }

    /// Reads the degraded-capture mark straight from a frame's wire
    /// image, without decoding the payload — offline replay uses this to
    /// reconstruct degraded spans from the flight-recorder stream.
    #[must_use]
    pub fn header_degraded(bytes: &[u8]) -> bool {
        bytes.len() >= 4
            && u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) & DEGRADED_MARK != 0
    }

    /// Cache lines this frame occupies in transit.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.bytes.len() as u64 / FRAME_LINE_BYTES as u64
    }
}

/// Error produced when parsing or decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecodeError {
    /// The buffer is shorter than a header or its declared payload.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The frame length is not a multiple of [`FRAME_LINE_BYTES`].
    Misaligned {
        /// The offending length.
        len: usize,
    },
    /// The compressed payload failed to decode.
    Codec(DecodeStreamError),
    /// A raw-mode record failed to decode.
    RawRecord(DecodeRecordError),
}

impl fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameDecodeError::Truncated { need, have } => {
                write!(f, "frame truncated: need {need} bytes, have {have}")
            }
            FrameDecodeError::Misaligned { len } => {
                write!(
                    f,
                    "frame length {len} is not a multiple of {FRAME_LINE_BYTES}"
                )
            }
            FrameDecodeError::Codec(e) => write!(f, "frame payload: {e}"),
            FrameDecodeError::RawRecord(e) => write!(f, "raw frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameDecodeError {}

/// Aggregate framing statistics for one encoder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Records encoded (sealed frames only).
    pub records: u64,
    /// Frames sealed.
    pub frames: u64,
    /// Payload bits across sealed frames.
    pub payload_bits: u64,
    /// Wire bits across sealed frames (headers and padding included).
    pub wire_bits: u64,
}

impl FrameStats {
    /// Average wire bytes per record — the live analogue of the paper's
    /// < 1 byte/instruction claim, now including framing overhead.
    #[must_use]
    pub fn wire_bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.wire_bits as f64 / 8.0 / self.records as f64
        }
    }
}

/// Accumulates records into cache-line-multiple frames.
///
/// Wraps [`LogCompressor`] + [`BitWriter`] (or the raw record encoding when
/// `compress` is off). [`push`](FrameEncoder::push) seals and returns a
/// frame every `records_per_frame` records; [`flush`](FrameEncoder::flush)
/// seals a partial frame early — the transports call it at syscalls (so the
/// containment drain sees every preceding record) and at end of program.
///
/// # Examples
///
/// ```
/// use lba_compress::{FrameConfig, FrameDecoder, FrameEncoder};
/// use lba_record::EventRecord;
///
/// let config = FrameConfig { records_per_frame: 4, compress: true };
/// let mut enc = FrameEncoder::new(config);
/// let mut frames = Vec::new();
/// for i in 0..10u64 {
///     let rec = EventRecord::load(0x1000, 0, Some(1), None, 0x4000_0000 + 8 * i, 8);
///     frames.extend(enc.push(&rec)); // seals after records 4 and 8
/// }
/// frames.extend(enc.flush()); // seals the partial frame of 2
/// assert_eq!(frames.len(), 3);
///
/// let mut dec = FrameDecoder::new(config);
/// let mut out = Vec::new();
/// for frame in &frames {
///     dec.decode_frame(&frame.bytes, &mut out).unwrap();
/// }
/// assert_eq!(out.len(), 10);
/// ```
#[derive(Debug)]
pub struct FrameEncoder {
    config: FrameConfig,
    compressor: LogCompressor,
    writer: BitWriter,
    raw: Vec<u8>,
    pending: u32,
    degraded: bool,
    stats: FrameStats,
    /// Spent wire buffer donated via [`recycle`](Self::recycle), reused by
    /// the next seal to avoid an allocation per frame.
    scratch: Vec<u8>,
}

impl FrameEncoder {
    /// Creates an encoder with cold predictors.
    ///
    /// # Panics
    ///
    /// Panics if `config.records_per_frame` is zero.
    #[must_use]
    pub fn new(config: FrameConfig) -> Self {
        assert!(
            config.records_per_frame > 0,
            "records_per_frame must be non-zero"
        );
        let mut enc = FrameEncoder {
            config,
            compressor: LogCompressor::new(),
            writer: BitWriter::new(),
            raw: Vec::new(),
            pending: 0,
            degraded: false,
            stats: FrameStats::default(),
            scratch: Vec::new(),
        };
        enc.begin_frame();
        enc
    }

    /// Reserves the header placeholder at the front of the next frame's
    /// buffer, so the payload is encoded in place and sealing never copies
    /// it.
    fn begin_frame(&mut self) {
        if self.config.compress {
            self.writer.write_bits(0, 64);
        } else {
            self.raw.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
        }
    }

    /// Donates a spent wire buffer (a consumed [`Frame::bytes`]) for reuse
    /// by the next sealed frame, sparing an allocation per frame.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        self.scratch = buf;
    }

    /// Appends one record; returns the sealed frame when this record
    /// completes one.
    pub fn push(&mut self, record: &EventRecord) -> Option<Frame> {
        self.push_epoch(record, false)
    }

    /// Appends one record; seals when the frame fills *or* when
    /// `end_epoch` marks this record as the last of an epoch. An
    /// epoch-closing seal carries the wire-level epoch-end mark, so
    /// frames never straddle an epoch boundary and a consumer can
    /// reassemble whole epochs from marked frames alone.
    pub fn push_epoch(&mut self, record: &EventRecord, end_epoch: bool) -> Option<Frame> {
        if self.config.compress {
            self.compressor.encode(record, &mut self.writer);
        } else {
            self.raw.extend_from_slice(&record.encode_raw());
        }
        self.pending += 1;
        (end_epoch || self.pending as usize >= self.config.records_per_frame)
            .then(|| self.seal(end_epoch))
    }

    /// Seals the current partial frame, if any records are pending.
    pub fn flush(&mut self) -> Option<Frame> {
        (self.pending > 0).then(|| self.seal(false))
    }

    /// Records buffered in the open (unsealed) frame.
    #[must_use]
    pub fn pending_records(&self) -> usize {
        self.pending as usize
    }

    /// Marks frames sealed from now on as carrying degraded capture (the
    /// wire-level [`Frame::header_degraded`] bit). Callers flush the open
    /// frame *before* toggling, so the mark is frame-accurate: a frame is
    /// marked iff every record in it was captured while degraded.
    pub fn set_degraded(&mut self, on: bool) {
        self.degraded = on;
    }

    /// Whether frames sealed now would carry the degraded mark.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Statistics over sealed frames.
    #[must_use]
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// The wrapped compressor's record-level statistics (compressed mode
    /// only; zero in raw mode).
    #[must_use]
    pub fn compression_stats(&self) -> CompressionStats {
        self.compressor.stats()
    }

    fn seal(&mut self, epoch_end: bool) -> Frame {
        let records = self.pending;
        self.pending = 0;

        // The buffer already holds [header placeholder | payload]: swap it
        // out whole (recycling the donated scratch buffer), patch the
        // header, and pad — the payload itself is never copied.
        let mut bytes = if self.config.compress {
            self.writer.swap_bytes(std::mem::take(&mut self.scratch))
        } else {
            let mut next = std::mem::take(&mut self.scratch);
            next.clear();
            std::mem::replace(&mut self.raw, next)
        };
        let payload_len = bytes.len() - FRAME_HEADER_BYTES;
        let payload_bits = if self.config.compress {
            // The payload pads to a byte; recover the exact bit count
            // from the compressor's running total.
            self.compressor.stats().bits - self.stats.payload_bits
        } else {
            payload_len as u64 * 8
        };
        let header = records
            | if epoch_end { EPOCH_END_MARK } else { 0 }
            | if self.degraded { DEGRADED_MARK } else { 0 };
        bytes[0..4].copy_from_slice(&header.to_le_bytes());
        bytes[4..8].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let padded = bytes.len().div_ceil(FRAME_LINE_BYTES) * FRAME_LINE_BYTES;
        bytes.resize(padded, 0);
        self.begin_frame();

        let frame = Frame {
            records,
            bytes,
            payload_bits,
            epoch_end,
            degraded: self.degraded,
        };
        self.stats.records += u64::from(records);
        self.stats.frames += 1;
        self.stats.payload_bits += payload_bits;
        self.stats.wire_bits += frame.wire_bits();
        frame
    }
}

/// Mirrors [`FrameEncoder`]: consumes frame byte buffers in stream order
/// and reproduces the record sequence.
#[derive(Debug)]
pub struct FrameDecoder {
    config: FrameConfig,
    decompressor: LogDecompressor,
}

impl FrameDecoder {
    /// Creates a decoder with cold predictors (pair it with a fresh
    /// [`FrameEncoder`] of the same `compress` setting).
    #[must_use]
    pub fn new(config: FrameConfig) -> Self {
        FrameDecoder {
            config,
            decompressor: LogDecompressor::new(),
        }
    }

    /// Decodes one frame, appending its records to `out`; returns the
    /// record count.
    ///
    /// Frames must arrive in the order they were sealed (the predictor
    /// state carries across frames; see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`FrameDecodeError`] on a truncated, misaligned, or corrupt
    /// frame.
    pub fn decode_frame(
        &mut self,
        bytes: &[u8],
        out: &mut Vec<EventRecord>,
    ) -> Result<u32, FrameDecodeError> {
        if bytes.len() < FRAME_HEADER_BYTES {
            return Err(FrameDecodeError::Truncated {
                need: FRAME_HEADER_BYTES,
                have: bytes.len(),
            });
        }
        if !bytes.len().is_multiple_of(FRAME_LINE_BYTES) {
            return Err(FrameDecodeError::Misaligned { len: bytes.len() });
        }
        let records = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) & !HEADER_MARKS;
        let payload_len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        let need = FRAME_HEADER_BYTES + payload_len;
        if bytes.len() < need {
            return Err(FrameDecodeError::Truncated {
                need,
                have: bytes.len(),
            });
        }
        let payload = &bytes[FRAME_HEADER_BYTES..need];

        if self.config.compress {
            let mut reader = BitReader::new(payload);
            out.reserve(records as usize);
            for _ in 0..records {
                out.push(
                    self.decompressor
                        .decode(&mut reader)
                        .map_err(FrameDecodeError::Codec)?,
                );
            }
        } else {
            if payload_len != records as usize * RAW_RECORD_BYTES {
                return Err(FrameDecodeError::Truncated {
                    need: FRAME_HEADER_BYTES + records as usize * RAW_RECORD_BYTES,
                    have: bytes.len(),
                });
            }
            for chunk in payload.chunks_exact(RAW_RECORD_BYTES) {
                let raw: &[u8; RAW_RECORD_BYTES] = chunk.try_into().expect("exact chunk");
                out.push(EventRecord::decode_raw(raw).map_err(FrameDecodeError::RawRecord)?);
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_record::EventKind;

    fn stream(n: u64) -> Vec<EventRecord> {
        let mut out = Vec::new();
        for i in 0..n {
            out.push(EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(1)));
            out.push(EventRecord::load(
                0x1008,
                0,
                Some(3),
                None,
                0x4000_0000 + i * 8,
                8,
            ));
        }
        out
    }

    fn round_trip(config: FrameConfig, records: &[EventRecord], flush_every: Option<usize>) {
        let mut enc = FrameEncoder::new(config);
        let mut frames = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            frames.extend(enc.push(rec));
            if flush_every.is_some_and(|k| (i + 1) % k == 0) {
                frames.extend(enc.flush());
            }
        }
        frames.extend(enc.flush());
        assert_eq!(enc.pending_records(), 0);

        let mut dec = FrameDecoder::new(config);
        let mut out = Vec::new();
        for frame in &frames {
            assert_eq!(
                frame.bytes.len() % FRAME_LINE_BYTES,
                0,
                "line-multiple frames"
            );
            let n = dec
                .decode_frame(&frame.bytes, &mut out)
                .expect("frame decodes");
            assert_eq!(n, frame.records);
        }
        assert_eq!(out, records);
    }

    #[test]
    fn compressed_frames_round_trip() {
        round_trip(FrameConfig::default(), &stream(500), None);
    }

    #[test]
    fn raw_frames_round_trip() {
        round_trip(
            FrameConfig {
                records_per_frame: 64,
                compress: false,
            },
            &stream(300),
            None,
        );
    }

    #[test]
    fn flush_boundaries_preserve_the_stream() {
        for flush_every in [1, 3, 7, 50] {
            round_trip(
                FrameConfig {
                    records_per_frame: 16,
                    compress: true,
                },
                &stream(100),
                Some(flush_every),
            );
        }
    }

    #[test]
    fn predictor_state_carries_across_frames() {
        // A strided load stream stays cheap even with tiny frames: the
        // stride predictor is not reset at frame boundaries.
        let records: Vec<EventRecord> = (0..1000u64)
            .map(|i| EventRecord::load(0x1000, 0, Some(1), None, 0x4000_0000 + i * 8, 8))
            .collect();
        let mut enc = FrameEncoder::new(FrameConfig {
            records_per_frame: 8,
            compress: true,
        });
        for rec in &records {
            enc.push(rec);
        }
        enc.flush();
        let stats = enc.stats();
        assert_eq!(stats.records, 1000);
        // Payload (not wire) cost must match the unframed compressor: well
        // under a byte per record on this stream.
        assert!(
            stats.payload_bits / stats.records < 8,
            "carried predictors should keep the stream < 1 B/record, got {} bits/record",
            stats.payload_bits / stats.records
        );
    }

    #[test]
    fn wire_accounting_includes_header_and_padding() {
        let mut enc = FrameEncoder::new(FrameConfig {
            records_per_frame: 4,
            compress: true,
        });
        for rec in stream(1) {
            enc.push(&rec);
        }
        let frame = enc.flush().expect("partial frame seals");
        assert_eq!(frame.records, 2);
        assert_eq!(
            frame.bytes.len(),
            FRAME_LINE_BYTES,
            "tiny frame pads to one line"
        );
        assert_eq!(frame.lines(), 1);
        assert!(frame.payload_bits < frame.wire_bits());
        let stats = enc.stats();
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.wire_bits, FRAME_LINE_BYTES as u64 * 8);
    }

    #[test]
    fn epoch_marks_ride_the_header_and_round_trip() {
        let config = FrameConfig {
            records_per_frame: 4,
            compress: true,
        };
        let mut enc = FrameEncoder::new(config);
        let records = stream(6); // 12 records
        let mut frames = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            // Epoch boundaries after records 2 and 9 (0-based): the first
            // seals a short frame early, the second seals mid-stream after
            // a full frame already sealed at record 6.
            frames.extend(enc.push_epoch(rec, i == 2 || i == 9));
        }
        frames.extend(enc.flush());
        let marks: Vec<bool> = frames.iter().map(|f| f.epoch_end).collect();
        assert_eq!(marks, [true, false, true, false]);
        assert_eq!(
            frames.iter().map(|f| f.records).sum::<u32>() as usize,
            records.len()
        );
        // The mark is readable straight off the wire image, and decoding
        // masks it back out of the record count.
        let mut dec = FrameDecoder::new(config);
        let mut out = Vec::new();
        for frame in &frames {
            assert_eq!(Frame::header_epoch_end(&frame.bytes), frame.epoch_end);
            let n = dec.decode_frame(&frame.bytes, &mut out).expect("decodes");
            assert_eq!(n, frame.records);
        }
        assert_eq!(out, records);
        assert!(
            !Frame::header_epoch_end(&[0u8; 2]),
            "short buffer is unmarked"
        );
    }

    #[test]
    fn degraded_marks_ride_the_header_and_round_trip() {
        let config = FrameConfig {
            records_per_frame: 4,
            compress: true,
        };
        let mut enc = FrameEncoder::new(config);
        let records = stream(6); // 12 records
        let mut frames = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            // Engage over records 4..8, flushing at each transition the
            // way the capture controller does.
            if i == 4 || i == 8 {
                frames.extend(enc.flush());
                enc.set_degraded(i == 4);
            }
            frames.extend(enc.push(rec));
        }
        frames.extend(enc.flush());
        let marks: Vec<bool> = frames.iter().map(|f| f.degraded).collect();
        assert_eq!(marks, [false, true, false]);
        // The mark is readable off the wire image, independent of the
        // epoch mark, and decoding masks it out of the record count.
        let mut dec = FrameDecoder::new(config);
        let mut out = Vec::new();
        for frame in &frames {
            assert_eq!(Frame::header_degraded(&frame.bytes), frame.degraded);
            assert!(!Frame::header_epoch_end(&frame.bytes));
            let n = dec.decode_frame(&frame.bytes, &mut out).expect("decodes");
            assert_eq!(n, frame.records);
        }
        assert_eq!(out, records);
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let mut enc = FrameEncoder::new(FrameConfig::default());
        assert!(enc.flush().is_none());
        assert_eq!(enc.stats().frames, 0);
    }

    #[test]
    fn misaligned_and_truncated_frames_are_rejected() {
        let config = FrameConfig::default();
        let mut dec = FrameDecoder::new(config);
        let mut out = Vec::new();
        assert!(matches!(
            dec.decode_frame(&[0u8; 4], &mut out),
            Err(FrameDecodeError::Truncated { .. })
        ));
        assert!(matches!(
            dec.decode_frame(&[0u8; 65], &mut out),
            Err(FrameDecodeError::Misaligned { len: 65 })
        ));
        // Header claims a payload longer than the buffer.
        let mut bytes = vec![0u8; FRAME_LINE_BYTES];
        bytes[0..4].copy_from_slice(&1u32.to_le_bytes());
        bytes[4..8].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            dec.decode_frame(&bytes, &mut out),
            Err(FrameDecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_compressed_payload_reports_codec_error() {
        let config = FrameConfig {
            records_per_frame: 2,
            compress: true,
        };
        let mut enc = FrameEncoder::new(config);
        enc.push(&EventRecord {
            pc: 0x1000,
            kind: EventKind::Syscall,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 0,
            size: 7,
        });
        let mut frame = enc.flush().expect("frame");
        // Claim far more records than the payload holds: the bit stream
        // runs dry mid-record.
        frame.bytes[0..4].copy_from_slice(&1000u32.to_le_bytes());
        let mut dec = FrameDecoder::new(config);
        let mut out = Vec::new();
        assert!(matches!(
            dec.decode_frame(&frame.bytes, &mut out),
            Err(FrameDecodeError::Codec(DecodeStreamError::UnexpectedEof))
        ));
    }

    #[test]
    fn nominal_wire_bytes_is_line_multiple_and_covers_raw_frames() {
        // One record: header + 25 B rounds up to one line.
        let one = FrameConfig {
            records_per_frame: 1,
            compress: false,
        };
        assert_eq!(one.nominal_wire_bytes(), FRAME_LINE_BYTES);
        // The default config: 8 + 256 * 25 = 6408 -> 101 lines.
        assert_eq!(FrameConfig::default().nominal_wire_bytes(), 101 * 64);
        // In raw mode the nominal size is exact: a sealed full frame's
        // wire image is header + records * RAW_RECORD_BYTES, padded.
        let mut enc = FrameEncoder::new(one);
        let frame = enc
            .push(&EventRecord::alu(0x1000, 0, None, None, None))
            .expect("one-record frames seal per push");
        assert_eq!(frame.bytes.len(), one.nominal_wire_bytes());
    }
}
