//! Value-prediction-based log compression (VPC-style).
//!
//! The paper compresses each event record in hardware "to reduce the
//! bandwidth pressure and buffer requirements on the log transport medium",
//! adapting value-prediction-based compression (Burtscher's VPC) to achieve
//! **less than one byte per instruction**. This crate reproduces that
//! scheme in a bit-exact, lossless, streaming form:
//!
//! * the **program counter** is predicted with a per-thread stride
//!   predictor (sequential execution hits with a single flag bit);
//! * the record's **static fields** (type, operand identifiers, access
//!   width, direct-branch targets) are cached in a per-PC table — after the
//!   first occurrence of a PC they cost one flag bit;
//! * **effective addresses** go through a per-PC predictor bank (stride,
//!   last-value, and a finite-context-method predictor over recent deltas),
//!   falling back to a zig-zag varint delta;
//! * remaining dynamic fields (branch direction, allocation sizes) use a
//!   flag bit plus varint escape.
//!
//! [`LogCompressor::encode`] returns the exact bit cost of each record,
//! which the transport model uses for buffer occupancy and bandwidth
//! accounting. [`LogDecompressor`] mirrors the predictor updates, so the
//! stream round-trips losslessly.
//!
//! # Examples
//!
//! ```
//! use lba_compress::{BitReader, BitWriter, LogCompressor, LogDecompressor};
//! use lba_record::EventRecord;
//!
//! let records: Vec<EventRecord> = (0..100)
//!     .map(|i| EventRecord::load(0x1000, 0, Some(1), Some(2), 0x4000_0000 + 8 * i, 8))
//!     .collect();
//!
//! let mut compressor = LogCompressor::new();
//! let mut writer = BitWriter::new();
//! for rec in &records {
//!     compressor.encode(rec, &mut writer);
//! }
//! // A strided load stream compresses far below one byte per record.
//! assert!(writer.len_bits() / 100 < 8);
//!
//! let bytes = writer.into_bytes();
//! let mut reader = BitReader::new(&bytes);
//! let mut decompressor = LogDecompressor::new();
//! for rec in &records {
//!     assert_eq!(decompressor.decode(&mut reader).unwrap(), *rec);
//! }
//! ```

mod bits;
mod compressor;
mod frame;
mod predictors;

/// Version of the compressed wire format, mirrored predictor-update rules
/// included. Durable flight-recorder streams record this value in their
/// segment headers so offline replay can refuse a stream encoded under a
/// different codec with a descriptive error instead of decoding garbage.
/// Bump it whenever the bit layout *or* any encoder/decoder-mirrored
/// predictor rule changes (version 1 was the single-entry successor
/// table; version 2 is the dedup-aware MRU successor stack with unary
/// depth codes, the two-bit alternate fast path, and the simplified
/// address escape; version 3 reserves the top bit of the frame header's
/// record-count word as the epoch-end mark the epoch-parallel modes
/// stitch by; version 4 reserves the second-from-top bit as the
/// degraded-capture mark, so degraded spans survive the flight recorder
/// and replay can report them).
pub const CODEC_VERSION: u32 = 4;

pub use bits::{BitReader, BitWriter};
pub use compressor::{CompressionStats, DecodeStreamError, LogCompressor, LogDecompressor};
pub use frame::{
    Frame, FrameConfig, FrameDecodeError, FrameDecoder, FrameEncoder, FrameStats,
    FRAME_HEADER_BYTES, FRAME_LINE_BYTES,
};
pub use predictors::{FcmPredictor, LastValuePredictor, StridePredictor};
