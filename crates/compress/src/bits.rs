//! LSB-first bit-level I/O with zig-zag varints.

/// Appends bits (LSB-first within each byte) to a growable buffer.
///
/// # Examples
///
/// ```
/// use lba_compress::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_bits(0b101, 3);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert!(r.read_bit().unwrap());
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits not yet flushed to `bytes` (LSB-first, < 8 of them).
    acc: u64,
    /// Number of valid bits in `acc`.
    acc_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written so far.
    #[must_use]
    pub fn len_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8 + u64::from(self.acc_bits)
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.acc |= u64::from(bit) << self.acc_bits;
        self.acc_bits += 1;
        if self.acc_bits == 8 {
            self.flush_acc();
        }
    }

    /// Writes the low `n` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        // `acc` holds < 8 bits, so up to 56 more fit before a flush.
        let room = 64 - self.acc_bits;
        if n <= room {
            self.acc |= value << self.acc_bits;
            self.acc_bits += n;
        } else {
            self.acc |= value << self.acc_bits;
            let spilled = n - room;
            self.acc_bits = 64;
            self.flush_acc();
            self.acc = value >> (n - spilled);
            self.acc_bits = spilled;
        }
        if self.acc_bits >= 8 {
            self.flush_acc();
        }
    }

    /// Moves whole bytes from the accumulator into the buffer, leaving
    /// fewer than 8 bits pending.
    fn flush_acc(&mut self) {
        let whole = (self.acc_bits / 8) as usize;
        self.bytes
            .extend_from_slice(&self.acc.to_le_bytes()[..whole]);
        self.acc = if whole == 8 {
            0
        } else {
            self.acc >> (whole * 8)
        };
        self.acc_bits -= whole as u32 * 8;
    }

    /// Writes an unsigned value as nibble-group varint: groups of
    /// (1 continuation bit + 4 data bits), low nibble first.
    pub fn write_uvarint(&mut self, mut value: u64) {
        loop {
            let nibble = value & 0xf;
            value >>= 4;
            let more = value != 0;
            self.write_bit(more);
            self.write_bits(nibble, 4);
            if !more {
                break;
            }
        }
    }

    /// Writes a signed value with zig-zag encoding.
    pub fn write_ivarint(&mut self, value: i64) {
        self.write_uvarint(zigzag(value));
    }

    /// Consumes the writer, returning the backing bytes (final byte
    /// zero-padded).
    #[must_use]
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.bytes.push(self.acc as u8);
        }
        self.bytes
    }

    /// Flushes the partial byte and exposes the backing bytes without
    /// consuming the writer — pair with [`clear`](Self::clear) to reuse
    /// the allocation for the next stream segment.
    pub fn finish_bytes(&mut self) -> &[u8] {
        if self.acc_bits > 0 {
            self.bytes.push(self.acc as u8);
            self.acc = 0;
            self.acc_bits = 0;
        }
        &self.bytes
    }

    /// Resets the writer to empty, keeping its allocation.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.acc = 0;
        self.acc_bits = 0;
    }

    /// Flushes the partial byte, hands back the finished buffer, and
    /// adopts `replacement` (cleared) as the new backing storage — the
    /// zero-copy frame-sealing primitive.
    pub fn swap_bytes(&mut self, mut replacement: Vec<u8>) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.bytes.push(self.acc as u8);
            self.acc = 0;
            self.acc_bits = 0;
        }
        replacement.clear();
        std::mem::replace(&mut self.bytes, replacement)
    }
}

/// Reads bits written by [`BitWriter`].
///
/// Bits are staged through a 64-bit window so the decoder's flag-bit-heavy
/// hot path costs a shift and a mask per read, with one buffered refill
/// every few records instead of per-bit byte indexing.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte index to pull into the window.
    next: usize,
    /// Buffered bits, LSB = next bit of the stream.
    window: u64,
    /// Valid bits in `window`.
    avail: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            next: 0,
            window: 0,
            avail: 0,
        }
    }

    /// Bits consumed so far.
    #[must_use]
    pub fn bits_read(&self) -> u64 {
        self.next as u64 * 8 - u64::from(self.avail)
    }

    /// Bits left in the stream.
    #[inline]
    fn bits_left(&self) -> u64 {
        u64::from(self.avail) + (self.bytes.len() - self.next) as u64 * 8
    }

    /// Tops the window up to at least 57 valid bits (or stream end).
    #[inline]
    fn refill(&mut self) {
        while self.avail <= 56 {
            let Some(&byte) = self.bytes.get(self.next) else {
                return;
            };
            self.window |= u64::from(byte) << self.avail;
            self.next += 1;
            self.avail += 8;
        }
    }

    /// Reads one bit, or `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.avail == 0 {
            self.refill();
            if self.avail == 0 {
                return None;
            }
        }
        let bit = self.window & 1 == 1;
        self.window >>= 1;
        self.avail -= 1;
        Some(bit)
    }

    /// Reads `n` bits (LSB first), or `None` if the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if n == 0 {
            return Some(0);
        }
        if self.bits_left() < u64::from(n) {
            return None;
        }
        self.refill();
        if n <= self.avail {
            let out = if n == 64 {
                self.window // avail >= 64 is only possible when full
            } else {
                self.window & ((1u64 << n) - 1)
            };
            self.window = if n == 64 { 0 } else { self.window >> n };
            self.avail -= n;
            return Some(out);
        }
        // The window ran short (only possible near n = 64 with a partial
        // refill): take what is buffered, refill, take the rest.
        let low = self.window;
        let got = self.avail;
        self.window = 0;
        self.avail = 0;
        self.refill();
        let rest = n - got;
        let high = self.window & ((1u64 << rest) - 1);
        self.window >>= rest;
        self.avail -= rest;
        Some(low | high << got)
    }

    /// Reads a nibble-group unsigned varint.
    pub fn read_uvarint(&mut self) -> Option<u64> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let more = self.read_bit()?;
            let nibble = self.read_bits(4)?;
            out |= nibble << shift;
            if !more {
                return Some(out);
            }
            shift += 4;
            if shift >= 64 {
                return None;
            }
        }
    }

    /// Reads a zig-zag signed varint.
    pub fn read_ivarint(&mut self) -> Option<i64> {
        self.read_uvarint().map(unzigzag)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0xdead_beef, 32);
        w.write_bits(0x3, 2);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bits(2), Some(0x3));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn uvarint_sizes_scale_with_magnitude() {
        for (value, max_bits) in [(0u64, 5), (15, 5), (16, 10), (255, 10), (1 << 20, 30)] {
            let mut w = BitWriter::new();
            w.write_uvarint(value);
            assert!(
                w.len_bits() <= max_bits,
                "uvarint({value}) took {} bits, expected <= {max_bits}",
                w.len_bits()
            );
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_uvarint(), Some(value));
        }
    }

    #[test]
    fn ivarint_round_trips_extremes() {
        for value in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::MAX,
            i64::MIN,
            0x7fff_ffff,
            -0x8000_0000,
        ] {
            let mut w = BitWriter::new();
            w.write_ivarint(value);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_ivarint(), Some(value), "value {value}");
        }
    }

    #[test]
    fn reader_returns_none_at_end() {
        let mut w = BitWriter::new();
        w.write_bits(0b10, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // The final byte is padded, so reads succeed to the byte boundary…
        assert!(r.read_bits(8).is_some());
        // …and fail past it.
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(4), None);
    }

    #[test]
    fn zigzag_is_bijective_on_samples() {
        for v in [-5i64, -1, 0, 1, 5, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn bits_read_tracks_position() {
        let mut w = BitWriter::new();
        w.write_bits(0, 13);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let _ = r.read_bits(5);
        assert_eq!(r.bits_read(), 5);
    }
}
