//! The streaming record compressor/decompressor pair.

use std::fmt;

use lba_record::{EventKind, EventRecord, RAW_RECORD_BYTES};

use crate::bits::{BitReader, BitWriter};
use crate::predictors::FcmPredictor;

/// log2 of the per-PC table sizes (successor table and static-field /
/// address-predictor table).
const PC_TABLE_LOG2: u32 = 12;

/// A direct-mapped, tag-checked table keyed by program counter — the
/// software model of the finite hardware tables the paper's compression
/// engine would use (a BTB-style successor table and a per-PC predictor
/// bank). A colliding PC simply evicts the previous occupant: both ends of
/// the stream run the identical table, so evictions are mirrored and only
/// cost compression ratio, never correctness.
#[derive(Debug, Clone)]
struct PcTable<T> {
    slots: Vec<Option<(u64, T)>>,
}

impl<T: Clone> PcTable<T> {
    fn new() -> Self {
        PcTable {
            slots: vec![None; 1 << PC_TABLE_LOG2],
        }
    }

    #[inline]
    fn index(key: u64) -> usize {
        // Fibonacci multiply-and-fold: the software stand-in for the
        // trivial bit-slice index hash hardware would use.
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> (64 - PC_TABLE_LOG2)) as usize
    }

    /// The entry for `key`, if `key` currently owns its slot.
    #[inline]
    fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        match &mut self.slots[Self::index(key)] {
            Some((tag, value)) if *tag == key => Some(value),
            _ => None,
        }
    }

    /// Installs `value` for `key`, evicting any collider.
    #[inline]
    fn insert(&mut self, key: u64, value: T) -> &mut T {
        let slot = &mut self.slots[Self::index(key)];
        *slot = Some((key, value));
        &mut slot.as_mut().expect("just written").1
    }

    /// The raw slot `key` maps to, for flows that check the tag and then
    /// conditionally overwrite under a single probe.
    #[inline]
    fn slot(&mut self, key: u64) -> &mut Option<(u64, T)> {
        &mut self.slots[Self::index(key)]
    }
}

/// Static (per-PC) record fields cached by both ends of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StaticInfo {
    kind: EventKind,
    in1: Option<u8>,
    in2: Option<u8>,
    out: Option<u8>,
    /// Load/store width in bytes (0 when not a memory access).
    width: u32,
    /// Direct branch/jump/call target, or syscall number (kind-dependent).
    static_word: u64,
}

/// Per-PC dynamic prediction state.
#[derive(Debug, Clone)]
struct PcEntry {
    statics: StaticInfo,
    addr_last: u64,
    addr_stride: u64,
    /// Learned offset from the *previous record's* address (whatever PC it
    /// came from) to this PC's address — catches base+0/+8/+16 field walks
    /// whose base is itself unpredictable.
    glob_offset: u64,
    d1: u64,
    d2: u64,
    last_size: u32,
}

impl PcEntry {
    fn new(statics: StaticInfo) -> Self {
        PcEntry {
            statics,
            addr_last: 0,
            addr_stride: 0,
            glob_offset: 0,
            d1: 0,
            d2: 0,
            last_size: 0,
        }
    }
}

fn has_dynamic_addr(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::Load
            | EventKind::Store
            | EventKind::IndirectJump
            | EventKind::Alloc
            | EventKind::Free
            | EventKind::Lock
            | EventKind::Unlock
            | EventKind::Recv
            | EventKind::Return
            | EventKind::Repeat
    )
}

fn has_static_word(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::Branch | EventKind::Jump | EventKind::Call | EventKind::Syscall
    )
}

fn has_dynamic_size(kind: EventKind) -> bool {
    // A Repeat summary's `size` is its fold count, which varies per
    // occurrence like an allocation length does.
    matches!(kind, EventKind::Alloc | EventKind::Recv | EventKind::Repeat)
}

/// Address-predictor outcome codes (2 bits on the wire; `ADDR_ESCAPE` is
/// followed by a signed varint delta from the last address, zero meaning
/// a last-value repeat).
const ADDR_STRIDE: u64 = 0;
const ADDR_GLOBAL: u64 = 1;
const ADDR_FCM: u64 = 2;
const ADDR_ESCAPE: u64 = 3;

/// Aggregate compression statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Records encoded.
    pub records: u64,
    /// Total encoded bits.
    pub bits: u64,
}

impl CompressionStats {
    /// Encoded size in bytes (rounded up).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bits.div_ceil(8)
    }

    /// Average bytes per record — the paper's headline metric
    /// (< 1 byte/instruction).
    #[must_use]
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.bits as f64 / 8.0 / self.records as f64
        }
    }

    /// Compression ratio versus the raw 25-byte record encoding.
    #[must_use]
    pub fn ratio_vs_raw(&self) -> f64 {
        if self.bits == 0 {
            1.0
        } else {
            (self.records * RAW_RECORD_BYTES as u64) as f64 / self.bytes() as f64
        }
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records, {:.3} B/record ({:.1}x vs raw)",
            self.records,
            self.bytes_per_record(),
            self.ratio_vs_raw()
        )
    }
}

/// Depth of the per-PC successor stack (see [`Successor`]).
const SUCC_DEPTH: usize = 4;

/// One successor-table entry: the [`SUCC_DEPTH`] most recent distinct
/// successors of a PC, most-recently-used first.
///
/// The stack makes the PC predictor *dedup-aware*. The capture-side
/// idempotency window is a finite direct-mapped table, so whether a given
/// record is suppressed depends on eviction and flush timing: in a deduped
/// stream the record admitted after PC `A` alternates among `A`'s true
/// successor and the successors *after* the suppressed runs. A
/// single-entry table thrashes among those targets and pays a varint
/// escape on every flip — which is how a heavily-deduped stream
/// (LockSet's exact-address window) came to ship more wire bits on fewer
/// records than the unfiltered run. Keeping the recent set makes any
/// admitted continuation a short unary outcome (depth `d` costs `d+1`
/// bits in the slow path; depths 1–2 have dedicated fast paths);
/// genuinely new control flow still evicts the oldest entry.
#[derive(Debug, Clone, Copy)]
struct Successor {
    mru: [u64; SUCC_DEPTH],
}

impl Successor {
    fn seed(pc: u64) -> Self {
        Successor {
            mru: [pc; SUCC_DEPTH],
        }
    }

    /// Applies the MRU update rule after this entry made a prediction: a
    /// hit moves the matched successor to the front, a miss pushes the
    /// actual successor and evicts the oldest. The decoder mirrors this
    /// exactly — the rule is part of the wire format.
    fn observe(&mut self, actual: u64) {
        let i = self
            .mru
            .iter()
            .position(|&pc| pc == actual)
            .unwrap_or(SUCC_DEPTH - 1);
        for j in (1..=i).rev() {
            self.mru[j] = self.mru[j - 1];
        }
        self.mru[0] = actual;
    }
}

/// Shared predictor state for one direction of the stream.
///
/// The program counter is predicted with a *last-successor* table (a BTB
/// analogue): for each PC, remember the PC that followed it last time.
/// Sequential code and loop back-edges both hit with one flag bit; only the
/// first traversal of an edge and data-dependent branch flips pay a varint.
#[derive(Debug)]
struct StreamState {
    /// Per-thread most recent PC (`u64::MAX` = no instruction yet).
    last_pc: Vec<u64>,
    /// The most recent distinct successors of each PC (shared across
    /// threads), MRU first (see [`Successor`]).
    succ: PcTable<Successor>,
    entries: PcTable<PcEntry>,
    fcm: FcmPredictor,
    last_tid: u8,
    /// Address of the most recent address-carrying record, any PC (feeds
    /// the global-correlation predictor).
    global_last_addr: u64,
}

impl StreamState {
    fn new() -> Self {
        StreamState {
            last_pc: Vec::new(),
            succ: PcTable::new(),
            entries: PcTable::new(),
            fcm: FcmPredictor::default(),
            last_tid: 0,
            global_last_addr: 0,
        }
    }

    /// The slot holding `tid`'s most recent PC (`u64::MAX` = first record
    /// of the thread), growing the table on a new thread id.
    fn last_pc_slot(&mut self, tid: u8) -> &mut u64 {
        let idx = tid as usize;
        if self.last_pc.len() <= idx {
            self.last_pc.resize(idx + 1, u64::MAX);
        }
        &mut self.last_pc[idx]
    }
}

/// Default last-successor prediction for a PC never seen before:
/// fall-through to the next 8-byte instruction slot.
fn fallthrough(pc: u64) -> u64 {
    pc.wrapping_add(8)
}

/// The hardware log-compression engine model.
///
/// Feed records in retirement order; [`LogCompressor::encode`] appends the
/// compressed form to a [`BitWriter`] and returns the bit cost, which the
/// transport layer uses for occupancy accounting.
#[derive(Debug)]
pub struct LogCompressor {
    state: StreamState,
    stats: CompressionStats,
}

impl Default for LogCompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl LogCompressor {
    /// Creates a compressor with cold predictors.
    #[must_use]
    pub fn new() -> Self {
        LogCompressor {
            state: StreamState::new(),
            stats: CompressionStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CompressionStats {
        self.stats
    }

    /// Encodes one record, returning the number of bits written.
    pub fn encode(&mut self, rec: &EventRecord, w: &mut BitWriter) -> u64 {
        let start = w.len_bits();
        let s = &mut self.state;

        // 1-3. Header: thread id, program counter (MRU successor-stack
        // prediction), and the per-PC static fields. The overwhelmingly
        // common case — same thread, most-recent successor, cached
        // statics — is a single fast-path bit; the same header with the
        // *second* most-recent successor (the dedup-alternation case) is
        // two bits; otherwise the three individual flag-bit fields follow.
        let tid_hit = rec.tid == s.last_tid;
        let last = std::mem::replace(s.last_pc_slot(rec.tid), rec.pc);
        let stack = if last == u64::MAX {
            [0; SUCC_DEPTH]
        } else {
            match s.succ.get_mut(last) {
                Some(succ) => {
                    let stack = succ.mru;
                    // In-place update through the same probe.
                    succ.observe(rec.pc);
                    stack
                }
                None => {
                    s.succ.insert(last, Successor::seed(rec.pc));
                    [fallthrough(last); SUCC_DEPTH]
                }
            }
        };
        let depth = stack.iter().position(|&pc| pc == rec.pc);
        let statics = StaticInfo {
            kind: rec.kind,
            in1: rec.in1,
            in2: rec.in2,
            out: rec.out,
            width: if rec.is_memory() { rec.size } else { 0 },
            static_word: match rec.kind {
                EventKind::Branch | EventKind::Jump | EventKind::Call => rec.addr,
                EventKind::Syscall => u64::from(rec.size),
                _ => 0,
            },
        };
        let slot = s.entries.slot(rec.pc);
        let statics_hit = matches!(slot, Some((tag, e)) if *tag == rec.pc && e.statics == statics);

        if tid_hit && depth == Some(0) && statics_hit {
            w.write_bit(true);
        } else if tid_hit && depth == Some(1) && statics_hit {
            // The alternate fast path: identical header except the PC is
            // the stack's second entry — the shape dedup alternation
            // produces in bulk.
            w.write_bit(false);
            w.write_bit(true);
        } else {
            w.write_bit(false);
            w.write_bit(false);
            if tid_hit {
                w.write_bit(true);
            } else {
                w.write_bit(false);
                w.write_bits(u64::from(rec.tid), 8);
                s.last_tid = rec.tid;
            }
            // PC outcome, unary by stack depth: `1` = most recent, `01` =
            // second, …; SUCC_DEPTH zeros = miss, explicit signed delta
            // from the front of the stack follows.
            match depth {
                Some(d) => {
                    for _ in 0..d {
                        w.write_bit(false);
                    }
                    w.write_bit(true);
                }
                None => {
                    for _ in 0..SUCC_DEPTH {
                        w.write_bit(false);
                    }
                    w.write_ivarint(rec.pc.wrapping_sub(stack[0]) as i64);
                }
            }
            if statics_hit {
                w.write_bit(true);
            } else {
                w.write_bit(false);
                write_statics(w, &statics);
            }
        }
        if !statics_hit {
            *slot = Some((rec.pc, PcEntry::new(statics)));
        }
        let entry = &mut slot.as_mut().expect("present or just written").1;

        // 4. Dynamic fields (still under the single `entries` probe).
        if rec.kind == EventKind::Branch {
            w.write_bit(rec.size != 0);
        }
        if has_dynamic_addr(rec.kind) {
            encode_addr(
                w,
                &mut s.fcm,
                rec.pc,
                entry,
                &mut s.global_last_addr,
                rec.addr,
            );
        }
        if has_dynamic_size(rec.kind) {
            if entry.last_size == rec.size {
                w.write_bit(true);
            } else {
                w.write_bit(false);
                w.write_uvarint(u64::from(rec.size));
                entry.last_size = rec.size;
            }
        }

        let bits = w.len_bits() - start;
        self.stats.records += 1;
        self.stats.bits += bits;
        bits
    }
}

fn write_statics(w: &mut BitWriter, st: &StaticInfo) {
    w.write_bits(u64::from(st.kind.code()), 4);
    for op in [st.in1, st.in2, st.out] {
        match op {
            Some(reg) => {
                w.write_bit(true);
                w.write_bits(u64::from(reg), 4);
            }
            None => w.write_bit(false),
        }
    }
    if matches!(st.kind, EventKind::Load | EventKind::Store) {
        w.write_bits(u64::from(st.width.trailing_zeros()), 2);
    }
    if has_static_word(st.kind) {
        w.write_uvarint(st.static_word);
    }
}

fn encode_addr(
    w: &mut BitWriter,
    fcm: &mut FcmPredictor,
    pc: u64,
    e: &mut PcEntry,
    global_last: &mut u64,
    actual: u64,
) {
    let stride_pred = e.addr_last.wrapping_add(e.addr_stride);
    let global_pred = global_last.wrapping_add(e.glob_offset);
    if stride_pred == actual {
        w.write_bits(ADDR_STRIDE, 2);
    } else if global_pred == actual {
        w.write_bits(ADDR_GLOBAL, 2);
    // The FCM probe is lazy: it is a pure read, so skipping it on a
    // stride/global hit leaves the mirrored predictor state untouched.
    } else if e.addr_last.wrapping_add(fcm.predict(pc, e.d1, e.d2)) == actual {
        w.write_bits(ADDR_FCM, 2);
    } else {
        w.write_bits(ADDR_ESCAPE, 2);
        w.write_ivarint(actual.wrapping_sub(e.addr_last) as i64);
    }
    update_addr(fcm, pc, e, global_last, actual);
}

fn update_addr(
    fcm: &mut FcmPredictor,
    pc: u64,
    e: &mut PcEntry,
    global_last: &mut u64,
    actual: u64,
) {
    let delta = actual.wrapping_sub(e.addr_last);
    fcm.update(pc, e.d1, e.d2, delta);
    e.d2 = e.d1;
    e.d1 = delta;
    e.addr_stride = delta;
    e.addr_last = actual;
    e.glob_offset = actual.wrapping_sub(*global_last);
    *global_last = actual;
}

/// Error produced by [`LogDecompressor::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeStreamError {
    /// The bit stream ended mid-record.
    UnexpectedEof,
    /// A static payload named an invalid event-kind code.
    BadKind(u8),
}

impl fmt::Display for DecodeStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeStreamError::UnexpectedEof => write!(f, "compressed stream ended mid-record"),
            DecodeStreamError::BadKind(k) => write!(f, "invalid event kind code {k} in stream"),
        }
    }
}

impl std::error::Error for DecodeStreamError {}

/// The hardware log-decompression engine model: mirrors [`LogCompressor`]
/// predictor-for-predictor, reproducing the exact record stream.
#[derive(Debug)]
pub struct LogDecompressor {
    state: StreamState,
}

impl Default for LogDecompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl LogDecompressor {
    /// Creates a decompressor with cold predictors.
    #[must_use]
    pub fn new() -> Self {
        LogDecompressor {
            state: StreamState::new(),
        }
    }

    /// Decodes the next record.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeStreamError`] when the stream is truncated or
    /// corrupt.
    pub fn decode(&mut self, r: &mut BitReader<'_>) -> Result<EventRecord, DecodeStreamError> {
        const EOF: DecodeStreamError = DecodeStreamError::UnexpectedEof;
        let s = &mut self.state;

        // 1-3. Header: a set fast-path bit means same thread, most-recent
        // successor, cached statics; `01` is the same header resolving to
        // the stack's second entry; `00` is followed by the three
        // individual flag-bit fields (mirroring the encoder).
        let fast = r.read_bit().ok_or(EOF)?;
        let alt_fast = !fast && r.read_bit().ok_or(EOF)?;
        let header_hit = fast || alt_fast;
        let tid = if header_hit || r.read_bit().ok_or(EOF)? {
            s.last_tid
        } else {
            let tid = r.read_bits(8).ok_or(EOF)? as u8;
            s.last_tid = tid;
            tid
        };

        // One bounds-checked slot per record, shared by the last-PC read
        // and its write-back.
        let tid_idx = tid as usize;
        if s.last_pc.len() <= tid_idx {
            s.last_pc.resize(tid_idx + 1, u64::MAX);
        }
        let last = s.last_pc[tid_idx];
        /// The actual PC: the fast paths name stack depths 1 and 2
        /// directly; otherwise a unary code selects the stack depth, and
        /// failing that an explicit signed delta from the front of the
        /// stack follows.
        #[inline]
        fn resolve(
            fast: bool,
            alt_fast: bool,
            stack: &[u64; SUCC_DEPTH],
            r: &mut BitReader<'_>,
        ) -> Option<u64> {
            if fast {
                return Some(stack[0]);
            }
            if alt_fast {
                return Some(stack[1]);
            }
            for &entry in stack {
                if r.read_bit()? {
                    return Some(entry);
                }
            }
            let delta = r.read_ivarint()?;
            Some(stack[0].wrapping_add(delta as u64))
        }
        let pc = if last == u64::MAX {
            resolve(fast, alt_fast, &[0; SUCC_DEPTH], r).ok_or(EOF)?
        } else {
            match s.succ.get_mut(last) {
                Some(succ) => {
                    let stack = succ.mru;
                    let pc = resolve(fast, alt_fast, &stack, r).ok_or(EOF)?;
                    succ.observe(pc);
                    pc
                }
                None => {
                    let f = fallthrough(last);
                    let pc = resolve(fast, alt_fast, &[f; SUCC_DEPTH], r).ok_or(EOF)?;
                    s.succ.insert(last, Successor::seed(pc));
                    pc
                }
            }
        };
        s.last_pc[tid_idx] = pc;

        let entry: &mut PcEntry = if header_hit || r.read_bit().ok_or(EOF)? {
            s.entries.get_mut(pc).expect("static hit implies known pc")
        } else {
            let statics = read_statics(r)?;
            s.entries.insert(pc, PcEntry::new(statics))
        };
        let statics = entry.statics;

        // 4. Dynamic fields.
        let mut size = match statics.kind {
            EventKind::Load | EventKind::Store => statics.width,
            EventKind::Syscall => statics.static_word as u32,
            _ => 0,
        };
        let mut addr = if has_static_word(statics.kind) && statics.kind != EventKind::Syscall {
            statics.static_word
        } else {
            0
        };
        if statics.kind == EventKind::Branch {
            size = u32::from(r.read_bit().ok_or(EOF)?);
        }
        if has_dynamic_addr(statics.kind) {
            addr = decode_addr(r, &mut s.fcm, pc, entry, &mut s.global_last_addr)?;
        }
        if has_dynamic_size(statics.kind) {
            if r.read_bit().ok_or(EOF)? {
                size = entry.last_size;
            } else {
                size = r.read_uvarint().ok_or(EOF)? as u32;
                entry.last_size = size;
            }
        }

        Ok(EventRecord {
            pc,
            kind: statics.kind,
            tid,
            in1: statics.in1,
            in2: statics.in2,
            out: statics.out,
            addr,
            size,
        })
    }
}

fn read_statics(r: &mut BitReader<'_>) -> Result<StaticInfo, DecodeStreamError> {
    let eof = DecodeStreamError::UnexpectedEof;
    let code = r.read_bits(4).ok_or(eof.clone())? as u8;
    let kind = EventKind::from_code(code).ok_or(DecodeStreamError::BadKind(code))?;
    let mut ops = [None; 3];
    for op in &mut ops {
        if r.read_bit().ok_or(eof.clone())? {
            *op = Some(r.read_bits(4).ok_or(eof.clone())? as u8);
        }
    }
    let width = if matches!(kind, EventKind::Load | EventKind::Store) {
        1u32 << r.read_bits(2).ok_or(eof.clone())?
    } else {
        0
    };
    let static_word = if has_static_word(kind) {
        r.read_uvarint().ok_or(eof)?
    } else {
        0
    };
    Ok(StaticInfo {
        kind,
        in1: ops[0],
        in2: ops[1],
        out: ops[2],
        width,
        static_word,
    })
}

fn decode_addr(
    r: &mut BitReader<'_>,
    fcm: &mut FcmPredictor,
    pc: u64,
    e: &mut PcEntry,
    global_last: &mut u64,
) -> Result<u64, DecodeStreamError> {
    let eof = DecodeStreamError::UnexpectedEof;
    let code = r.read_bits(2).ok_or(eof.clone())?;
    let actual = match code {
        ADDR_STRIDE => e.addr_last.wrapping_add(e.addr_stride),
        ADDR_GLOBAL => global_last.wrapping_add(e.glob_offset),
        ADDR_FCM => e.addr_last.wrapping_add(fcm.predict(pc, e.d1, e.d2)),
        _ => {
            let delta = r.read_ivarint().ok_or(eof)?;
            e.addr_last.wrapping_add(delta as u64)
        }
    };
    update_addr(fcm, pc, e, global_last, actual);
    Ok(actual)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(records: &[EventRecord]) -> CompressionStats {
        let mut c = LogCompressor::new();
        let mut w = BitWriter::new();
        for rec in records {
            c.encode(rec, &mut w);
        }
        let stats = c.stats();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut d = LogDecompressor::new();
        for (i, rec) in records.iter().enumerate() {
            let got = d
                .decode(&mut r)
                .unwrap_or_else(|e| panic!("record {i}: {e}"));
            assert_eq!(got, *rec, "record {i} mismatched");
        }
        stats
    }

    #[test]
    fn mixed_kinds_round_trip() {
        let records = vec![
            EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(3)),
            EventRecord::load(0x1008, 0, Some(2), Some(1), 0x4000_0000, 8),
            EventRecord::store(0x1010, 0, Some(1), Some(2), 0x4000_0100, 4),
            EventRecord {
                pc: 0x1018,
                kind: EventKind::Branch,
                tid: 0,
                in1: Some(1),
                in2: Some(0),
                out: None,
                addr: 0x1000,
                size: 1,
            },
            EventRecord {
                pc: 0x1020,
                kind: EventKind::Alloc,
                tid: 0,
                in1: Some(4),
                in2: None,
                out: Some(5),
                addr: 0x4000_0200,
                size: 64,
            },
            EventRecord {
                pc: 0x1028,
                kind: EventKind::Syscall,
                tid: 0,
                in1: None,
                in2: None,
                out: None,
                addr: 0,
                size: 7,
            },
            EventRecord::repeat(0x1008, 0, 0x4000_0000, 8, false, 4096),
            EventRecord {
                pc: 0x1030,
                kind: EventKind::ThreadEnd,
                tid: 0,
                in1: None,
                in2: None,
                out: None,
                addr: 0,
                size: 0,
            },
        ];
        round_trip(&records);
    }

    #[test]
    fn repeat_summaries_interleaved_with_their_pc_round_trip() {
        // A Repeat summary reuses its duplicates' PC, so the per-PC static
        // cache alternates between the load's statics and the summary's:
        // every alternation must re-escape cleanly, and the varying fold
        // counts ride the dynamic-size path.
        let mut records = Vec::new();
        for i in 0..500u64 {
            records.push(EventRecord::load(
                0x2000,
                0,
                Some(1),
                Some(2),
                0x4000_0000 + (i % 4) * 64,
                4,
            ));
            if i % 7 == 0 {
                records.push(EventRecord::repeat(
                    0x2000,
                    0,
                    0x4000_0000 + (i % 4) * 64,
                    4,
                    false,
                    (i + 1) as u32,
                ));
            }
        }
        round_trip(&records);
    }

    #[test]
    fn hot_loop_compresses_below_one_byte() {
        // Model a tight loop: alu, strided load, branch — repeated.
        let mut records = Vec::new();
        for i in 0..10_000u64 {
            records.push(EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(1)));
            records.push(EventRecord::load(
                0x1008,
                0,
                Some(3),
                Some(4),
                0x4000_0000 + i * 8,
                8,
            ));
            records.push(EventRecord {
                pc: 0x1010,
                kind: EventKind::Branch,
                tid: 0,
                in1: Some(1),
                in2: Some(0),
                out: None,
                addr: 0x1000,
                size: 1,
            });
        }
        let stats = round_trip(&records);
        assert!(
            stats.bytes_per_record() < 1.0,
            "expected <1 B/record, got {:.3}",
            stats.bytes_per_record()
        );
    }

    #[test]
    fn interleaved_threads_round_trip() {
        let mut records = Vec::new();
        for i in 0..200u64 {
            let tid = (i % 3) as u8;
            records.push(EventRecord::load(
                0x1000 + tid as u64 * 8,
                tid,
                Some(1),
                Some(2),
                0x4000_0000 + i * 16,
                4,
            ));
        }
        round_trip(&records);
    }

    #[test]
    fn random_addresses_still_round_trip() {
        // Linear congruential garbage addresses: predictor misses galore.
        let mut x = 0x12345u64;
        let mut records = Vec::new();
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            records.push(EventRecord::load(0x1000, 0, Some(1), None, x, 1));
        }
        let stats = round_trip(&records);
        assert!(
            stats.bytes_per_record() < RAW_RECORD_BYTES as f64,
            "never worse than raw + eps"
        );
    }

    #[test]
    fn alternating_stride_pattern_uses_fcm() {
        // +8/+56 alternation defeats stride; FCM should catch it, keeping
        // the cost low.
        let mut addr = 0x4000_0000u64;
        let mut records = Vec::new();
        for i in 0..4000 {
            records.push(EventRecord::load(0x1000, 0, Some(1), None, addr, 8));
            addr += if i % 2 == 0 { 8 } else { 56 };
        }
        let stats = round_trip(&records);
        assert!(
            stats.bytes_per_record() < 1.5,
            "fcm should keep alternating strides cheap, got {:.3}",
            stats.bytes_per_record()
        );
    }

    #[test]
    fn truncated_stream_reports_eof() {
        let mut c = LogCompressor::new();
        let mut w = BitWriter::new();
        c.encode(
            &EventRecord::load(0x1000, 3, Some(1), None, 0x4000_0000, 8),
            &mut w,
        );
        let mut bytes = w.into_bytes();
        bytes.truncate(1);
        let mut d = LogDecompressor::new();
        let mut r = BitReader::new(&bytes);
        assert_eq!(d.decode(&mut r), Err(DecodeStreamError::UnexpectedEof));
    }

    #[test]
    fn stats_track_records_and_ratio() {
        let mut c = LogCompressor::new();
        let mut w = BitWriter::new();
        for _ in 0..10 {
            c.encode(
                &EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(3)),
                &mut w,
            );
        }
        let stats = c.stats();
        assert_eq!(stats.records, 10);
        assert!(stats.bits > 0);
        assert!(stats.ratio_vs_raw() > 1.0);
    }

    #[test]
    fn alloc_sizes_use_last_value_prediction() {
        let mut records = Vec::new();
        for i in 0..100u64 {
            records.push(EventRecord {
                pc: 0x1000,
                kind: EventKind::Alloc,
                tid: 0,
                in1: Some(1),
                in2: None,
                out: Some(2),
                addr: 0x4000_0000 + i * 64,
                size: 64,
            });
        }
        let stats = round_trip(&records);
        assert!(stats.bytes_per_record() < 1.5);
    }
}
