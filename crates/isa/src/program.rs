//! Validated program images.

use std::fmt;

use crate::inst::Instruction;

/// Base address of the code segment.
pub const CODE_BASE: u64 = 0x1000;

/// Size of one encoded instruction in bytes (fixed-width encoding).
pub const INST_BYTES: u64 = 8;

/// An initialised data segment copied into memory before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Destination address of the first byte.
    pub addr: u64,
    /// The bytes to copy.
    pub bytes: Vec<u8>,
}

/// Error produced when validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// The program declares no entry point.
    NoEntry,
    /// An entry point does not name a valid instruction address.
    BadEntry(u64),
    /// A static branch/jump/call target is not a valid instruction address.
    BadTarget {
        /// Address of the faulting instruction.
        pc: u64,
        /// The invalid target address.
        target: u64,
    },
    /// A data segment overlaps the code image.
    DataOverlapsCode(u64),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::NoEntry => write!(f, "program declares no entry point"),
            ProgramError::BadEntry(pc) => write!(f, "entry point {pc:#x} is not in the code image"),
            ProgramError::BadTarget { pc, target } => {
                write!(
                    f,
                    "instruction at {pc:#x} targets invalid address {target:#x}"
                )
            }
            ProgramError::DataOverlapsCode(addr) => {
                write!(f, "data segment at {addr:#x} overlaps the code image")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated, immutable MiniISA program: code, entry points, initialised
/// data and the external input stream consumed by `recv`.
///
/// Construct programs with the [`Assembler`](crate::Assembler) builder or the
/// [`parse_program`](crate::parse_program) text assembler.
///
/// # Examples
///
/// ```
/// use lba_isa::{parse_program, CODE_BASE};
///
/// let program = parse_program(
///     "
///     .name tiny
///     .entry main
///     main:
///         movi r1, 7
///         halt
///     ",
/// )?;
/// assert_eq!(program.name(), "tiny");
/// assert_eq!(program.entries(), &[CODE_BASE]);
/// # Ok::<(), lba_isa::ParseProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    code: Vec<Instruction>,
    entries: Vec<u64>,
    data: Vec<DataSegment>,
    input: Vec<u8>,
}

impl Program {
    /// Creates and validates a program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] when the code image is empty, an entry or
    /// static control-flow target is out of range, or data overlaps code.
    pub fn new(
        name: impl Into<String>,
        code: Vec<Instruction>,
        entries: Vec<u64>,
        data: Vec<DataSegment>,
        input: Vec<u8>,
    ) -> Result<Self, ProgramError> {
        if code.is_empty() {
            return Err(ProgramError::Empty);
        }
        if entries.is_empty() {
            return Err(ProgramError::NoEntry);
        }
        let program = Program {
            name: name.into(),
            code,
            entries,
            data,
            input,
        };
        for &entry in &program.entries {
            if program.index_of(entry).is_none() {
                return Err(ProgramError::BadEntry(entry));
            }
        }
        for (idx, inst) in program.code.iter().enumerate() {
            let target = match *inst {
                Instruction::Branch { target, .. }
                | Instruction::Jump { target }
                | Instruction::Call { target } => Some(target),
                _ => None,
            };
            if let Some(target) = target {
                if program.index_of(target).is_none() {
                    return Err(ProgramError::BadTarget {
                        pc: program.pc_of(idx),
                        target,
                    });
                }
            }
        }
        let code_end = CODE_BASE + program.code.len() as u64 * INST_BYTES;
        for seg in &program.data {
            let seg_end = seg.addr + seg.bytes.len() as u64;
            if seg.addr < code_end && seg_end > CODE_BASE {
                return Err(ProgramError::DataOverlapsCode(seg.addr));
            }
        }
        Ok(program)
    }

    /// The program's human-readable name (e.g. `"gzip"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the code image is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The instruction address for a code index.
    #[must_use]
    pub fn pc_of(&self, index: usize) -> u64 {
        CODE_BASE + index as u64 * INST_BYTES
    }

    /// The code index for an instruction address, or `None` when `pc` is not
    /// aligned or outside the image.
    #[must_use]
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        if pc < CODE_BASE || !(pc - CODE_BASE).is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / INST_BYTES) as usize;
        (idx < self.code.len()).then_some(idx)
    }

    /// Fetches the instruction at `pc`, or `None` when out of range.
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Option<&Instruction> {
        self.index_of(pc).map(|i| &self.code[i])
    }

    /// The instructions in code order.
    #[must_use]
    pub fn code(&self) -> &[Instruction] {
        &self.code
    }

    /// Entry-point addresses; the machine starts one thread per entry.
    #[must_use]
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Initialised data segments.
    #[must_use]
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// The external input stream consumed by `recv` instructions.
    #[must_use]
    pub fn input(&self) -> &[u8] {
        &self.input
    }

    /// Encodes the whole code image to bytes (8 bytes per instruction).
    #[must_use]
    pub fn encode_code(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.code.len() * INST_BYTES as usize);
        for inst in &self.code {
            out.extend_from_slice(&inst.encode());
        }
        out
    }

    /// Renders a disassembly listing of the code image.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (idx, inst) in self.code.iter().enumerate() {
            let _ = writeln!(out, "{:#08x}: {}", self.pc_of(idx), inst);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;
    use crate::reg::r;

    fn halt_program(entries: Vec<u64>) -> Result<Program, ProgramError> {
        Program::new("t", vec![Instruction::Halt], entries, vec![], vec![])
    }

    #[test]
    fn empty_code_rejected() {
        let err = Program::new("t", vec![], vec![CODE_BASE], vec![], vec![]).unwrap_err();
        assert_eq!(err, ProgramError::Empty);
    }

    #[test]
    fn missing_entry_rejected() {
        let err = halt_program(vec![]).unwrap_err();
        assert_eq!(err, ProgramError::NoEntry);
    }

    #[test]
    fn bad_entry_rejected() {
        let err = halt_program(vec![CODE_BASE + 8]).unwrap_err();
        assert_eq!(err, ProgramError::BadEntry(CODE_BASE + 8));
    }

    #[test]
    fn misaligned_entry_rejected() {
        let err = halt_program(vec![CODE_BASE + 3]).unwrap_err();
        assert_eq!(err, ProgramError::BadEntry(CODE_BASE + 3));
    }

    #[test]
    fn bad_branch_target_rejected() {
        let code = vec![
            Instruction::Branch {
                cond: Cond::Eq,
                rs1: r(0),
                rs2: r(0),
                target: 0x9999,
            },
            Instruction::Halt,
        ];
        let err = Program::new("t", code, vec![CODE_BASE], vec![], vec![]).unwrap_err();
        assert!(matches!(
            err,
            ProgramError::BadTarget { target: 0x9999, .. }
        ));
    }

    #[test]
    fn data_overlapping_code_rejected() {
        let code = vec![Instruction::Halt];
        let data = vec![DataSegment {
            addr: CODE_BASE,
            bytes: vec![1, 2, 3],
        }];
        let err = Program::new("t", code, vec![CODE_BASE], data, vec![]).unwrap_err();
        assert_eq!(err, ProgramError::DataOverlapsCode(CODE_BASE));
    }

    #[test]
    fn pc_index_round_trip() {
        let code = vec![Instruction::Nop, Instruction::Nop, Instruction::Halt];
        let p = Program::new("t", code, vec![CODE_BASE], vec![], vec![]).unwrap();
        for idx in 0..p.len() {
            assert_eq!(p.index_of(p.pc_of(idx)), Some(idx));
        }
        assert_eq!(p.index_of(CODE_BASE + 3 * INST_BYTES), None);
        assert_eq!(p.index_of(CODE_BASE - 8), None);
    }

    #[test]
    fn fetch_returns_instruction() {
        let code = vec![Instruction::Nop, Instruction::Halt];
        let p = Program::new("t", code, vec![CODE_BASE], vec![], vec![]).unwrap();
        assert_eq!(p.fetch(CODE_BASE), Some(&Instruction::Nop));
        assert_eq!(p.fetch(CODE_BASE + 8), Some(&Instruction::Halt));
        assert_eq!(p.fetch(CODE_BASE + 16), None);
    }

    #[test]
    fn encode_code_emits_eight_bytes_per_instruction() {
        let code = vec![Instruction::Nop, Instruction::Halt];
        let p = Program::new("t", code, vec![CODE_BASE], vec![], vec![]).unwrap();
        assert_eq!(p.encode_code().len(), 16);
    }

    #[test]
    fn disassembly_contains_addresses() {
        let code = vec![Instruction::Nop, Instruction::Halt];
        let p = Program::new("t", code, vec![CODE_BASE], vec![], vec![]).unwrap();
        let listing = p.disassemble();
        assert!(listing.contains("0x001000: nop"));
        assert!(listing.contains("halt"));
    }
}
