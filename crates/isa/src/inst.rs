//! Instruction definitions, binary encoding and disassembly.

use std::fmt;

use crate::reg::Reg;

/// Arithmetic/logic operations for [`Instruction::Alu`] and
/// [`Instruction::AluImm`].
///
/// All operations are defined on 64-bit values with wrapping semantics;
/// `Div` by zero yields zero (the CPU model documents this choice).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero yields zero.
    Div,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Signed less-than; result is 1 or 0.
    Slt,
}

impl AluOp {
    /// All operations, in encoding order.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Slt,
    ];

    fn code(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&op| op == self)
            .expect("op listed in ALL") as u8
    }

    fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// The assembly mnemonic (e.g. `"add"`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Slt => "slt",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch conditions for [`Instruction::Branch`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Branch when equal.
    Eq,
    /// Branch when not equal.
    Ne,
    /// Branch when signed less-than.
    Lt,
    /// Branch when signed greater-or-equal.
    Ge,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 4] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge];

    fn code(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("cond listed in ALL") as u8
    }

    fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// The assembly mnemonic suffix (e.g. `"eq"` as in `beq`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        }
    }

    /// Evaluates the condition on two 64-bit operand values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
        }
    }
}

/// Memory access widths supported by [`Instruction::Load`] and
/// [`Instruction::Store`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Width {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl Width {
    /// All widths, in encoding order.
    pub const ALL: [Width; 4] = [Width::B1, Width::B2, Width::B4, Width::B8];

    /// The width in bytes (1, 2, 4 or 8).
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// Creates a width from a byte count.
    #[must_use]
    pub fn from_bytes(bytes: u32) -> Option<Self> {
        match bytes {
            1 => Some(Width::B1),
            2 => Some(Width::B2),
            4 => Some(Width::B4),
            8 => Some(Width::B8),
            _ => None,
        }
    }

    fn code(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&w| w == self)
            .expect("width listed in ALL") as u8
    }

    fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// A MiniISA instruction.
///
/// Branch, jump and call targets are absolute instruction addresses (the
/// [`Assembler`](crate::Assembler) resolves labels to addresses).
///
/// Runtime events (`Alloc`, `Free`, `Lock`, `Unlock`, `Recv`, `Syscall`) are
/// first-class instructions so the LBA capture hardware sees them directly;
/// the paper obtained the equivalent events by instrumenting libc wrappers.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Stops the executing thread; the program ends when all threads halt.
    Halt,
    /// `rd <- imm`.
    MovImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value (must fit in `i32` for binary encoding).
        imm: i64,
    },
    /// `rd <- rs`.
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd <- rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd <- rs1 op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate operand (must fit in `i32` for binary encoding).
        imm: i64,
    },
    /// `rd <- mem[rs(base) + offset]` (zero-extended).
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// `mem[rs(base) + offset] <- src` (truncated to width).
    Store {
        /// Source register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Conditional branch to an absolute address.
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparison operand.
        rs1: Reg,
        /// Second comparison operand.
        rs2: Reg,
        /// Absolute target address.
        target: u64,
    },
    /// Unconditional jump to an absolute address.
    Jump {
        /// Absolute target address.
        target: u64,
    },
    /// Indirect jump through a register (the TaintCheck-critical case).
    JumpReg {
        /// Register holding the target address.
        rs: Reg,
    },
    /// Call to an absolute address (pushes the return address on the
    /// core-internal return-address stack).
    Call {
        /// Absolute target address.
        target: u64,
    },
    /// Indirect call through a register.
    CallReg {
        /// Register holding the target address.
        rs: Reg,
    },
    /// Return to the most recent call site.
    Ret,
    /// `rd <- heap_alloc(size_reg)`; a runtime event visible to lifeguards.
    Alloc {
        /// Destination register receiving the block address (0 on failure).
        rd: Reg,
        /// Register holding the requested size in bytes.
        size: Reg,
    },
    /// `heap_free(rs)`; a runtime event visible to lifeguards.
    Free {
        /// Register holding the block address.
        rs: Reg,
    },
    /// Acquires the lock identified by the address in `rs` (blocking).
    Lock {
        /// Register holding the lock address.
        rs: Reg,
    },
    /// Releases the lock identified by the address in `rs`.
    Unlock {
        /// Register holding the lock address.
        rs: Reg,
    },
    /// Reads external input bytes into `mem[base..base+len]`; the canonical
    /// taint source.
    Recv {
        /// Register holding the destination address.
        base: Reg,
        /// Register holding the length in bytes.
        len: Reg,
    },
    /// Traps to the (modelled) operating system. Under LBA the OS stalls the
    /// syscall until the lifeguard has drained the preceding log entries.
    Syscall {
        /// System call number.
        num: u16,
    },
}

/// Error returned by [`Instruction::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeInstructionError {
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// A register field is out of range.
    BadRegister(u8),
    /// An embedded sub-field (ALU op, condition, width) is invalid.
    BadField(&'static str, u8),
}

impl fmt::Display for DecodeInstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeInstructionError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeInstructionError::BadRegister(r) => write!(f, "register index {r} out of range"),
            DecodeInstructionError::BadField(name, v) => {
                write!(f, "invalid {name} field value {v}")
            }
        }
    }
}

impl std::error::Error for DecodeInstructionError {}

const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_MOVIMM: u8 = 0x02;
const OP_MOV: u8 = 0x03;
const OP_ALU: u8 = 0x04;
const OP_ALUIMM: u8 = 0x05;
const OP_LOAD: u8 = 0x06;
const OP_STORE: u8 = 0x07;
const OP_BRANCH: u8 = 0x08;
const OP_JUMP: u8 = 0x09;
const OP_JUMPREG: u8 = 0x0a;
const OP_CALL: u8 = 0x0b;
const OP_CALLREG: u8 = 0x0c;
const OP_RET: u8 = 0x0d;
const OP_ALLOC: u8 = 0x0e;
const OP_FREE: u8 = 0x0f;
const OP_LOCK: u8 = 0x10;
const OP_UNLOCK: u8 = 0x11;
const OP_RECV: u8 = 0x12;
const OP_SYSCALL: u8 = 0x13;

fn reg_of(byte: u8) -> Result<Reg, DecodeInstructionError> {
    Reg::try_new(byte).ok_or(DecodeInstructionError::BadRegister(byte))
}

impl Instruction {
    /// Encodes the instruction into its fixed 8-byte binary form.
    ///
    /// Layout: `[opcode, a, b, c, imm: i32 little-endian]`.
    ///
    /// # Panics
    ///
    /// Panics if an immediate or target does not fit in 32 bits; the
    /// [`Assembler`](crate::Assembler) validates this at program-build time.
    #[must_use]
    pub fn encode(&self) -> [u8; 8] {
        let (op, a, b, c, imm): (u8, u8, u8, u8, i64) = match *self {
            Instruction::Nop => (OP_NOP, 0, 0, 0, 0),
            Instruction::Halt => (OP_HALT, 0, 0, 0, 0),
            Instruction::MovImm { rd, imm } => (OP_MOVIMM, rd.to_byte(), 0, 0, imm),
            Instruction::Mov { rd, rs } => (OP_MOV, rd.to_byte(), rs.to_byte(), 0, 0),
            Instruction::Alu { op, rd, rs1, rs2 } => (
                OP_ALU,
                rd.to_byte(),
                rs1.to_byte(),
                rs2.to_byte() | (op.code() << 4),
                0,
            ),
            Instruction::AluImm { op, rd, rs1, imm } => {
                (OP_ALUIMM, rd.to_byte(), rs1.to_byte(), op.code(), imm)
            }
            Instruction::Load {
                rd,
                base,
                offset,
                width,
            } => (OP_LOAD, rd.to_byte(), base.to_byte(), width.code(), offset),
            Instruction::Store {
                src,
                base,
                offset,
                width,
            } => (
                OP_STORE,
                src.to_byte(),
                base.to_byte(),
                width.code(),
                offset,
            ),
            // Targets are stored as a sign-extended 32-bit immediate, so
            // the cast must wrap (a target like 0xffff_ffff_8000_0000 is
            // the sign extension of i32::MIN).
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => (
                OP_BRANCH,
                rs1.to_byte(),
                rs2.to_byte(),
                cond.code(),
                target as i64,
            ),
            Instruction::Jump { target } => (OP_JUMP, 0, 0, 0, target as i64),
            Instruction::JumpReg { rs } => (OP_JUMPREG, rs.to_byte(), 0, 0, 0),
            Instruction::Call { target } => (OP_CALL, 0, 0, 0, target as i64),
            Instruction::CallReg { rs } => (OP_CALLREG, rs.to_byte(), 0, 0, 0),
            Instruction::Ret => (OP_RET, 0, 0, 0, 0),
            Instruction::Alloc { rd, size } => (OP_ALLOC, rd.to_byte(), size.to_byte(), 0, 0),
            Instruction::Free { rs } => (OP_FREE, rs.to_byte(), 0, 0, 0),
            Instruction::Lock { rs } => (OP_LOCK, rs.to_byte(), 0, 0, 0),
            Instruction::Unlock { rs } => (OP_UNLOCK, rs.to_byte(), 0, 0, 0),
            Instruction::Recv { base, len } => (OP_RECV, base.to_byte(), len.to_byte(), 0, 0),
            Instruction::Syscall { num } => (OP_SYSCALL, 0, 0, 0, i64::from(num)),
        };
        let imm32 = i32::try_from(imm).expect("immediate fits in 32 bits");
        let ib = imm32.to_le_bytes();
        [op, a, b, c, ib[0], ib[1], ib[2], ib[3]]
    }

    /// Decodes an instruction from its 8-byte binary form.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeInstructionError`] when the opcode or any embedded
    /// field is invalid.
    pub fn decode(bytes: [u8; 8]) -> Result<Self, DecodeInstructionError> {
        let [op, a, b, c, i0, i1, i2, i3] = bytes;
        let imm = i64::from(i32::from_le_bytes([i0, i1, i2, i3]));
        Ok(match op {
            OP_NOP => Instruction::Nop,
            OP_HALT => Instruction::Halt,
            OP_MOVIMM => Instruction::MovImm {
                rd: reg_of(a)?,
                imm,
            },
            OP_MOV => Instruction::Mov {
                rd: reg_of(a)?,
                rs: reg_of(b)?,
            },
            OP_ALU => Instruction::Alu {
                op: AluOp::from_code(c >> 4)
                    .ok_or(DecodeInstructionError::BadField("alu op", c >> 4))?,
                rd: reg_of(a)?,
                rs1: reg_of(b)?,
                rs2: reg_of(c & 0x0f)?,
            },
            OP_ALUIMM => Instruction::AluImm {
                op: AluOp::from_code(c).ok_or(DecodeInstructionError::BadField("alu op", c))?,
                rd: reg_of(a)?,
                rs1: reg_of(b)?,
                imm,
            },
            OP_LOAD => Instruction::Load {
                rd: reg_of(a)?,
                base: reg_of(b)?,
                offset: imm,
                width: Width::from_code(c).ok_or(DecodeInstructionError::BadField("width", c))?,
            },
            OP_STORE => Instruction::Store {
                src: reg_of(a)?,
                base: reg_of(b)?,
                offset: imm,
                width: Width::from_code(c).ok_or(DecodeInstructionError::BadField("width", c))?,
            },
            OP_BRANCH => Instruction::Branch {
                cond: Cond::from_code(c).ok_or(DecodeInstructionError::BadField("cond", c))?,
                rs1: reg_of(a)?,
                rs2: reg_of(b)?,
                target: imm as u64,
            },
            OP_JUMP => Instruction::Jump { target: imm as u64 },
            OP_JUMPREG => Instruction::JumpReg { rs: reg_of(a)? },
            OP_CALL => Instruction::Call { target: imm as u64 },
            OP_CALLREG => Instruction::CallReg { rs: reg_of(a)? },
            OP_RET => Instruction::Ret,
            OP_ALLOC => Instruction::Alloc {
                rd: reg_of(a)?,
                size: reg_of(b)?,
            },
            OP_FREE => Instruction::Free { rs: reg_of(a)? },
            OP_LOCK => Instruction::Lock { rs: reg_of(a)? },
            OP_UNLOCK => Instruction::Unlock { rs: reg_of(a)? },
            OP_RECV => Instruction::Recv {
                base: reg_of(a)?,
                len: reg_of(b)?,
            },
            OP_SYSCALL => Instruction::Syscall { num: imm as u16 },
            other => return Err(DecodeInstructionError::BadOpcode(other)),
        })
    }

    /// Whether the instruction performs a data-memory access.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(self, Instruction::Load { .. } | Instruction::Store { .. })
    }

    /// Whether the instruction ends a basic block (any control transfer).
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. }
                | Instruction::Jump { .. }
                | Instruction::JumpReg { .. }
                | Instruction::Call { .. }
                | Instruction::CallReg { .. }
                | Instruction::Ret
                | Instruction::Halt
        )
    }

    /// The source registers read by this instruction, in operand order.
    #[must_use]
    pub fn inputs(&self) -> [Option<Reg>; 2] {
        match *self {
            Instruction::Mov { rs, .. } => [Some(rs), None],
            Instruction::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instruction::AluImm { rs1, .. } => [Some(rs1), None],
            Instruction::Load { base, .. } => [Some(base), None],
            Instruction::Store { src, base, .. } => [Some(src), Some(base)],
            Instruction::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instruction::JumpReg { rs }
            | Instruction::CallReg { rs }
            | Instruction::Free { rs }
            | Instruction::Lock { rs }
            | Instruction::Unlock { rs } => [Some(rs), None],
            Instruction::Alloc { size, .. } => [Some(size), None],
            Instruction::Recv { base, len } => [Some(base), Some(len)],
            _ => [None, None],
        }
    }

    /// The destination register written by this instruction, if any.
    #[must_use]
    pub fn output(&self) -> Option<Reg> {
        match *self {
            Instruction::MovImm { rd, .. }
            | Instruction::Mov { rd, .. }
            | Instruction::Alu { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::Alloc { rd, .. } => Some(rd),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Nop => write!(f, "nop"),
            Instruction::Halt => write!(f, "halt"),
            Instruction::MovImm { rd, imm } => write!(f, "movi {rd}, {imm}"),
            Instruction::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Instruction::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Instruction::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Instruction::Load {
                rd,
                base,
                offset,
                width,
            } => {
                write!(f, "load.{width} {rd}, [{base}{offset:+}]")
            }
            Instruction::Store {
                src,
                base,
                offset,
                width,
            } => {
                write!(f, "store.{width} {src}, [{base}{offset:+}]")
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "b{} {rs1}, {rs2}, {target:#x}", cond.mnemonic())
            }
            Instruction::Jump { target } => write!(f, "jmp {target:#x}"),
            Instruction::JumpReg { rs } => write!(f, "jmpr {rs}"),
            Instruction::Call { target } => write!(f, "call {target:#x}"),
            Instruction::CallReg { rs } => write!(f, "callr {rs}"),
            Instruction::Ret => write!(f, "ret"),
            Instruction::Alloc { rd, size } => write!(f, "alloc {rd}, {size}"),
            Instruction::Free { rs } => write!(f, "free {rs}"),
            Instruction::Lock { rs } => write!(f, "lock {rs}"),
            Instruction::Unlock { rs } => write!(f, "unlock {rs}"),
            Instruction::Recv { base, len } => write!(f, "recv {base}, {len}"),
            Instruction::Syscall { num } => write!(f, "syscall {num}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    fn sample_instructions() -> Vec<Instruction> {
        vec![
            Instruction::Nop,
            Instruction::Halt,
            Instruction::MovImm { rd: r(1), imm: -42 },
            Instruction::Mov { rd: r(2), rs: r(3) },
            Instruction::Alu {
                op: AluOp::Xor,
                rd: r(4),
                rs1: r(5),
                rs2: r(6),
            },
            Instruction::AluImm {
                op: AluOp::Shl,
                rd: r(7),
                rs1: r(8),
                imm: 13,
            },
            Instruction::Load {
                rd: r(1),
                base: r(2),
                offset: -8,
                width: Width::B4,
            },
            Instruction::Store {
                src: r(3),
                base: r(4),
                offset: 16,
                width: Width::B8,
            },
            Instruction::Branch {
                cond: Cond::Lt,
                rs1: r(1),
                rs2: r(0),
                target: 0x1040,
            },
            Instruction::Jump { target: 0x1000 },
            Instruction::JumpReg { rs: r(9) },
            Instruction::Call { target: 0x2000 },
            Instruction::CallReg { rs: r(10) },
            Instruction::Ret,
            Instruction::Alloc {
                rd: r(1),
                size: r(2),
            },
            Instruction::Free { rs: r(1) },
            Instruction::Lock { rs: r(11) },
            Instruction::Unlock { rs: r(11) },
            Instruction::Recv {
                base: r(1),
                len: r(2),
            },
            Instruction::Syscall { num: 7 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in sample_instructions() {
            let decoded = Instruction::decode(inst.encode()).expect("decodes");
            assert_eq!(decoded, inst, "round trip failed for {inst}");
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let err = Instruction::decode([0xff, 0, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, DecodeInstructionError::BadOpcode(0xff));
    }

    #[test]
    fn decode_rejects_bad_register() {
        // movi with register 16.
        let err = Instruction::decode([0x02, 16, 0, 0, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, DecodeInstructionError::BadRegister(16));
    }

    #[test]
    fn decode_rejects_bad_width() {
        let err = Instruction::decode([0x06, 1, 2, 9, 0, 0, 0, 0]).unwrap_err();
        assert_eq!(err, DecodeInstructionError::BadField("width", 9));
    }

    #[test]
    fn alu_ops_round_trip_through_codes() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_code(op.code()), Some(op));
        }
        assert_eq!(AluOp::from_code(10), None);
    }

    #[test]
    fn cond_eval_matches_semantics() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(u64::MAX, 0), "-1 < 0 signed");
        assert!(Cond::Ge.eval(0, u64::MAX), "0 >= -1 signed");
    }

    #[test]
    fn width_bytes_round_trip() {
        for w in Width::ALL {
            assert_eq!(Width::from_bytes(w.bytes()), Some(w));
        }
        assert_eq!(Width::from_bytes(3), None);
    }

    #[test]
    fn inputs_and_outputs_reported() {
        let inst = Instruction::Store {
            src: r(3),
            base: r(4),
            offset: 0,
            width: Width::B1,
        };
        assert_eq!(inst.inputs(), [Some(r(3)), Some(r(4))]);
        assert_eq!(inst.output(), None);

        let inst = Instruction::Load {
            rd: r(5),
            base: r(6),
            offset: 0,
            width: Width::B1,
        };
        assert_eq!(inst.inputs(), [Some(r(6)), None]);
        assert_eq!(inst.output(), Some(r(5)));
    }

    #[test]
    fn control_and_memory_classification() {
        assert!(Instruction::Ret.is_control());
        assert!(!Instruction::Nop.is_control());
        assert!(Instruction::Load {
            rd: r(1),
            base: r(2),
            offset: 0,
            width: Width::B1
        }
        .is_memory());
        assert!(!Instruction::Halt.is_memory());
    }

    #[test]
    fn display_formats_reasonably() {
        let inst = Instruction::Load {
            rd: r(1),
            base: r(2),
            offset: -8,
            width: Width::B4,
        };
        assert_eq!(inst.to_string(), "load.4 r1, [r2-8]");
        let inst = Instruction::Alu {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
        };
        assert_eq!(inst.to_string(), "add r1, r2, r3");
    }
}
