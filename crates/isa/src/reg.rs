//! General-purpose register names.

use std::fmt;

/// One of the sixteen general-purpose registers `r0`–`r15`.
///
/// Two registers have a fixed role enforced by the CPU model:
///
/// * [`Reg::ZERO`] (`r0`) always reads as zero and ignores writes, like the
///   RISC-V `x0` register.
/// * [`Reg::SP`] (`r15`) is initialised to the top of the per-thread stack.
///
/// # Examples
///
/// ```
/// use lba_isa::Reg;
///
/// let reg = Reg::new(3);
/// assert_eq!(reg.index(), 3);
/// assert_eq!(reg.to_string(), "r3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// The hard-wired zero register (`r0`).
    pub const ZERO: Reg = Reg(0);

    /// The stack-pointer register (`r15`).
    pub const SP: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < Self::COUNT,
            "register index {index} out of range (0..16)"
        );
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < Self::COUNT).then_some(Reg(index))
    }

    /// The register's index in `0..16`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The register's index as the raw byte used in instruction encodings.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Shorthand constructor used heavily by workload generators.
///
/// # Panics
///
/// Panics if `index >= 16`.
///
/// # Examples
///
/// ```
/// use lba_isa::{r, Reg};
/// assert_eq!(r(5), Reg::new(5));
/// ```
#[must_use]
pub fn r(index: u8) -> Reg {
    Reg::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..16 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert_eq!(Reg::try_new(16), None);
        assert_eq!(Reg::try_new(15), Some(Reg::SP));
    }

    #[test]
    fn display_is_r_prefixed() {
        assert_eq!(Reg::new(0).to_string(), "r0");
        assert_eq!(Reg::new(15).to_string(), "r15");
    }

    #[test]
    fn constants_have_expected_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::SP.index(), 15);
    }
}
