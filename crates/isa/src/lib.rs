//! MiniISA: the instruction set executed by the LBA reproduction.
//!
//! The paper monitors x86 binaries running on Simics. This crate provides the
//! laptop-scale substitute: a small RISC-flavoured instruction set with
//! first-class *runtime events* (`alloc`, `free`, `lock`, `unlock`, `recv`,
//! `syscall`) so that the log capture hardware can observe the same event
//! stream the paper's lifeguards consume (the paper obtained these events by
//! instrumenting libc; see DESIGN.md §2).
//!
//! The crate contains:
//!
//! * [`Reg`] / [`AluOp`] / [`Cond`] / [`Width`] — operand vocabulary,
//! * [`Instruction`] — the instruction enum with a fixed 8-byte binary
//!   encoding ([`Instruction::encode`] / [`Instruction::decode`]),
//! * [`Program`] — a validated code image plus data segments, entry points
//!   and an external input stream,
//! * [`Assembler`] — a builder for constructing programs in Rust,
//! * [`parse_program`] — a line-oriented textual assembler.
//!
//! # Examples
//!
//! ```
//! use lba_isa::{Assembler, Reg};
//!
//! let mut asm = Assembler::new("count");
//! let r1 = Reg::new(1);
//! let done = asm.label("done");
//! let top = asm.label("top");
//! asm.movi(r1, 3);
//! asm.bind(top);
//! asm.subi(r1, r1, 1);
//! asm.bne(r1, Reg::ZERO, top);
//! asm.bind(done);
//! asm.halt();
//! let program = asm.finish().expect("label resolution succeeds");
//! assert_eq!(program.len(), 4);
//! ```

mod builder;
mod inst;
mod parse;
mod program;
mod reg;

pub use builder::{AsmError, Assembler, Label};
pub use inst::{AluOp, Cond, DecodeInstructionError, Instruction, Width};
pub use parse::{parse_program, ParseProgramError};
pub use program::{DataSegment, Program, ProgramError, CODE_BASE, INST_BYTES};
pub use reg::{r, Reg};
