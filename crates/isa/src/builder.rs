//! `Assembler`: a builder for constructing [`Program`]s in Rust.

use std::fmt;

use crate::inst::{AluOp, Cond, Instruction, Width};
use crate::program::{DataSegment, Program, ProgramError, CODE_BASE, INST_BYTES};
use crate::reg::Reg;

/// A forward-referenceable code label created by [`Assembler::label`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced by [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with [`Assembler::bind`].
    UnboundLabel(String),
    /// A label was bound twice.
    ReboundLabel(String),
    /// The finished program failed validation.
    Program(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(name) => write!(f, "label `{name}` was never bound"),
            AsmError::ReboundLabel(name) => write!(f, "label `{name}` bound more than once"),
            AsmError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> Self {
        AsmError::Program(e)
    }
}

/// Pending instruction: either final, or waiting on a label address.
#[derive(Debug, Clone)]
enum Pending {
    Done(Instruction),
    Branch {
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        label: Label,
    },
    Jump {
        label: Label,
    },
    Call {
        label: Label,
    },
    /// `lea rd, label`: materialise a code address into a register
    /// (used to build jump tables and function-pointer slots).
    Lea {
        rd: Reg,
        label: Label,
    },
}

/// Builder for [`Program`]s.
///
/// Instruction methods append one instruction each and return `&mut self`
/// for chaining. Control flow uses [`Label`]s which may be referenced before
/// they are bound.
///
/// # Examples
///
/// ```
/// use lba_isa::{Assembler, Reg};
///
/// let mut asm = Assembler::new("demo");
/// let end = asm.label("end");
/// asm.movi(Reg::new(1), 5);
/// asm.beq(Reg::new(1), Reg::new(1), end);
/// asm.nop(); // skipped
/// asm.bind(end);
/// asm.halt();
/// let program = asm.finish()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), lba_isa::AsmError>(())
/// ```
#[derive(Debug)]
pub struct Assembler {
    name: String,
    insts: Vec<Pending>,
    labels: Vec<(String, Option<usize>)>,
    entries: Vec<Label>,
    data: Vec<DataSegment>,
    input: Vec<u8>,
}

impl Assembler {
    /// Creates an empty assembler for a program called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Assembler {
            name: name.into(),
            insts: Vec::new(),
            labels: Vec::new(),
            entries: Vec::new(),
            data: Vec::new(),
            input: Vec::new(),
        }
    }

    /// Replaces the program name (used by the text assembler's `.name`).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Creates a fresh, unbound label. `name` is used in error messages only.
    pub fn label(&mut self, name: impl Into<String>) -> Label {
        self.labels.push((name.into(), None));
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the address of the *next* emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was created by a different assembler.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0].1;
        // Rebinding is surfaced at finish() so builder code can stay fluent.
        if slot.is_none() {
            *slot = Some(self.insts.len());
        } else {
            self.labels[label.0].0.push('\u{0}'); // marker: rebound
        }
        self
    }

    /// Creates a label and immediately binds it here.
    pub fn here(&mut self, name: impl Into<String>) -> Label {
        let l = self.label(name);
        self.bind(l);
        l
    }

    /// Declares `label` as a thread entry point. Each entry starts one
    /// thread; the first entry is thread 0.
    pub fn entry(&mut self, label: Label) -> &mut Self {
        self.entries.push(label);
        self
    }

    /// Adds an initialised data segment.
    pub fn data(&mut self, addr: u64, bytes: impl Into<Vec<u8>>) -> &mut Self {
        self.data.push(DataSegment {
            addr,
            bytes: bytes.into(),
        });
        self
    }

    /// Appends bytes to the external input stream consumed by `recv`.
    pub fn input(&mut self, bytes: impl AsRef<[u8]>) -> &mut Self {
        self.input.extend_from_slice(bytes.as_ref());
        self
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether any instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    fn push(&mut self, inst: Instruction) -> &mut Self {
        self.insts.push(Pending::Done(inst));
        self
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instruction::Nop)
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instruction::Halt)
    }

    /// Emits `movi rd, imm`.
    pub fn movi(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Instruction::MovImm { rd, imm })
    }

    /// Emits `mov rd, rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Instruction::Mov { rd, rs })
    }

    /// Emits a three-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instruction::Alu { op, rd, rs1, rs2 })
    }

    /// Emits a register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Instruction::AluImm { op, rd, rs1, imm })
    }

    /// Emits `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// Emits `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// Emits `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }

    /// Emits `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }

    /// Emits `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::And, rd, rs1, rs2)
    }

    /// Emits `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Or, rd, rs1, rs2)
    }

    /// Emits `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    /// Emits `subi rd, rs1, imm`.
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Sub, rd, rs1, imm)
    }

    /// Emits `muli rd, rs1, imm`.
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Mul, rd, rs1, imm)
    }

    /// Emits `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::And, rd, rs1, imm)
    }

    /// Emits `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Xor, rd, rs1, imm)
    }

    /// Emits `shli rd, rs1, imm`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Shl, rd, rs1, imm)
    }

    /// Emits `shri rd, rs1, imm`.
    pub fn shri(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Shr, rd, rs1, imm)
    }

    /// Emits `load.<width> rd, [base+offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64, width: Width) -> &mut Self {
        self.push(Instruction::Load {
            rd,
            base,
            offset,
            width,
        })
    }

    /// Emits `store.<width> src, [base+offset]`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64, width: Width) -> &mut Self {
        self.push(Instruction::Store {
            src,
            base,
            offset,
            width,
        })
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.insts.push(Pending::Branch {
            cond,
            rs1,
            rs2,
            label,
        });
        self
    }

    /// Emits `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(Cond::Eq, rs1, rs2, label)
    }

    /// Emits `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(Cond::Ne, rs1, rs2, label)
    }

    /// Emits `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(Cond::Lt, rs1, rs2, label)
    }

    /// Emits `bge rs1, rs2, label` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch(Cond::Ge, rs1, rs2, label)
    }

    /// Emits `jmp label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.insts.push(Pending::Jump { label });
        self
    }

    /// Emits `jmpr rs` (indirect jump).
    pub fn jump_reg(&mut self, rs: Reg) -> &mut Self {
        self.push(Instruction::JumpReg { rs })
    }

    /// Emits `call label`.
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.insts.push(Pending::Call { label });
        self
    }

    /// Emits `callr rs` (indirect call).
    pub fn call_reg(&mut self, rs: Reg) -> &mut Self {
        self.push(Instruction::CallReg { rs })
    }

    /// Emits `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instruction::Ret)
    }

    /// Emits `lea rd, label` — materialises the label's code address.
    pub fn lea(&mut self, rd: Reg, label: Label) -> &mut Self {
        self.insts.push(Pending::Lea { rd, label });
        self
    }

    /// Emits `alloc rd, size_reg`.
    pub fn alloc(&mut self, rd: Reg, size: Reg) -> &mut Self {
        self.push(Instruction::Alloc { rd, size })
    }

    /// Emits `free rs`.
    pub fn free(&mut self, rs: Reg) -> &mut Self {
        self.push(Instruction::Free { rs })
    }

    /// Emits `lock rs`.
    pub fn lock(&mut self, rs: Reg) -> &mut Self {
        self.push(Instruction::Lock { rs })
    }

    /// Emits `unlock rs`.
    pub fn unlock(&mut self, rs: Reg) -> &mut Self {
        self.push(Instruction::Unlock { rs })
    }

    /// Emits `recv base, len`.
    pub fn recv(&mut self, base: Reg, len: Reg) -> &mut Self {
        self.push(Instruction::Recv { base, len })
    }

    /// Emits `syscall num`.
    pub fn syscall(&mut self, num: u16) -> &mut Self {
        self.push(Instruction::Syscall { num })
    }

    fn resolve(&self, label: Label) -> Result<u64, AsmError> {
        let (name, slot) = &self.labels[label.0];
        if name.ends_with('\u{0}') {
            return Err(AsmError::ReboundLabel(
                name.trim_end_matches('\u{0}').to_string(),
            ));
        }
        match slot {
            Some(idx) => Ok(CODE_BASE + *idx as u64 * INST_BYTES),
            None => Err(AsmError::UnboundLabel(name.clone())),
        }
    }

    /// Resolves all labels and validates the program.
    ///
    /// If no entry point was declared with [`Assembler::entry`], the first
    /// instruction becomes the single entry.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for unbound/rebound labels or validation
    /// failures (see [`ProgramError`]).
    pub fn finish(self) -> Result<Program, AsmError> {
        let mut code = Vec::with_capacity(self.insts.len());
        for pending in &self.insts {
            let inst = match *pending {
                Pending::Done(inst) => inst,
                Pending::Branch {
                    cond,
                    rs1,
                    rs2,
                    label,
                } => Instruction::Branch {
                    cond,
                    rs1,
                    rs2,
                    target: self.resolve(label)?,
                },
                Pending::Jump { label } => Instruction::Jump {
                    target: self.resolve(label)?,
                },
                Pending::Call { label } => Instruction::Call {
                    target: self.resolve(label)?,
                },
                Pending::Lea { rd, label } => Instruction::MovImm {
                    rd,
                    imm: self.resolve(label)? as i64,
                },
            };
            code.push(inst);
        }
        let entries = if self.entries.is_empty() {
            vec![CODE_BASE]
        } else {
            self.entries
                .iter()
                .map(|&l| self.resolve(l))
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(Program::new(
            self.name, code, entries, self.data, self.input,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    #[test]
    fn forward_label_resolves() {
        let mut asm = Assembler::new("t");
        let end = asm.label("end");
        asm.jump(end);
        asm.nop();
        asm.bind(end);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::Jump {
                target: CODE_BASE + 2 * INST_BYTES
            }
        );
    }

    #[test]
    fn unbound_label_is_error() {
        let mut asm = Assembler::new("t");
        let nowhere = asm.label("nowhere");
        asm.jump(nowhere);
        asm.halt();
        assert_eq!(
            asm.finish().unwrap_err(),
            AsmError::UnboundLabel("nowhere".into())
        );
    }

    #[test]
    fn rebound_label_is_error() {
        let mut asm = Assembler::new("t");
        let l = asm.label("twice");
        asm.bind(l);
        asm.nop();
        asm.bind(l);
        asm.jump(l);
        asm.halt();
        assert_eq!(
            asm.finish().unwrap_err(),
            AsmError::ReboundLabel("twice".into())
        );
    }

    #[test]
    fn default_entry_is_first_instruction() {
        let mut asm = Assembler::new("t");
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.entries(), &[CODE_BASE]);
    }

    #[test]
    fn multiple_entries_for_threads() {
        let mut asm = Assembler::new("t");
        let t0 = asm.here("t0");
        asm.entry(t0);
        asm.halt();
        let t1 = asm.here("t1");
        asm.entry(t1);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.entries().len(), 2);
        assert_eq!(p.entries()[1], CODE_BASE + INST_BYTES);
    }

    #[test]
    fn lea_materialises_label_address() {
        let mut asm = Assembler::new("t");
        let f = asm.label("f");
        asm.lea(r(1), f);
        asm.halt();
        asm.bind(f);
        asm.ret();
        let p = asm.finish().unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::MovImm {
                rd: r(1),
                imm: (CODE_BASE + 2 * INST_BYTES) as i64
            }
        );
    }

    #[test]
    fn data_and_input_carried_through() {
        let mut asm = Assembler::new("t");
        asm.data(0x10_0000, vec![1, 2, 3]);
        asm.input([9, 9]);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.data()[0].bytes, vec![1, 2, 3]);
        assert_eq!(p.input(), &[9, 9]);
    }

    #[test]
    fn sugar_methods_emit_expected_instructions() {
        let mut asm = Assembler::new("t");
        asm.addi(r(1), r(2), 5).shri(r(3), r(4), 2).halt();
        let p = asm.finish().unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::AluImm {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(2),
                imm: 5
            }
        );
        assert_eq!(
            p.code()[1],
            Instruction::AluImm {
                op: AluOp::Shr,
                rd: r(3),
                rs1: r(4),
                imm: 2
            }
        );
    }
}
