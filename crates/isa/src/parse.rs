//! A line-oriented textual assembler for MiniISA.
//!
//! Grammar (one item per line; `;` and `#` start comments):
//!
//! ```text
//! .name NAME                  ; program name
//! .entry LABEL                ; declare a thread entry point
//! .data ADDR B0 B1 ...        ; initialised bytes at ADDR (hex or decimal)
//! .input "text"               ; append literal bytes to the input stream
//! .input B0 B1 ...            ; append raw bytes to the input stream
//! LABEL:                      ; bind a label
//! mnemonic operands           ; one instruction
//! ```
//!
//! Supported mnemonics: `nop halt movi mov add sub mul div and or xor shl
//! shr slt addi subi muli divi andi ori xori shli shri slti load.W store.W
//! beq bne blt bge jmp jmpr call callr ret lea alloc free lock unlock recv
//! syscall` with `W ∈ {1,2,4,8}`.

use std::collections::HashMap;
use std::fmt;

use crate::builder::{AsmError, Assembler, Label};
use crate::inst::{AluOp, Cond, Width};
use crate::reg::Reg;

/// Error produced by [`parse_program`], carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    line: usize,
    message: String,
}

impl ParseProgramError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseProgramError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line the error refers to (0 for whole-program
    /// errors such as unbound labels).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseProgramError {}

impl From<AsmError> for ParseProgramError {
    fn from(e: AsmError) -> Self {
        ParseProgramError::new(0, e.to_string())
    }
}

struct Parser {
    asm: Assembler,
    labels: HashMap<String, Label>,
}

impl Parser {
    fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.asm.label(name);
        self.labels.insert(name.to_string(), l);
        l
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseProgramError> {
    let rest = tok
        .strip_prefix('r')
        .ok_or_else(|| ParseProgramError::new(line, format!("expected register, got `{tok}`")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| ParseProgramError::new(line, format!("bad register `{tok}`")))?;
    Reg::try_new(idx)
        .ok_or_else(|| ParseProgramError::new(line, format!("register `{tok}` out of range")))
}

fn parse_int(tok: &str, line: usize) -> Result<i64, ParseProgramError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| ParseProgramError::new(line, format!("bad integer `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// Splits `[rX+off]` / `[rX-off]` / `[rX]` into base register and offset.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Reg, i64), ParseProgramError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ParseProgramError::new(line, format!("expected [reg+off], got `{tok}`")))?;
    if let Some(pos) = inner.rfind(['+', '-']) {
        if pos > 0 {
            let base = parse_reg(&inner[..pos], line)?;
            let sign = if inner.as_bytes()[pos] == b'-' { -1 } else { 1 };
            let off = parse_int(&inner[pos + 1..], line)?;
            return Ok((base, sign * off));
        }
    }
    Ok((parse_reg(inner, line)?, 0))
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "slt" => AluOp::Slt,
        _ => return None,
    })
}

fn branch_cond(mnemonic: &str) -> Option<Cond> {
    Some(match mnemonic {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        _ => return None,
    })
}

/// Parses a textual MiniISA program.
///
/// # Errors
///
/// Returns [`ParseProgramError`] with the offending line number on syntax
/// errors, and line 0 for whole-program failures (unbound labels, program
/// validation).
///
/// # Examples
///
/// ```
/// let program = lba_isa::parse_program(
///     "
///     .name loop3
///     movi r1, 3
///     top:
///         subi r1, r1, 1
///         bne r1, r0, top
///     halt
///     ",
/// )?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), lba_isa::ParseProgramError>(())
/// ```
pub fn parse_program(source: &str) -> Result<crate::Program, ParseProgramError> {
    let mut p = Parser {
        asm: Assembler::new("anonymous"),
        labels: HashMap::new(),
    };
    let mut name: Option<String> = None;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        if let Some(rest) = text.strip_prefix(".name") {
            name = Some(rest.trim().to_string());
            continue;
        }
        if let Some(rest) = text.strip_prefix(".entry") {
            let l = p.label(rest.trim());
            p.asm.entry(l);
            continue;
        }
        if let Some(rest) = text.strip_prefix(".data") {
            let mut toks = rest.split_whitespace();
            let addr = toks
                .next()
                .ok_or_else(|| ParseProgramError::new(line, ".data needs an address"))?;
            let addr = parse_int(addr, line)? as u64;
            let bytes: Result<Vec<u8>, _> = toks
                .map(|t| {
                    parse_int(t, line).and_then(|v| {
                        u8::try_from(v).map_err(|_| {
                            ParseProgramError::new(line, format!("byte `{t}` out of range"))
                        })
                    })
                })
                .collect();
            p.asm.data(addr, bytes?);
            continue;
        }
        if let Some(rest) = text.strip_prefix(".input") {
            let rest = rest.trim();
            if let Some(quoted) = rest.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                p.asm.input(quoted.as_bytes());
            } else {
                let bytes: Result<Vec<u8>, _> = rest
                    .split_whitespace()
                    .map(|t| {
                        parse_int(t, line).and_then(|v| {
                            u8::try_from(v).map_err(|_| {
                                ParseProgramError::new(line, format!("byte `{t}` out of range"))
                            })
                        })
                    })
                    .collect();
                p.asm.input(bytes?);
            }
            continue;
        }
        if text.starts_with('.') {
            return Err(ParseProgramError::new(
                line,
                format!("unknown directive `{text}`"),
            ));
        }

        if let Some(label_name) = text.strip_suffix(':') {
            let l = p.label(label_name.trim());
            p.asm.bind(l);
            continue;
        }

        parse_instruction(&mut p, text, line)?;
    }

    if let Some(name) = name {
        p.asm.set_name(name);
    }
    Ok(p.asm.finish()?)
}

fn parse_instruction(p: &mut Parser, text: &str, line: usize) -> Result<(), ParseProgramError> {
    let mut parts = text.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().expect("non-empty line has a first token");
    let rest = parts.next().unwrap_or("");
    let ops: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();

    let need = |n: usize| -> Result<(), ParseProgramError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(ParseProgramError::new(
                line,
                format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
            ))
        }
    };

    match mnemonic {
        "nop" => {
            need(0)?;
            p.asm.nop();
        }
        "halt" => {
            need(0)?;
            p.asm.halt();
        }
        "movi" => {
            need(2)?;
            let rd = parse_reg(ops[0], line)?;
            let imm = parse_int(ops[1], line)?;
            p.asm.movi(rd, imm);
        }
        "mov" => {
            need(2)?;
            p.asm
                .mov(parse_reg(ops[0], line)?, parse_reg(ops[1], line)?);
        }
        "ret" => {
            need(0)?;
            p.asm.ret();
        }
        "jmpr" => {
            need(1)?;
            p.asm.jump_reg(parse_reg(ops[0], line)?);
        }
        "callr" => {
            need(1)?;
            p.asm.call_reg(parse_reg(ops[0], line)?);
        }
        "jmp" => {
            need(1)?;
            let l = p.label(ops[0]);
            p.asm.jump(l);
        }
        "call" => {
            need(1)?;
            let l = p.label(ops[0]);
            p.asm.call(l);
        }
        "lea" => {
            need(2)?;
            let rd = parse_reg(ops[0], line)?;
            let l = p.label(ops[1]);
            p.asm.lea(rd, l);
        }
        "alloc" => {
            need(2)?;
            p.asm
                .alloc(parse_reg(ops[0], line)?, parse_reg(ops[1], line)?);
        }
        "free" => {
            need(1)?;
            p.asm.free(parse_reg(ops[0], line)?);
        }
        "lock" => {
            need(1)?;
            p.asm.lock(parse_reg(ops[0], line)?);
        }
        "unlock" => {
            need(1)?;
            p.asm.unlock(parse_reg(ops[0], line)?);
        }
        "recv" => {
            need(2)?;
            p.asm
                .recv(parse_reg(ops[0], line)?, parse_reg(ops[1], line)?);
        }
        "syscall" => {
            need(1)?;
            let num = parse_int(ops[0], line)?;
            let num = u16::try_from(num)
                .map_err(|_| ParseProgramError::new(line, "syscall number out of range"))?;
            p.asm.syscall(num);
        }
        m if branch_cond(m).is_some() => {
            need(3)?;
            let cond = branch_cond(m).expect("checked above");
            let rs1 = parse_reg(ops[0], line)?;
            let rs2 = parse_reg(ops[1], line)?;
            let l = p.label(ops[2]);
            p.asm.branch(cond, rs1, rs2, l);
        }
        m if m.starts_with("load.") || m.starts_with("store.") => {
            need(2)?;
            let (_, w) = m.split_once('.').expect("contains dot");
            let width = w
                .parse::<u32>()
                .ok()
                .and_then(Width::from_bytes)
                .ok_or_else(|| ParseProgramError::new(line, format!("bad width in `{m}`")))?;
            let reg = parse_reg(ops[0], line)?;
            let (base, off) = parse_mem_operand(ops[1], line)?;
            if m.starts_with("load.") {
                p.asm.load(reg, base, off, width);
            } else {
                p.asm.store(reg, base, off, width);
            }
        }
        m => {
            // Register-immediate ALU forms end in `i` (addi, shli, ...).
            if let Some(op) = m.strip_suffix('i').and_then(alu_op) {
                need(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let imm = parse_int(ops[2], line)?;
                p.asm.alui(op, rd, rs1, imm);
            } else if let Some(op) = alu_op(m) {
                need(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let rs2 = parse_reg(ops[2], line)?;
                p.asm.alu(op, rd, rs1, rs2);
            } else {
                return Err(ParseProgramError::new(
                    line,
                    format!("unknown mnemonic `{m}`"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Instruction;
    use crate::program::CODE_BASE;
    use crate::reg::r;

    #[test]
    fn parses_basic_loop() {
        let p = parse_program(
            "
            .name loop
            movi r1, 4
            top:
              subi r1, r1, 1
              bne r1, r0, top
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.name(), "loop");
        assert_eq!(p.len(), 4);
        assert!(
            matches!(p.code()[2], Instruction::Branch { target, .. } if target == CODE_BASE + 8)
        );
    }

    #[test]
    fn parses_memory_operands() {
        let p =
            parse_program("load.4 r1, [r2+8]\nstore.8 r3, [r4-16]\nload.1 r5, [r6]\nhalt").unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::Load {
                rd: r(1),
                base: r(2),
                offset: 8,
                width: Width::B4
            }
        );
        assert_eq!(
            p.code()[1],
            Instruction::Store {
                src: r(3),
                base: r(4),
                offset: -16,
                width: Width::B8
            }
        );
        assert_eq!(
            p.code()[2],
            Instruction::Load {
                rd: r(5),
                base: r(6),
                offset: 0,
                width: Width::B1
            }
        );
    }

    #[test]
    fn parses_directives() {
        let p = parse_program(
            "
            .name d
            .data 0x100000 1 2 0xff
            .input \"hi\"
            .input 3 4
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.data()[0].addr, 0x10_0000);
        assert_eq!(p.data()[0].bytes, vec![1, 2, 0xff]);
        assert_eq!(p.input(), b"hi\x03\x04");
    }

    #[test]
    fn comments_are_ignored() {
        let p = parse_program("; leading comment\nmovi r1, 1 # trailing\nhalt").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_program("nop\nbogus r1\nhalt").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse_program(".wat 3\nhalt").unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn wrong_operand_count_rejected() {
        let err = parse_program("movi r1\nhalt").unwrap_err();
        assert!(err.to_string().contains("expects 2"));
    }

    #[test]
    fn unbound_label_reported_at_finish() {
        let err = parse_program("jmp nowhere\nhalt").unwrap_err();
        assert_eq!(err.line(), 0);
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn entry_directive_sets_entries() {
        let p = parse_program(
            "
            .entry t0
            .entry t1
            t0: halt
            t1: halt
            ",
        );
        // `t0: halt` on one line is not supported (label must stand alone).
        assert!(p.is_err());

        let p = parse_program(
            "
            .entry t0
            .entry t1
            t0:
              halt
            t1:
              halt
            ",
        )
        .unwrap();
        assert_eq!(p.entries().len(), 2);
    }

    #[test]
    fn indirect_jump_and_lea() {
        let p = parse_program(
            "
            lea r1, target
            jmpr r1
            target:
              halt
            ",
        )
        .unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::MovImm {
                rd: r(1),
                imm: (CODE_BASE + 16) as i64
            }
        );
        assert_eq!(p.code()[1], Instruction::JumpReg { rs: r(1) });
    }
}
