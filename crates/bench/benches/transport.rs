//! Live-channel throughput: the framed, compressed transport versus the
//! legacy per-record raw SPSC path it replaced.
//!
//! The framed channel amortises one queue operation over
//! `records_per_frame` records and ships < 1 B/record on the wire; the
//! per-record path pays a queue operation (and 25 raw bytes of struct)
//! for every record. At batch sizes ≥ 64 the framed channel should meet or
//! beat the raw baseline in records/second.

use std::thread;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use lba_compress::FrameConfig;
use lba_lifeguard::ShadowMemory;
use lba_record::EventRecord;
use lba_transport::live;

const RECORDS: u64 = 120_000;

fn synthetic_stream() -> Vec<EventRecord> {
    // The hot-loop pattern: alu, strided load, taken branch.
    let mut out = Vec::with_capacity(RECORDS as usize);
    for i in 0..RECORDS / 3 + 1 {
        out.push(EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(1)));
        out.push(EventRecord::load(
            0x1008,
            0,
            Some(3),
            Some(4),
            0x4000_0000 + i * 8,
            8,
        ));
        out.push(EventRecord {
            pc: 0x1010,
            kind: lba_record::EventKind::Branch,
            tid: 0,
            in1: Some(1),
            in2: Some(0),
            out: None,
            addr: 0x1000,
            size: 1,
        });
    }
    out.truncate(RECORDS as usize);
    out
}

/// Pumps the stream through the legacy per-record channel; returns the
/// consumer-side record count.
fn pump_per_record(records: &[EventRecord]) -> u64 {
    let (tx, rx) = live::channel(4096);
    thread::scope(|scope| {
        scope.spawn(move || {
            for rec in records {
                tx.send(*rec);
            }
        });
        let mut seen = 0u64;
        while rx.recv().is_some() {
            seen += 1;
        }
        seen
    })
}

/// Pumps the stream through the framed channel at `records_per_frame`;
/// returns the consumer-side record count.
fn pump_framed(records: &[EventRecord], records_per_frame: usize) -> u64 {
    let (mut tx, mut rx) = live::frame_channel(
        256,
        FrameConfig {
            records_per_frame,
            compress: true,
        },
    );
    thread::scope(|scope| {
        scope.spawn(move || {
            for rec in records {
                tx.push(rec);
            }
        });
        let mut seen = 0u64;
        while rx.recv_ref().is_some() {
            seen += 1;
        }
        seen
    })
}

fn bench_transport(c: &mut Criterion) {
    let records = synthetic_stream();

    // Best-of-3 sanity comparison, printed alongside the samples (the
    // min-time estimator is robust to scheduler noise): the framed
    // channel must not lose to the raw path at batch >= 64.
    for (label, pump) in [
        (
            "per-record raw",
            Box::new(|| pump_per_record(&records)) as Box<dyn Fn() -> u64>,
        ),
        ("framed x64", Box::new(|| pump_framed(&records, 64))),
        ("framed x256", Box::new(|| pump_framed(&records, 256))),
    ] {
        let mut best = f64::INFINITY;
        for _ in 0..if criterion::is_test_mode() { 1 } else { 3 } {
            let start = std::time::Instant::now();
            let seen = pump();
            assert_eq!(seen, RECORDS);
            best = best.min(start.elapsed().as_secs_f64());
        }
        println!("{label:>16}: {:.1} Mrecords/s", RECORDS as f64 / best / 1e6);
    }

    let mut group = c.benchmark_group("live_transport");
    group
        .sample_size(10)
        .throughput(Throughput::Elements(RECORDS));
    group.bench_function("per_record_raw", |b| b.iter(|| pump_per_record(&records)));
    group.bench_function("framed_compressed_x64", |b| {
        b.iter(|| pump_framed(&records, 64))
    });
    group.bench_function("framed_compressed_x256", |b| {
        b.iter(|| pump_framed(&records, 256))
    });
    group.finish();

    bench_shadow_range(c);
}

/// The shadow-range fast path behind TaintCheck's syscall-argument sweep:
/// `range_any_nonzero` answers "any taint in this buffer?" from per-page
/// nonzero counters — clean pages are dismissed with one counter load —
/// where the general `range_is(.., 0)` must scan every byte to prove the
/// same thing. TaintCheck's syscall handler asks this question over a
/// mostly-clean heap on every syscall, so the sweep sits on the epoch
/// workers' critical path.
fn bench_shadow_range(c: &mut Criterion) {
    const SPAN: u64 = 1 << 20;
    let mut shadow: ShadowMemory<u8> = ShadowMemory::new();
    // A mostly-clean megabyte: touch every page so residency is equal for
    // both paths, then taint a single late byte.
    shadow.set_range(0, SPAN, 0);
    shadow.set(SPAN - 17, 1);

    let mut group = c.benchmark_group("shadow_range");
    group.sample_size(10).throughput(Throughput::Bytes(SPAN));
    group.bench_function("range_is_zero_scan", |b| {
        b.iter(|| !shadow.range_is(0, SPAN, 0))
    });
    group.bench_function("range_any_nonzero_counters", |b| {
        b.iter(|| shadow.range_any_nonzero(0, SPAN))
    });
    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
