//! Substrate micro-benchmarks: the building blocks' own throughput
//! (simulator speed, not paper metrics).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use lba::{run_unmonitored, SystemConfig};
use lba_workloads::Benchmark;

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);

    // Raw machine throughput (instructions simulated per second).
    let program = Benchmark::Bc.build();
    let insts = {
        let report = run_unmonitored(&program, &SystemConfig::default()).expect("runs");
        report.trace.instructions()
    };
    group.throughput(Throughput::Elements(insts));
    group.bench_function("machine_steps_bc", |b| {
        b.iter(|| run_unmonitored(&program, &SystemConfig::default()).expect("runs"))
    });

    // Cache-hostile case.
    let mcf = Benchmark::Mcf.build();
    group.bench_function("machine_steps_mcf", |b| {
        b.iter(|| run_unmonitored(&mcf, &SystemConfig::default()).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
