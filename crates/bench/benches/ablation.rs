//! Ablation benchmarks: decoupling, buffer sizing, compression on/off,
//! filtering and parallel lifeguards. Prints the ablation tables, then
//! times the most interesting configurations.

use criterion::{criterion_group, criterion_main, Criterion};

use lba::experiment;
use lba::parallel::run_lba_parallel;
use lba::{run_lba, LifeguardKind, SystemConfig};
use lba_bench as render;
use lba_workloads::Benchmark;

fn print_tables() {
    let config = SystemConfig::default();
    println!(
        "{}",
        render::render_decoupling(
            &experiment::ablation_decoupling(&config, 1).expect("ablation A"),
        )
    );
    println!(
        "{}",
        render::render_buffer(&experiment::ablation_buffer(&config, 1).expect("ablation B"))
    );
    println!(
        "{}",
        render::render_compression_ablation(
            &experiment::ablation_compression(&config, 1).expect("ablation C"),
        )
    );
    println!(
        "{}",
        render::render_filtering(&experiment::ext_filtering(&config, 1).expect("filtering"))
    );
    println!(
        "{}",
        render::render_parallel(&experiment::ext_parallel(&config, 1).expect("parallel"))
    );
}

fn bench_ablations(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    let program = Benchmark::Gzip.build();
    for (label, decoupled) in [("decoupled", true), ("lockstep", false)] {
        let mut config = SystemConfig::default();
        config.log.decoupled = decoupled;
        group.bench_function(format!("dispatch/{label}"), |b| {
            b.iter(|| {
                let mut lg = LifeguardKind::AddrCheck.make_lba();
                run_lba(&program, lg.as_mut(), &config).expect("runs")
            })
        });
    }

    let zchaff = Benchmark::Zchaff.build();
    for shards in [1usize, 4] {
        let config = SystemConfig::default();
        group.bench_function(format!("parallel/{shards}_shards"), |b| {
            b.iter(|| {
                run_lba_parallel(
                    &zchaff,
                    || LifeguardKind::LockSet.make_lba(),
                    shards,
                    &config,
                )
                .expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
