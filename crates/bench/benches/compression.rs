//! Compression benchmarks: the §2 "< 1 byte/instruction" table plus
//! compressor/decompressor throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use lba::experiment;
use lba::SystemConfig;
use lba_bench::render_compression;
use lba_compress::{BitReader, BitWriter, LogCompressor, LogDecompressor};
use lba_record::EventRecord;

fn synthetic_stream(n: u64) -> Vec<EventRecord> {
    // The hot-loop pattern: alu, strided load, taken branch.
    let mut out = Vec::with_capacity(n as usize * 3);
    for i in 0..n {
        out.push(EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(1)));
        out.push(EventRecord::load(
            0x1008,
            0,
            Some(3),
            Some(4),
            0x4000_0000 + i * 8,
            8,
        ));
        out.push(EventRecord {
            pc: 0x1010,
            kind: lba_record::EventKind::Branch,
            tid: 0,
            in1: Some(1),
            in2: Some(0),
            out: None,
            addr: 0x1000,
            size: 1,
        });
    }
    out
}

fn bench_compression(c: &mut Criterion) {
    println!(
        "{}",
        render_compression(
            &experiment::compression_table(&SystemConfig::default(), 1).expect("table"),
        )
    );

    let records = synthetic_stream(10_000);
    let mut group = c.benchmark_group("compression");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode_hot_loop", |b| {
        b.iter(|| {
            let mut compressor = LogCompressor::new();
            let mut writer = BitWriter::new();
            for rec in &records {
                compressor.encode(rec, &mut writer);
            }
            writer.len_bits()
        })
    });
    let bytes = {
        let mut compressor = LogCompressor::new();
        let mut writer = BitWriter::new();
        for rec in &records {
            compressor.encode(rec, &mut writer);
        }
        writer.into_bytes()
    };
    group.bench_function("decode_hot_loop", |b| {
        b.iter(|| {
            let mut decompressor = LogDecompressor::new();
            let mut reader = BitReader::new(&bytes);
            let mut last = 0;
            for _ in 0..records.len() {
                last = decompressor.decode(&mut reader).expect("decodes").pc;
            }
            last
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
