//! End-to-end pipeline throughput: events/sec through `run_lba` and
//! `run_live` for all four lifeguards, with the pre-batching per-record
//! consumption path (`LogConfig::batch_dispatch = false`) kept callable as
//! the baseline; the sharded `run_live_parallel` series across shard
//! counts for the lifeguards that support address interleaving; plus an
//! isolated consumption-path pair that contrasts `pop_record`+`deliver`
//! against `pop_frame`+`deliver_batch` directly.
//!
//! `cargo bench -p lba-bench --bench pipeline` prints a best-of-N summary
//! with the batched-over-per-record speedups before the Criterion samples;
//! `cargo bench -p lba-bench -- --test` runs everything once as a smoke
//! check (see the vendored criterion's test mode).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use lba::{
    run_lba, run_live, run_live_parallel, run_live_taint_parallel, run_taint_parallel, SystemConfig,
};
use lba_bench::pipeline::{self, PipelineRow, EPOCH_WORKER_COUNTS, SHARD_COUNTS};
use lba_workloads::Benchmark;

fn config(batched: bool) -> SystemConfig {
    let mut config = SystemConfig::default();
    config.log.batch_dispatch = batched;
    config
}

fn bench_pipeline(c: &mut Criterion) {
    let samples = if criterion::is_test_mode() { 1 } else { 5 };

    // Headline summary, printed before the Criterion samples: best-of-N
    // events/sec for every mode × lifeguard × path, with the
    // batched-over-per-record speedup per pair.
    let rows = pipeline::measure_pipeline(samples);
    println!("{}", pipeline::render_pipeline(&rows));

    let records: u64 = rows.iter().find(|r| r.records > 0).map_or(0, |r| r.records);
    let program = Benchmark::Gzip.build();

    let mut group = c.benchmark_group("pipeline");
    group
        .sample_size(samples)
        .throughput(Throughput::Elements(records));
    for PipelineRow {
        mode,
        lifeguard,
        batched,
        ..
    } in rows.iter().filter(|r| {
        (r.mode == "lba" || r.mode == "live")
            && r.window == 0
            && (r.batched || r.lifeguard == "addrcheck")
    }) {
        let id = format!(
            "{mode}_{lifeguard}_{}",
            if *batched { "batched" } else { "per_record" }
        );
        let make = pipeline::lifeguards()
            .into_iter()
            .find(|(name, _)| name == lifeguard)
            .expect("known lifeguard")
            .1;
        let cfg = config(*batched);
        let program = &program;
        if *mode == "lba" {
            group.bench_function(id, |b| {
                b.iter(|| {
                    let mut lg = make();
                    run_lba(program, lg.as_mut(), &cfg)
                        .expect("runs")
                        .log
                        .records
                })
            });
        } else {
            group.bench_function(id, |b| {
                b.iter(|| {
                    let mut lg = make();
                    run_live(program, lg.as_mut(), &cfg)
                        .expect("runs")
                        .log
                        .records
                })
            });
        }
    }
    group.finish();

    // The sharded live pipeline: 1 producer + N consumer threads, each
    // shard decoding its own compressed frame stream.
    let mut group = c.benchmark_group("live_parallel");
    group
        .sample_size(samples)
        .throughput(Throughput::Elements(records));
    for (name, make) in pipeline::sharded_lifeguards() {
        for shards in SHARD_COUNTS {
            let cfg = config(true);
            let program = &program;
            group.bench_function(format!("{name}_x{shards}"), |b| {
                b.iter(|| {
                    // Retired records, not per-shard shipped records: the
                    // group's Throughput::Elements is the single-stream
                    // count, and broadcasts are transport duplication.
                    run_live_parallel(program, make, shards, &cfg)
                        .expect("runs")
                        .trace
                        .instructions()
                })
            });
        }
    }
    group.finish();

    // The epoch-parallel TaintCheck pipeline: whole epochs to summarizer
    // workers, symbolic transfer functions stitched in order on a merge
    // core — the one lifeguard address sharding cannot split. Both the
    // modeled mode (whose deterministic clocks carry the speedup claim)
    // and the real-thread mode ride the same router and summarizer.
    let mut group = c.benchmark_group("epoch_taint");
    group
        .sample_size(samples)
        .throughput(Throughput::Elements(records));
    for workers in EPOCH_WORKER_COUNTS {
        let cfg = config(true);
        let program = &program;
        group.bench_function(format!("modeled_x{workers}"), |b| {
            b.iter(|| {
                run_taint_parallel(program, workers, &cfg)
                    .expect("runs")
                    .total_cycles
            })
        });
        group.bench_function(format!("live_x{workers}"), |b| {
            b.iter(|| {
                run_live_taint_parallel(program, workers, &cfg)
                    .expect("runs")
                    .total_records()
            })
        });
    }
    group.finish();

    // The filtered pipeline: the capture-side idempotency window on, for
    // the one lifeguard pair that shows both contracts (AddrCheck drops
    // duplicates outright, MemProfile folds them into Repeat summaries).
    let mut group = c.benchmark_group("filtered");
    group
        .sample_size(samples)
        .throughput(Throughput::Elements(records));
    for (name, make) in pipeline::idempotent_lifeguards()
        .into_iter()
        .filter(|(name, _)| *name == "addrcheck" || *name == "memprofile")
    {
        let mut cfg = config(true);
        cfg.log.idempotency_window = pipeline::IDEMPOTENT_WINDOW;
        let program = &program;
        group.bench_function(format!("lba_{name}_window"), |b| {
            b.iter(|| {
                let mut lg = make();
                run_lba(program, lg.as_mut(), &cfg)
                    .expect("runs")
                    .log
                    .records
            })
        });
    }
    group.finish();

    // The isolated consumption path: same pre-captured stream, channel
    // filled identically, only the consumption granularity differs.
    let stream = pipeline::capture_stream();
    let mut group = c.benchmark_group("consume");
    group
        .sample_size(samples)
        .throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("addrcheck_per_record", |b| {
        b.iter(|| pipeline::consume_per_record(&stream))
    });
    group.bench_function("addrcheck_batched", |b| {
        b.iter(|| pipeline::consume_batched(&stream))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
