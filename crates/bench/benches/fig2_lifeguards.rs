//! Figure 2 benchmarks: end-to-end LBA and DBI runs per lifeguard.
//!
//! Before timing, the harness prints the full Figure 2 panels (the paper's
//! reported series); Criterion then measures representative
//! benchmark × lifeguard × mode simulations.

use criterion::{criterion_group, criterion_main, Criterion};

use lba::experiment;
use lba::{run_dbi, run_lba, run_unmonitored, LifeguardKind, SystemConfig};
use lba_bench::{render_fig2, render_summary};
use lba_workloads::Benchmark;

fn print_figures() {
    let config = SystemConfig::default();
    let mut summaries = Vec::new();
    for kind in LifeguardKind::ALL {
        let rows = experiment::figure2(kind, &config, 1).expect("figure 2 panel");
        println!("{}", render_fig2(kind, &rows));
        summaries.push(experiment::summarize(kind, &rows));
    }
    println!("{}", render_summary(&summaries));
}

fn bench_modes(c: &mut Criterion) {
    print_figures();
    let config = SystemConfig::default();
    let pairs = [
        (Benchmark::Gzip, LifeguardKind::AddrCheck),
        (Benchmark::Gzip, LifeguardKind::TaintCheck),
        (Benchmark::Water, LifeguardKind::LockSet),
    ];
    let mut group = c.benchmark_group("fig2_lifeguards");
    group.sample_size(10);
    let mut baselines_done = std::collections::HashSet::new();
    for (benchmark, kind) in pairs {
        let program = benchmark.build();
        // Benchmark IDs must be unique: gzip appears with two lifeguards,
        // but its unmonitored baseline only needs timing once.
        if baselines_done.insert(benchmark) {
            group.bench_function(format!("unmonitored/{benchmark}"), |b| {
                b.iter(|| run_unmonitored(&program, &config).expect("runs"))
            });
        }
        group.bench_function(format!("lba/{}/{benchmark}", kind.name()), |b| {
            b.iter(|| {
                let mut lg = kind.make_lba();
                run_lba(&program, lg.as_mut(), &config).expect("runs")
            })
        });
        group.bench_function(format!("dbi/{}/{benchmark}", kind.name()), |b| {
            b.iter(|| {
                let mut lg = kind.make_dbi();
                run_dbi(&program, lg.as_mut(), &config).expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
