//! Rendering helpers shared by the `figures` binary and the Criterion
//! benches: each function turns one experiment's rows into the text table
//! the paper reports. The [`pipeline`] module adds the host-throughput
//! measurements behind `BENCH_pipeline.json`.

pub mod pipeline;

use lba::experiment::{
    BufferRow, CompressionAblationRow, CompressionRow, DecouplingRow, Fig2Row, FilterRow,
    ParallelRow, SummaryRow, WorkloadRow,
};
use lba::table::TextTable;
use lba::LifeguardKind;

/// Renders one Figure 2 panel (normalised execution times, `v` = the
/// Valgrind-style DBI baseline, `l` = LBA).
#[must_use]
pub fn render_fig2(kind: LifeguardKind, rows: &[Fig2Row]) -> String {
    let mut t = TextTable::new(["benchmark", "valgrind (v)", "lba (l)", "lba speedup"]);
    for row in rows {
        t.row([
            row.benchmark.name().to_string(),
            format!("{:.1}x", row.valgrind),
            format!("{:.1}x", row.lba),
            format!("{:.1}x", row.speedup()),
        ]);
    }
    format!("Figure 2 ({kind}): slowdown vs unmonitored execution\n{t}")
}

/// Renders the §3 workload-characterisation table.
#[must_use]
pub fn render_workloads(rows: &[WorkloadRow]) -> String {
    let mut t = TextTable::new(["benchmark", "instructions", "memory refs", "cpi"]);
    let mut insts = 0u64;
    let mut frac = 0.0;
    for row in rows {
        insts += row.instructions;
        frac += row.memory_fraction;
        t.row([
            row.benchmark.name().to_string(),
            row.instructions.to_string(),
            format!("{:.1}%", row.memory_fraction * 100.0),
            format!("{:.2}", row.cpi),
        ]);
    }
    let n = rows.len() as u64;
    t.row([
        "average".to_string(),
        (insts / n.max(1)).to_string(),
        format!("{:.1}%", frac / n.max(1) as f64 * 100.0),
        String::new(),
    ]);
    format!("Workload characterisation (§3: paper avg 209M insts, 51% memory refs)\n{t}")
}

/// Renders the compression table (§2 claim: < 1 byte/instruction).
#[must_use]
pub fn render_compression(rows: &[CompressionRow]) -> String {
    let mut t = TextTable::new(["benchmark", "records", "bytes/inst", "ratio vs raw"]);
    for row in rows {
        t.row([
            row.benchmark.name().to_string(),
            row.records.to_string(),
            format!("{:.3}", row.bytes_per_instruction),
            format!("{:.1}x", row.ratio_vs_raw),
        ]);
    }
    format!("Log compression (§2: VPC-based, target < 1 byte/instruction)\n{t}")
}

/// Renders the §3 summary rows (averages and speedup ranges).
#[must_use]
pub fn render_summary(rows: &[SummaryRow]) -> String {
    let mut t = TextTable::new([
        "lifeguard",
        "lba avg",
        "paper lba avg",
        "valgrind avg",
        "speedup range",
    ]);
    for row in rows {
        t.row([
            row.kind.name().to_string(),
            format!("{:.1}x", row.lba_avg),
            format!("{:.1}x", row.paper_lba_avg),
            format!("{:.1}x", row.valgrind_avg),
            format!("{:.1}-{:.1}x", row.speedup_min, row.speedup_max),
        ]);
    }
    format!("Summary (§3: LBA avgs 3.9/4.8/9.7x; LBA 4-19x faster than Valgrind)\n{t}")
}

/// Renders ablation A (decoupled vs lock-step cores).
#[must_use]
pub fn render_decoupling(rows: &[DecouplingRow]) -> String {
    let mut t = TextTable::new(["benchmark", "decoupled", "lock-step"]);
    for row in rows {
        t.row([
            row.benchmark.name().to_string(),
            format!("{:.1}x", row.decoupled),
            format!("{:.1}x", row.lockstep),
        ]);
    }
    format!("Ablation A: decoupling (§2: async cores vs per-record sync), AddrCheck\n{t}")
}

/// Renders ablation B (log-buffer size sweep).
#[must_use]
pub fn render_buffer(rows: &[BufferRow]) -> String {
    let mut t = TextTable::new(["buffer", "slowdown", "back-pressure stall cycles"]);
    for row in rows {
        t.row([
            format!("{} KiB", row.buffer_bytes >> 10),
            format!("{:.2}x", row.slowdown),
            row.buffer_stall_cycles.to_string(),
        ]);
    }
    format!("Ablation B: log buffer size (TaintCheck on gzip)\n{t}")
}

/// Renders ablation C (compression on/off).
#[must_use]
pub fn render_compression_ablation(rows: &[CompressionAblationRow]) -> String {
    let mut t = TextTable::new(["benchmark", "compressed", "raw 25B records", "bytes/inst"]);
    for row in rows {
        t.row([
            row.benchmark.name().to_string(),
            format!("{:.2}x", row.compressed),
            format!("{:.2}x", row.raw),
            format!("{:.3}", row.compressed_bytes_per_inst),
        ]);
    }
    format!("Ablation C: VPC compression on/off (TaintCheck)\n{t}")
}

/// Renders the filtering extension table.
#[must_use]
pub fn render_filtering(rows: &[FilterRow]) -> String {
    let mut t = TextTable::new([
        "benchmark",
        "unfiltered",
        "heap-filtered",
        "records dropped",
    ]);
    for row in rows {
        t.row([
            row.benchmark.name().to_string(),
            format!("{:.2}x", row.unfiltered),
            format!("{:.2}x", row.filtered),
            format!("{:.0}%", row.dropped_fraction * 100.0),
        ]);
    }
    format!("Extension: address-range filtering (§3 future work), AddrCheck\n{t}")
}

/// Renders the parallel-lifeguard extension table.
#[must_use]
pub fn render_parallel(rows: &[ParallelRow]) -> String {
    let mut t = TextTable::new(["lifeguard cores", "slowdown"]);
    for row in rows {
        t.row([row.shards.to_string(), format!("{:.2}x", row.slowdown)]);
    }
    format!("Extension: parallel lifeguards (§1/§3 future work), LockSet on zchaff\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba::experiment;
    use lba::SystemConfig;

    #[test]
    fn lockset_panel_renders() {
        let rows = experiment::figure2(LifeguardKind::LockSet, &SystemConfig::default(), 1)
            .expect("panel runs");
        let s = render_fig2(LifeguardKind::LockSet, &rows);
        assert!(s.contains("water"));
        assert!(s.contains("zchaff"));
        assert!(s.contains("lba speedup"));
    }
}
