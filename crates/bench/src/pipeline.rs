//! End-to-end pipeline throughput: host wall-clock events/sec.
//!
//! Everything else in the reproduction reports *modeled* cycles; this
//! module measures how fast the simulator itself moves events, which is
//! the ROADMAP's "as fast as the hardware allows" axis. The same rows feed
//! three places:
//!
//! * the `pipeline` Criterion bench (`cargo bench -p lba-bench --bench
//!   pipeline`), which compares the frame-granular default against the
//!   pre-batching per-record path kept callable via
//!   `LogConfig::batch_dispatch = false`;
//! * the `figures` binary, which appends the rows to its report;
//! * `BENCH_pipeline.json`, the committed trajectory file every future PR
//!   re-generates to show where host throughput moved.

use std::time::Instant;

use lba::{
    run_lba, run_live, run_live_parallel, run_live_taint_parallel, run_remote, run_replay,
    run_taint_parallel, AdaptiveConfig, FaultProfile, RecordConfig, SystemConfig,
};
use lba_cache::{MemSystem, MemSystemConfig};
use lba_cpu::Machine;
use lba_lifeguard::{DispatchEngine, Lifeguard};
use lba_lifeguards::AddrCheck;
use lba_record::EventRecord;
use lba_transport::{LogChannel, ModeledFrameChannel};
use lba_workloads::Benchmark;

/// A lifeguard factory used by the measurement matrix.
pub type LifeguardFactory = fn() -> Box<dyn Lifeguard>;

/// Every lifeguard as (name, factory) pairs, derived from the
/// [`lba::MONITORS`] registry so a new lifeguard lands in the bench
/// matrix by adding its registry row — `LifeguardKind` covers the
/// paper's three; the pipeline bench also drives MemProfile.
#[must_use]
pub fn lifeguards() -> Vec<(&'static str, LifeguardFactory)> {
    lba::MONITORS.iter().map(|m| (m.name, m.make)).collect()
}

/// The lifeguards the sharded (parallel) modes support — those whose
/// registry row declares address-interleaved sharding sound (per-address
/// state only). TaintCheck is excluded: its register state forms a
/// sequential dependence chain through every instruction (same soundness
/// note as the modeled `run_lba_parallel`); it gets its own
/// "taint-parallel" epoch series instead (see [`epoch_speedup`]).
#[must_use]
pub fn sharded_lifeguards() -> Vec<(&'static str, LifeguardFactory)> {
    lba::MONITORS
        .iter()
        .filter(|m| m.shardable)
        .map(|m| (m.name, m.make))
        .collect()
}

/// Shard counts the live-parallel series measures.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Worker counts the epoch-parallel TaintCheck series measures.
pub const EPOCH_WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Modeled-cycle speedup the 4-worker epoch-parallel TaintCheck row must
/// show over the sequential `run_lba` TaintCheck row — the trajectory
/// gate for the epoch mode's reason to exist.
pub const EPOCH_SPEEDUP_FLOOR: f64 = 1.5;

/// Idempotency-window size (entries) used by the filtered series.
pub const IDEMPOTENT_WINDOW: usize = 4096;

/// The lifeguards whose soundness contract participates in capture-side
/// dedup — derived from each lifeguard's declared
/// `Lifeguard::idempotency()` so the filtered series can never drift
/// from the contracts (today: AddrCheck, LockSet, MemProfile; TaintCheck
/// declares `IdempotencyClass::None` and stays out).
#[must_use]
pub fn idempotent_lifeguards() -> Vec<(&'static str, LifeguardFactory)> {
    lifeguards()
        .into_iter()
        .filter(|(_, make)| make().idempotency().dedupes())
        .collect()
}

/// One throughput measurement.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Execution mode: `"lba"` (deterministic co-simulation), `"live"`
    /// (two OS threads), `"live-parallel"` (1 producer + N consumer
    /// threads), `"consume"` (isolated consumption path), or `"replay"`
    /// (offline replay of a flight-recorder stream).
    pub mode: &'static str,
    /// Lifeguard name.
    pub lifeguard: &'static str,
    /// Benchmark program.
    pub benchmark: &'static str,
    /// Whether consumption was frame-granular (the default) or the
    /// per-record baseline.
    pub batched: bool,
    /// Lifeguard shard count (1 for the unsharded modes).
    pub shards: usize,
    /// Capture-side idempotency-window entries (0: unfiltered).
    pub window: usize,
    /// Log records shipped (after any capture filtering).
    pub records: u64,
    /// Bits on the wire, frame headers and padding included (summed over
    /// shards in the sharded mode).
    pub wire_bits: u64,
    /// Best-of-N wall-clock seconds.
    pub wall_seconds: f64,
    /// Records per wall-clock second.
    pub events_per_sec: f64,
    /// Modeled end-to-end cycles, for the modes with a deterministic
    /// clock model (`lba` and the modeled `taint-parallel` series); 0 for
    /// the host-wall-clock-only modes. The epoch-parallel speedup claim
    /// is made on this column — wall clock cannot show scaling on a
    /// 1-vCPU box, modeled cycles can.
    pub modeled_cycles: u64,
    /// Fraction of captured events the adaptive controller sampled out
    /// (the `*-degraded` series; 0 everywhere else).
    pub sampled_out_fraction: f64,
}

/// Best-of-`n` wall time of `body` (the min estimator is robust to
/// scheduler noise on shared machines), with the `(records, wire_bits)`
/// pair it reports.
fn best_of<F: FnMut() -> (u64, u64)>(n: usize, mut body: F) -> (u64, u64, f64) {
    let mut best = f64::INFINITY;
    let mut volume = (0, 0);
    for _ in 0..n {
        let start = Instant::now();
        volume = body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (volume.0, volume.1, best)
}

fn config(batched: bool) -> SystemConfig {
    let mut config = SystemConfig::default();
    config.log.batch_dispatch = batched;
    config
}

fn windowed_config(window: usize) -> SystemConfig {
    let mut config = SystemConfig::default();
    config.log.idempotency_window = window;
    config
}

/// Runs the full measurement matrix: both execution modes, all four
/// lifeguards on gzip, batched and per-record, the live-parallel series
/// across shard counts, the filtered-vs-unfiltered idempotency series,
/// plus the isolated consumption-path pair. `samples` is the best-of-N
/// count per cell.
#[must_use]
pub fn measure_pipeline(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let mut rows = measure_consume(samples);
    for (name, make) in lifeguards() {
        for batched in [true, false] {
            let cfg = config(batched);
            rows.push(measure_mode("lba", name, &make, &cfg, &program, samples));
            rows.push(measure_mode("live", name, &make, &cfg, &program, samples));
        }
    }
    rows.extend(measure_live_parallel(samples));
    rows.extend(measure_remote(samples));
    rows.extend(measure_taint_parallel(samples));
    rows.extend(measure_idempotent(samples));
    rows.extend(measure_replay(samples));
    rows.extend(measure_degraded(samples));
    rows
}

/// The epoch-parallel TaintCheck series: the one lifeguard the sharded
/// modes cannot split, parallelised by time-slicing instead — whole
/// epochs to workers computing symbolic transfer-function summaries, a
/// merge core stitching them in order (`run_taint_parallel` /
/// `run_live_taint_parallel`). The worker count rides the `shards`
/// column. Two sub-series:
///
/// * `taint-parallel` — the modeled mode; `modeled_cycles` carries its
///   end-to-end clock, and the trajectory gate demands the 4-worker row
///   beat the sequential `lba`/`taintcheck` row by
///   [`EPOCH_SPEEDUP_FLOOR`] on that column (wall clock cannot show
///   scaling on a 1-vCPU host; the deterministic clock model can);
/// * `live-taint-parallel` — the same pipeline on real threads,
///   wall-clock only.
#[must_use]
pub fn measure_taint_parallel(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let cfg = config(true);
    let mut rows = Vec::new();
    for workers in EPOCH_WORKER_COUNTS {
        let mut modeled_cycles = 0;
        let (records, wire_bits, wall) = best_of(samples, || {
            let report = run_taint_parallel(&program, workers, &cfg).expect("gzip runs clean");
            modeled_cycles = report.total_cycles;
            (report.log.records, report.log.wire_bits)
        });
        rows.push(PipelineRow {
            mode: "taint-parallel",
            lifeguard: "taintcheck",
            benchmark: "gzip",
            batched: true,
            shards: workers,
            window: 0,
            records,
            wire_bits,
            wall_seconds: wall,
            events_per_sec: records as f64 / wall,
            modeled_cycles,
            sampled_out_fraction: 0.0,
        });
    }
    for workers in EPOCH_WORKER_COUNTS {
        let (records, wire_bits, wall) = best_of(samples, || {
            let report = run_live_taint_parallel(&program, workers, &cfg).expect("gzip runs clean");
            (report.total_records(), report.total_wire_bits())
        });
        rows.push(PipelineRow {
            mode: "live-taint-parallel",
            lifeguard: "taintcheck",
            benchmark: "gzip",
            batched: true,
            shards: workers,
            window: 0,
            records,
            wire_bits,
            wall_seconds: wall,
            events_per_sec: records as f64 / wall,
            modeled_cycles: 0,
            sampled_out_fraction: 0.0,
        });
    }
    rows
}

/// The offline-replay series: gzip's wire stream is recorded once through
/// the flight recorder (`LogConfig::record_to`), then `run_replay`
/// re-drives the recording through each lifeguard at host speed — decode
/// and dispatch only, no application simulation. One recording, four
/// analyses: the paper's retroactive-monitoring pitch as a throughput
/// row. Every replay's wire-bit accounting is asserted byte-identical to
/// the recorded run before the row is reported.
#[must_use]
pub fn measure_replay(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let dir = std::env::temp_dir().join(format!("lba-bench-replay-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut record_cfg = SystemConfig::default();
    record_cfg.log.record_to = Some(RecordConfig::new(&dir));
    let mut recorder = AddrCheck::new();
    let recorded = run_lba(&program, &mut recorder, &record_cfg).expect("gzip runs clean");

    let cfg = SystemConfig::default();
    let mut rows = Vec::new();
    for (name, make) in lifeguards() {
        let (records, wire_bits, wall) = best_of(samples, || {
            let replay = run_replay(&dir, make, &cfg).expect("recording replays clean");
            assert_eq!(
                replay.total_wire_bits(),
                recorded.log.wire_bits,
                "replay wire accounting must be byte-identical to the recording"
            );
            (replay.total_records(), replay.total_wire_bits())
        });
        rows.push(PipelineRow {
            mode: "replay",
            lifeguard: name,
            benchmark: "gzip",
            batched: true,
            shards: 1,
            window: 0,
            records,
            wire_bits,
            wall_seconds: wall,
            events_per_sec: records as f64 / wall,
            modeled_cycles: 0,
            sampled_out_fraction: 0.0,
        });
    }
    std::fs::remove_dir_all(&dir).ok();
    rows
}

/// The lifeguards whose declared `Lifeguard::degradation()` contract
/// tolerates anything — derived from the contracts so the degraded
/// series can never drift from them (today: AddrCheck, LockSet,
/// MemProfile; TaintCheck declares `DegradationPolicy::none()` and
/// stays out).
#[must_use]
pub fn degradable_lifeguards() -> Vec<(&'static str, LifeguardFactory)> {
    lifeguards()
        .into_iter()
        .filter(|(_, make)| !make().degradation().is_none())
        .collect()
}

/// The injected-fault configs the degraded series runs under, per mode.
/// `adaptive` toggles the controller; the fault profile and buffer budget
/// are identical either way, so the degraded row and its uncontrolled
/// counterpart face the *same* load (the trajectory gate compares the
/// two). The cosim flavour shrinks the modeled buffer so the slow-drain
/// back-pressure genuinely climbs past the engage threshold; the live
/// flavour drags the real consumer against a one-frame queue — the same
/// shapes `tests/degradation.rs` pins as reliably engaging.
#[must_use]
pub fn fault_config(mode: &str, adaptive: bool) -> SystemConfig {
    let mut config = SystemConfig::default();
    if adaptive {
        config.log.adaptive = Some(AdaptiveConfig {
            engage_permille: 300,
            disengage_permille: 100,
            sample_stride: 16,
            ..AdaptiveConfig::default()
        });
    }
    if mode == "lba" {
        config.log.fault = Some(FaultProfile::slow_drain(42));
        config.log.buffer_bytes = 2 << 10;
    } else {
        config.log.fault = Some(FaultProfile {
            drain_drag: 20_000,
            ..FaultProfile::default()
        });
        config.log.buffer_bytes = 64;
    }
    config
}

/// The adaptive-degradation series: every contract-degradable lifeguard
/// through both single-lifeguard modes under injected slow-drain, twice —
/// once with the controller off (`*-faulted`: the uncontrolled baseline
/// suffering the full load) and once with it on (`*-degraded`). The
/// trajectory gate demands the degraded row move events at least as fast
/// as its uncontrolled counterpart under the identical fault profile —
/// degradation must buy throughput, not just bookkeep — and the
/// `sampled_out_fraction` column records how much of the stream the
/// controller thinned to do it.
#[must_use]
pub fn measure_degraded(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let mut rows = Vec::new();
    for (name, make) in degradable_lifeguards() {
        for mode in ["lba", "live"] {
            for adaptive in [false, true] {
                let cfg = fault_config(mode, adaptive);
                let mut captured = 0;
                let mut sampled_out = 0;
                let mut modeled_cycles = 0;
                let (records, wire_bits, wall) = best_of(samples, || {
                    let mut lg = make();
                    let (log, degradation) = if mode == "lba" {
                        let report = run_lba(&program, lg.as_mut(), &cfg).expect("gzip runs clean");
                        modeled_cycles = report.total_cycles;
                        (report.log, report.pipeline.degradation)
                    } else {
                        let report =
                            run_live(&program, lg.as_mut(), &cfg).expect("gzip runs clean");
                        (report.log, report.pipeline.degradation)
                    };
                    assert_eq!(
                        degradation.is_empty(),
                        !adaptive,
                        "{mode}/{name}: the controller must engage exactly when configured"
                    );
                    captured = log.captured + degradation.removed();
                    sampled_out = degradation.sampled_out;
                    (log.records, log.wire_bits)
                });
                rows.push(PipelineRow {
                    mode: if adaptive {
                        if mode == "lba" {
                            "lba-degraded"
                        } else {
                            "live-degraded"
                        }
                    } else if mode == "lba" {
                        "lba-faulted"
                    } else {
                        "live-faulted"
                    },
                    lifeguard: name,
                    benchmark: "gzip",
                    batched: true,
                    shards: 1,
                    window: 0,
                    records,
                    wire_bits,
                    wall_seconds: wall,
                    events_per_sec: captured as f64 / wall,
                    modeled_cycles,
                    sampled_out_fraction: sampled_out as f64 / captured as f64,
                });
            }
        }
    }
    rows
}

/// The degradation payoff: a `{mode}-degraded` row's events/sec over the
/// `{mode}-faulted` row of the same lifeguard — controller on vs off
/// under the identical injected fault profile.
#[must_use]
pub fn degraded_speedup(rows: &[PipelineRow], mode: &str, lifeguard: &str) -> Option<f64> {
    let find = |suffix: &str| {
        let mode = format!("{mode}-{suffix}");
        rows.iter()
            .find(|r| r.mode == mode && r.lifeguard == lifeguard)
    };
    let degraded = find("degraded")?;
    let faulted = find("faulted")?;
    Some(degraded.events_per_sec / faulted.events_per_sec)
}

/// One `run_lba`/`run_live` cell. The events/sec numerator is *captured*
/// (retired) events, not shipped records: a capture filter shrinks the
/// log, not the workload, so the rate stays comparable across filtered
/// and unfiltered rows. With the window off the two counts coincide.
fn measure_mode(
    mode: &'static str,
    name: &'static str,
    make: &LifeguardFactory,
    cfg: &SystemConfig,
    program: &lba_isa::Program,
    samples: usize,
) -> PipelineRow {
    let mut captured = 0;
    let mut modeled_cycles = 0;
    let (records, wire_bits, wall) = best_of(samples, || {
        let mut lg = make();
        let log = if mode == "lba" {
            let report = run_lba(program, lg.as_mut(), cfg).expect("gzip runs clean");
            modeled_cycles = report.total_cycles;
            report.log
        } else {
            run_live(program, lg.as_mut(), cfg)
                .expect("gzip runs clean")
                .log
        };
        captured = log.captured;
        (log.records, log.wire_bits)
    });
    PipelineRow {
        mode,
        lifeguard: name,
        benchmark: "gzip",
        batched: cfg.log.batch_dispatch,
        shards: 1,
        window: cfg.log.idempotency_window,
        records,
        wire_bits,
        wall_seconds: wall,
        events_per_sec: captured as f64 / wall,
        modeled_cycles,
        sampled_out_fraction: 0.0,
    }
}

/// The filtered-vs-unfiltered series: every dedup-participating lifeguard
/// through both single-lifeguard modes with the capture-side idempotency
/// window on. The unfiltered counterpart rows are the window-0 cells the
/// main matrix already measures; these rows show the same workload
/// shipping fewer records and wire bits (and, on real parallel hardware,
/// spending less lifeguard time).
#[must_use]
pub fn measure_idempotent(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let cfg = windowed_config(IDEMPOTENT_WINDOW);
    let mut rows = Vec::new();
    for (name, make) in idempotent_lifeguards() {
        rows.push(measure_mode("lba", name, &make, &cfg, &program, samples));
        rows.push(measure_mode("live", name, &make, &cfg, &program, samples));
    }
    rows
}

/// The live-parallel series: events/sec through `run_live_parallel` on
/// gzip for every supported lifeguard at each shard count. Events are
/// *retired records* — the same work whatever the shard count — so the
/// rate is comparable across shard counts and with the unsharded live
/// series. (Broadcast records are shipped once per shard, but that is
/// transport duplication, not new events; counting it would manufacture
/// phantom speedup from duplicated work.) Consumption stays on the
/// default frame-granular path.
#[must_use]
pub fn measure_live_parallel(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let cfg = config(true);
    let mut rows = Vec::new();
    for (name, make) in sharded_lifeguards() {
        for shards in SHARD_COUNTS {
            let (records, wire_bits, wall) = best_of(samples, || {
                let report =
                    run_live_parallel(&program, make, shards, &cfg).expect("gzip runs clean");
                (report.trace.instructions(), report.total_wire_bits())
            });
            rows.push(PipelineRow {
                mode: "live-parallel",
                lifeguard: name,
                benchmark: "gzip",
                batched: true,
                shards,
                window: 0,
                records,
                wire_bits,
                wall_seconds: wall,
                events_per_sec: records as f64 / wall,
                modeled_cycles: 0,
                sampled_out_fraction: 0.0,
            });
        }
    }
    rows
}

/// The remote series: events/sec through `run_remote` on gzip for every
/// supported lifeguard at each worker count — the same sharded pipeline
/// as `live-parallel`, with each shard's frames crossing a real
/// Unix-domain socket under the credit window instead of an in-process
/// queue. The events/sec convention matches `measure_live_parallel`
/// (retired records, comparable across counts), and the trajectory gate
/// asserts the wire bits byte-identical to the matching live-parallel
/// row: the socket must move the exact same stream, paying only wall
/// clock for the kernel round-trips.
#[must_use]
pub fn measure_remote(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let cfg = config(true);
    let mut rows = Vec::new();
    for (name, make) in sharded_lifeguards() {
        for workers in SHARD_COUNTS {
            let (records, wire_bits, wall) = best_of(samples, || {
                let report = run_remote(&program, make, workers, &cfg).expect("gzip runs clean");
                (report.trace.instructions(), report.total_wire_bits())
            });
            rows.push(PipelineRow {
                mode: "remote",
                lifeguard: name,
                benchmark: "gzip",
                batched: true,
                shards: workers,
                window: 0,
                records,
                wire_bits,
                wall_seconds: wall,
                events_per_sec: records as f64 / wall,
                modeled_cycles: 0,
                sampled_out_fraction: 0.0,
            });
        }
    }
    rows
}

/// Captures gzip's record stream once (for the consumption-path cells).
#[must_use]
pub fn capture_stream() -> Vec<EventRecord> {
    let program = Benchmark::Gzip.build();
    let cfg = SystemConfig::default();
    let mut machine = Machine::new(&program, cfg.machine);
    let mut mem = MemSystem::new(cfg.mem_single());
    let mut records = Vec::new();
    machine
        .run(&mut mem, |r| records.push(r.record))
        .expect("gzip runs clean");
    records
}

/// Fills a channel with the whole stream. The per-record baseline decodes
/// on pop, so it gets the software-decoding channel; the batched path gets
/// the zero-copy one — the same pairing `run_lba` wires up.
fn fill_channel(records: &[EventRecord], batched: bool) -> ModeledFrameChannel {
    let fc = SystemConfig::default().log.frame_config();
    let mut ch = if batched {
        ModeledFrameChannel::zero_copy(1 << 26, fc, false)
    } else {
        ModeledFrameChannel::new(1 << 26, fc, false)
    };
    for (i, rec) in records.iter().enumerate() {
        ch.push_record(rec, i as u64);
    }
    ch.flush(records.len() as u64);
    ch
}

/// Pushes the stream and consumes it per-record (`pop_record` +
/// `deliver`); returns the lifeguard cycles charged.
#[must_use]
pub fn consume_per_record(records: &[EventRecord]) -> u64 {
    let mut ch = fill_channel(records, false);
    let engine = DispatchEngine::default();
    let mut mem = MemSystem::new(MemSystemConfig::dual_core());
    let mut lg = AddrCheck::new();
    let mut findings = Vec::new();
    let mut cycles = 0;
    while let Some(popped) = ch.pop_record() {
        cycles += engine.deliver(&mut lg, &popped.record, &mut mem, 1, &mut findings);
    }
    cycles
}

/// Pushes the stream and consumes it frame-at-a-time (`pop_frame` +
/// `deliver_batch`); returns the lifeguard cycles charged.
#[must_use]
pub fn consume_batched(records: &[EventRecord]) -> u64 {
    let mut ch = fill_channel(records, true);
    let engine = DispatchEngine::default();
    let mut mem = MemSystem::new(MemSystemConfig::dual_core());
    let mut lg = AddrCheck::new();
    let mut findings = Vec::new();
    let mut cycles = 0;
    while let Some(frame) = ch.pop_frame() {
        cycles += engine.deliver_batch(&mut lg, frame.records, &mut mem, 1, &mut findings);
    }
    cycles
}

/// The isolated consumption-path cells: identical pre-captured stream and
/// channel fill, only the consumption granularity differs — the purest
/// contrast between the batched path and the pre-change per-record path.
#[must_use]
pub fn measure_consume(samples: usize) -> Vec<PipelineRow> {
    let stream = capture_stream();
    assert_eq!(
        consume_per_record(&stream),
        consume_batched(&stream),
        "consumption paths must charge identical cycles"
    );
    let n = stream.len() as u64;
    let wire_bits = fill_channel(&stream, true).stats().wire_bits;
    let mut rows = Vec::new();
    for batched in [true, false] {
        let (_, _, wall) = best_of(samples, || {
            if batched {
                (consume_batched(&stream), 0)
            } else {
                (consume_per_record(&stream), 0)
            }
        });
        rows.push(PipelineRow {
            mode: "consume",
            lifeguard: "addrcheck",
            benchmark: "gzip",
            batched,
            shards: 1,
            window: 0,
            records: n,
            wire_bits,
            wall_seconds: wall,
            events_per_sec: n as f64 / wall,
            modeled_cycles: 0,
            sampled_out_fraction: 0.0,
        });
    }
    rows
}

/// The headline ratio: batched over per-record events/sec for one
/// mode+lifeguard pair (unfiltered rows only), if both are present.
#[must_use]
pub fn speedup(rows: &[PipelineRow], mode: &str, lifeguard: &str) -> Option<f64> {
    let find = |batched: bool| {
        rows.iter().find(|r| {
            r.mode == mode
                && r.lifeguard == lifeguard
                && r.batched == batched
                && r.window == 0
                && r.records > 0
        })
    };
    let batched = find(true)?;
    let baseline = find(false)?;
    Some(batched.events_per_sec / baseline.events_per_sec)
}

/// The filtered ratio: a windowed row's events/sec over the unfiltered
/// (window 0, batched) row of the same mode and lifeguard. The fraction
/// of the log the window removed is deterministic; this rate ratio is
/// the wall-clock echo of it.
#[must_use]
pub fn dedup_speedup(rows: &[PipelineRow], mode: &str, lifeguard: &str) -> Option<f64> {
    let find = |window0: bool| {
        rows.iter().find(|r| {
            r.mode == mode
                && r.lifeguard == lifeguard
                && r.batched
                && (r.window == 0) == window0
                && r.records > 0
        })
    };
    let filtered = find(false)?;
    let baseline = find(true)?;
    Some(filtered.events_per_sec / baseline.events_per_sec)
}

/// The epoch-parallel ratio: the sequential `lba`/`taintcheck` row's
/// modeled cycles over the modeled `taint-parallel` row's at `workers`
/// workers, if both are present. Computed on the deterministic clock
/// model, not wall clock — the host may not have the cores to show the
/// overlap, the model does.
#[must_use]
pub fn epoch_speedup(rows: &[PipelineRow], workers: usize) -> Option<f64> {
    let sequential = rows.iter().find(|r| {
        r.mode == "lba"
            && r.lifeguard == "taintcheck"
            && r.batched
            && r.window == 0
            && r.modeled_cycles > 0
    })?;
    let parallel = rows
        .iter()
        .find(|r| r.mode == "taint-parallel" && r.shards == workers && r.modeled_cycles > 0)?;
    Some(sequential.modeled_cycles as f64 / parallel.modeled_cycles as f64)
}

/// The sharded ratio: a live-parallel row's events/sec over the one-shard
/// row of the same lifeguard, if both are present. On genuinely parallel
/// hardware this is the scaling curve; on a 1-vCPU box it hovers near (or
/// below) 1.0 because the threads cannot overlap.
#[must_use]
pub fn shard_speedup(rows: &[PipelineRow], lifeguard: &str, shards: usize) -> Option<f64> {
    let find = |shards: usize| {
        rows.iter()
            .find(|r| r.mode == "live-parallel" && r.lifeguard == lifeguard && r.shards == shards)
    };
    let sharded = find(shards)?;
    let single = find(1)?;
    Some(sharded.events_per_sec / single.events_per_sec)
}

/// The socket tax: a remote row's events/sec over the live-parallel row
/// at the same lifeguard and worker count. Both modes move the identical
/// sealed stream through the identical sharded lifeguards; the ratio
/// isolates what the Unix-domain-socket hop (syscalls, copies, credit
/// round-trips) costs against the in-process channel.
#[must_use]
pub fn socket_overhead(rows: &[PipelineRow], lifeguard: &str, shards: usize) -> Option<f64> {
    let find = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode && r.lifeguard == lifeguard && r.shards == shards)
    };
    let remote = find("remote")?;
    let in_process = find("live-parallel")?;
    Some(remote.events_per_sec / in_process.events_per_sec)
}

/// Renders the pipeline-throughput table.
#[must_use]
pub fn render_pipeline(rows: &[PipelineRow]) -> String {
    use lba::table::TextTable;
    let mut t = TextTable::new([
        "mode",
        "lifeguard",
        "benchmark",
        "path",
        "shards",
        "window",
        "records",
        "Mevents/s",
        "speedup",
    ]);
    for row in rows {
        let speedup = if row.window > 0 {
            dedup_speedup(rows, row.mode, row.lifeguard)
                .map_or(String::new(), |s| format!("{s:.2}x vs unfiltered"))
        } else if row.mode == "live-parallel" && row.shards > 1 {
            shard_speedup(rows, row.lifeguard, row.shards)
                .map_or(String::new(), |s| format!("{s:.2}x vs 1 shard"))
        } else if row.mode == "remote" {
            socket_overhead(rows, row.lifeguard, row.shards)
                .map_or(String::new(), |s| format!("{s:.2}x vs in-process"))
        } else if row.mode == "taint-parallel" {
            epoch_speedup(rows, row.shards)
                .map_or(String::new(), |s| format!("{s:.2}x vs sequential"))
        } else if row.mode == "live-taint-parallel" {
            String::new()
        } else if let Some(base) = row.mode.strip_suffix("-degraded") {
            degraded_speedup(rows, base, row.lifeguard)
                .map_or(String::new(), |s| format!("{s:.2}x vs uncontrolled"))
        } else if row.mode.ends_with("-faulted") {
            String::new()
        } else if row.batched {
            speedup(rows, row.mode, row.lifeguard)
                .map_or(String::new(), |s| format!("{s:.2}x vs per-record"))
        } else {
            String::new()
        };
        t.row([
            row.mode.to_string(),
            row.lifeguard.to_string(),
            row.benchmark.to_string(),
            if row.batched {
                "frame-batched".to_string()
            } else {
                "per-record".to_string()
            },
            row.shards.to_string(),
            row.window.to_string(),
            row.records.to_string(),
            format!("{:.2}", row.events_per_sec / 1e6),
            speedup,
        ]);
    }
    format!("Pipeline host throughput (wall clock, best-of-N)\n{t}")
}

/// Serializes the rows as the `BENCH_pipeline.json` trajectory document.
/// Hand-rolled JSON: the environment is air-gapped, so no serde.
#[must_use]
pub fn pipeline_json(rows: &[PipelineRow]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"pipeline\",\n  \"unit\": \"events_per_sec\",\n  \"results\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"lifeguard\": \"{}\", \"benchmark\": \"{}\", \"batched\": {}, \"shards\": {}, \"window\": {}, \"records\": {}, \"wire_bits\": {}, \"modeled_cycles\": {}, \"sampled_out_fraction\": {:.6}, \"wall_seconds\": {:.6}, \"events_per_sec\": {:.0}}}{sep}\n",
            row.mode, row.lifeguard, row.benchmark, row.batched, row.shards, row.window, row.records, row.wire_bits, row.modeled_cycles, row.sampled_out_fraction, row.wall_seconds, row.events_per_sec,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One value out of a serialized row line, e.g. `row_field(line,
/// "records")`. The trajectory file is hand-rolled JSON with one row per
/// line (the environment is air-gapped, so no serde), which keeps this
/// honest-but-simple extraction sound.
fn row_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn row_u64(line: &str, key: &str) -> Result<u64, String> {
    row_field(line, key)
        .ok_or_else(|| format!("row missing {key}: {line}"))?
        .parse()
        .map_err(|e| format!("bad {key} in {line}: {e}"))
}

fn row_f64(line: &str, key: &str) -> Result<f64, String> {
    row_field(line, key)
        .ok_or_else(|| format!("row missing {key}: {line}"))?
        .parse()
        .map_err(|e| format!("bad {key} in {line}: {e}"))
}

/// The identity of every result row — everything but the measurements.
/// Two trajectory documents with equal key sets have the same *schema*
/// (same series, same cells); only the numbers moved.
///
/// # Errors
///
/// Returns a description of the first malformed row.
pub fn trajectory_keys(json: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let mut keys = std::collections::BTreeSet::new();
    for line in json.lines().filter(|l| l.contains("\"mode\"")) {
        let mut key = String::new();
        for field in [
            "mode",
            "lifeguard",
            "benchmark",
            "batched",
            "shards",
            "window",
        ] {
            let value =
                row_field(line, field).ok_or_else(|| format!("row missing {field}: {line}"))?;
            key.push_str(value);
            key.push('/');
        }
        if !keys.insert(key.clone()) {
            return Err(format!("duplicate row {key}"));
        }
    }
    Ok(keys)
}

/// Validates a `BENCH_pipeline.json` document's shape: every series the
/// trajectory promises must be present, every row must carry the full
/// key set, and the deterministic claims — the filtered series ships
/// fewer records and wire bits than its unfiltered counterpart,
/// TaintCheck stays out of the sharded and filtered series — must hold.
/// Shared by the `tests/figures_smoke.rs` assertion on the committed
/// file and the `figures --bench-smoke` CI gate on a freshly emitted
/// one, so the two cannot drift.
///
/// # Errors
///
/// Returns a description of the first violated expectation.
pub fn validate_trajectory(json: &str) -> Result<(), String> {
    for header in ["\"bench\": \"pipeline\"", "\"unit\": \"events_per_sec\""] {
        if !json.contains(header) {
            return Err(format!("missing header {header}"));
        }
    }

    let rows = json.matches("\"mode\"").count();
    if rows == 0 {
        return Err("no result rows at all".into());
    }
    // (`:` included so the header's `"unit": "events_per_sec"` value
    // doesn't count as a key.)
    for key in [
        "\"shards\":",
        "\"window\":",
        "\"records\":",
        "\"wire_bits\":",
        "\"modeled_cycles\":",
        "\"sampled_out_fraction\":",
        "\"events_per_sec\":",
    ] {
        let count = json.matches(key).count();
        if count != rows {
            return Err(format!("{count} of {rows} rows carry {key}"));
        }
    }

    // The series: the consumption-only pair plus every trajectory series
    // a registry run mode owns — derived from `lba::RUN_MODES`, so the
    // committed trajectory and the registry cannot drift apart (a mode
    // added to or dropped from the registry fails this check until the
    // trajectory is regenerated).
    let series: Vec<&'static str> = std::iter::once("consume")
        .chain(
            lba::RUN_MODES
                .iter()
                .flat_map(|m| m.bench_series.iter().copied()),
        )
        .collect();
    for mode in series {
        if !json.contains(&format!("\"mode\": \"{mode}\"")) {
            return Err(format!("missing series {mode}"));
        }
    }
    // Single-lifeguard modes cover every registered lifeguard…
    for monitor in &lba::MONITORS {
        if !json.contains(&format!(
            "\"mode\": \"lba\", \"lifeguard\": \"{}\"",
            monitor.name
        )) {
            return Err(format!("missing lba/{}", monitor.name));
        }
    }
    // …the live-parallel series covers every registry-declared shardable
    // lifeguard at every shard count, and nothing else (address
    // interleaving is unsound for the rest — TaintCheck's register state
    // is a sequential dependence chain)…
    for monitor in &lba::MONITORS {
        if monitor.shardable {
            for shards in SHARD_COUNTS {
                let row = format!(
                    "\"mode\": \"live-parallel\", \"lifeguard\": \"{}\", \
                     \"benchmark\": \"gzip\", \"batched\": true, \"shards\": {shards}",
                    monitor.name
                );
                if !json.contains(&row) {
                    return Err(format!(
                        "missing live-parallel/{} at {shards} shards",
                        monitor.name
                    ));
                }
            }
        } else if json.contains(&format!(
            "\"mode\": \"live-parallel\", \"lifeguard\": \"{}\"",
            monitor.name
        )) {
            return Err(format!(
                "{} must stay out of the sharded series",
                monitor.name
            ));
        }
    }

    // …the remote series mirrors the live-parallel coverage (same
    // shardable-only eligibility, same worker counts) and its wire bits
    // must be *byte-identical* to the matching live-parallel row: the
    // socket hop is a transport, not a re-encode, so the exact same
    // sealed frames cross it…
    for monitor in &lba::MONITORS {
        if monitor.shardable {
            for workers in SHARD_COUNTS {
                let tag = format!(
                    "\"mode\": \"remote\", \"lifeguard\": \"{}\", \
                     \"benchmark\": \"gzip\", \"batched\": true, \"shards\": {workers}",
                    monitor.name
                );
                let Some(remote_row) = json.lines().find(|l| l.contains(&tag)) else {
                    return Err(format!(
                        "missing remote/{} at {workers} workers",
                        monitor.name
                    ));
                };
                let lp_tag = format!(
                    "\"mode\": \"live-parallel\", \"lifeguard\": \"{}\", \
                     \"benchmark\": \"gzip\", \"batched\": true, \"shards\": {workers}",
                    monitor.name
                );
                let lp_row = json.lines().find(|l| l.contains(&lp_tag)).ok_or_else(|| {
                    format!("missing live-parallel twin for remote/{}", monitor.name)
                })?;
                let remote_wire = row_u64(remote_row, "wire_bits")?;
                let lp_wire = row_u64(lp_row, "wire_bits")?;
                if remote_wire != lp_wire {
                    return Err(format!(
                        "remote/{} at {workers} workers shipped {remote_wire} wire bits, \
                         but live-parallel shipped {lp_wire}: the socket must carry the \
                         identical sealed stream",
                        monitor.name
                    ));
                }
            }
        } else if json.contains(&format!(
            "\"mode\": \"remote\", \"lifeguard\": \"{}\"",
            monitor.name
        )) {
            return Err(format!(
                "{} must stay out of the remote series",
                monitor.name
            ));
        }
    }

    // …the epoch-parallel series covers both execution models at every
    // worker count (workers ride the shards column)…
    for mode in ["taint-parallel", "live-taint-parallel"] {
        for workers in EPOCH_WORKER_COUNTS {
            let row = format!(
                "\"mode\": \"{mode}\", \"lifeguard\": \"taintcheck\", \
                 \"benchmark\": \"gzip\", \"batched\": true, \"shards\": {workers}"
            );
            if !json.contains(&row) {
                return Err(format!("missing {mode} at {workers} workers"));
            }
        }
    }
    // …and the 4-worker modeled row delivers the speedup the epoch mode
    // exists for: at least EPOCH_SPEEDUP_FLOOR fewer modeled cycles than
    // the sequential TaintCheck co-simulation.
    let sequential_row = json
        .lines()
        .find(|l| {
            l.contains(
                "\"mode\": \"lba\", \"lifeguard\": \"taintcheck\", \"benchmark\": \"gzip\", \
                 \"batched\": true, \"shards\": 1, \"window\": 0,",
            )
        })
        .ok_or("missing sequential lba/taintcheck row")?;
    let parallel_row = json
        .lines()
        .find(|l| {
            l.contains("\"mode\": \"taint-parallel\", \"lifeguard\": \"taintcheck\"")
                && l.contains("\"shards\": 4,")
        })
        .ok_or("missing taint-parallel row at 4 workers")?;
    let sequential_cycles = row_u64(sequential_row, "modeled_cycles")?;
    let parallel_cycles = row_u64(parallel_row, "modeled_cycles")?;
    if parallel_cycles == 0 {
        return Err("taint-parallel row carries no modeled cycles".into());
    }
    let speedup = sequential_cycles as f64 / parallel_cycles as f64;
    if speedup < EPOCH_SPEEDUP_FLOOR {
        return Err(format!(
            "epoch-parallel TaintCheck at 4 workers must be >= {EPOCH_SPEEDUP_FLOOR}x the \
             sequential modeled cycles, got {speedup:.2}x \
             ({sequential_cycles} vs {parallel_cycles})"
        ));
    }

    // …and the filtered-vs-unfiltered series covers every lifeguard whose
    // soundness contract participates in capture-side dedup, through both
    // single-lifeguard modes, demonstrably shrinking the shipped log.
    let find_row = |mode: &str, lifeguard: &str, window: usize| -> Result<&str, String> {
        let tag = format!(
            "\"mode\": \"{mode}\", \"lifeguard\": \"{lifeguard}\", \"benchmark\": \"gzip\", \
             \"batched\": true, \"shards\": 1, \"window\": {window},"
        );
        json.lines()
            .find(|l| l.contains(&tag))
            .ok_or_else(|| format!("missing {mode}/{lifeguard} row at window {window}"))
    };
    let idempotent: Vec<&'static str> = idempotent_lifeguards()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    for mode in ["lba", "live"] {
        for &lifeguard in &idempotent {
            let filtered = find_row(mode, lifeguard, IDEMPOTENT_WINDOW)?;
            let unfiltered = find_row(mode, lifeguard, 0)?;
            let what = format!("{mode}/{lifeguard}");
            if row_u64(filtered, "records")? >= row_u64(unfiltered, "records")? {
                return Err(format!("{what}: filtering must ship fewer records"));
            }
            // Fewer records must also mean fewer bits, for *every*
            // contract. This pins the compressor's dedup-awareness: the
            // holes suppression punches in the record stream make the
            // admitted successor of a PC alternate among a small recent
            // set, and the MRU successor stack keeps each alternation a
            // couple of bits instead of a varint escape. A regression
            // here means a heavily-deduped stream (LockSet's
            // exact-address window) ships more wire than the unfiltered
            // run again.
            if row_u64(filtered, "wire_bits")? >= row_u64(unfiltered, "wire_bits")? {
                return Err(format!("{what}: filtering must ship fewer wire bits"));
            }
        }
    }
    for (name, _) in lifeguards() {
        if idempotent.contains(&name) {
            continue;
        }
        let windowed = json
            .lines()
            .filter(|l| l.contains(&format!("\"lifeguard\": \"{name}\"")))
            .any(|l| row_field(l, "window") != Some("0"));
        if windowed {
            return Err(format!(
                "{name} declares IdempotencyClass::None; it has no filtered row"
            ));
        }
    }

    // …and the adaptive-degradation series covers every lifeguard whose
    // degradation contract tolerates anything, through both
    // single-lifeguard modes. The claim being gated: under the identical
    // injected fault profile, the controller-on row relieves the choked
    // channel instead of merely recording that it was choked. Three
    // deterministic legs, one per axis the relief shows on:
    //
    // * every degraded row ships strictly fewer wire bits than its
    //   uncontrolled counterpart — true even for LockSet's widen-only
    //   contract, whose whole relief is the widened dedup window;
    // * the cosim pair is judged on *modeled* cycles — the slow drain
    //   there is modeled, so its cost is invisible to the host wall
    //   clock (the same reason the epoch-parallel gate uses this
    //   column), while the modeled producer stalls it causes are
    //   exactly what shipping fewer bits relieves;
    // * the live pairs whose contracts sample are judged on host
    //   events/sec — the drag there burns real consumer time per frame,
    //   so thinning the stream must buy real throughput.
    let degraded_row = |mode: &str, suffix: &str, lifeguard: &str| -> Result<&str, String> {
        let tag = format!("\"mode\": \"{mode}-{suffix}\", \"lifeguard\": \"{lifeguard}\"");
        json.lines()
            .find(|l| l.contains(&tag))
            .ok_or_else(|| format!("missing {mode}-{suffix}/{lifeguard} row"))
    };
    let degradable: Vec<&'static str> = degradable_lifeguards()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    for mode in ["lba", "live"] {
        for &lifeguard in &degradable {
            let degraded = degraded_row(mode, "degraded", lifeguard)?;
            let faulted = degraded_row(mode, "faulted", lifeguard)?;
            let what = format!("{mode}/{lifeguard}");
            if row_u64(degraded, "wire_bits")? >= row_u64(faulted, "wire_bits")? {
                return Err(format!("{what}: degradation must relieve the wire"));
            }
            if row_f64(faulted, "sampled_out_fraction")? != 0.0 {
                return Err(format!("{what}: no controller, nothing sampled out"));
            }
            let fraction = row_f64(degraded, "sampled_out_fraction")?;
            // A contract that declares no sampling (LockSet: a
            // sampled-out access could be a fresh word's first touch)
            // must show none; the rest must actually thin the stream.
            let samples = lifeguards()
                .into_iter()
                .find(|(name, _)| *name == lifeguard)
                .is_some_and(|(_, make)| make().degradation().sampling.is_some());
            if !samples {
                if fraction != 0.0 {
                    return Err(format!("{what}: {lifeguard} declares no sampling"));
                }
            } else if fraction <= 0.0 {
                return Err(format!("{what}: sampling must bite, got {fraction}"));
            }
            if mode == "lba" {
                let controlled = row_u64(degraded, "modeled_cycles")?;
                let uncontrolled = row_u64(faulted, "modeled_cycles")?;
                if controlled == 0 || uncontrolled == 0 {
                    return Err(format!("{what}: cosim rows must carry modeled cycles"));
                }
                if controlled > uncontrolled {
                    return Err(format!(
                        "{what}: degraded capture must not cost modeled cycles under the \
                         same injected load, got {controlled} vs {uncontrolled}"
                    ));
                }
            } else if fraction > 0.0 {
                let controlled = row_f64(degraded, "events_per_sec")?;
                let uncontrolled = row_f64(faulted, "events_per_sec")?;
                if controlled < uncontrolled {
                    return Err(format!(
                        "{what}: degraded capture must beat the uncontrolled run under \
                         the same injected load, got {controlled:.0} vs {uncontrolled:.0} \
                         events/sec"
                    ));
                }
            }
        }
    }
    for (name, _) in lifeguards() {
        if degradable.contains(&name) {
            continue;
        }
        for suffix in ["degraded", "faulted"] {
            if json.contains(&format!("-{suffix}\", \"lifeguard\": \"{name}\"")) {
                return Err(format!(
                    "{name} declares DegradationPolicy::none(); it has no degraded row"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mode: &'static str, batched: bool, shards: usize, events_per_sec: f64) -> PipelineRow {
        PipelineRow {
            mode,
            lifeguard: "addrcheck",
            benchmark: "gzip",
            batched,
            shards,
            window: 0,
            records: 10,
            wire_bits: 800,
            wall_seconds: 10.0 / events_per_sec,
            events_per_sec,
            modeled_cycles: 0,
            sampled_out_fraction: 0.0,
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![row("lba", true, 1, 20.0), row("lba", false, 1, 10.0)];
        let json = pipeline_json(&rows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"mode\"").count(), 2, "one per row");
        assert_eq!(
            json.matches("\"shards\"").count(),
            2,
            "every row carries its shard count"
        );
        assert!(!json.contains(",\n  ]"), "no trailing comma");
        assert_eq!(speedup(&rows, "lba", "addrcheck"), Some(2.0));
        let table = render_pipeline(&rows);
        assert!(table.contains("frame-batched"));
        assert!(table.contains("2.00x vs per-record"));
    }

    #[test]
    fn shard_speedup_compares_against_one_shard() {
        let rows = vec![
            row("live-parallel", true, 1, 10.0),
            row("live-parallel", true, 2, 15.0),
            row("live-parallel", true, 4, 30.0),
        ];
        assert_eq!(shard_speedup(&rows, "addrcheck", 4), Some(3.0));
        assert_eq!(shard_speedup(&rows, "lockset", 4), None);
        let table = render_pipeline(&rows);
        assert!(table.contains("3.00x vs 1 shard"));
    }

    #[test]
    fn socket_overhead_compares_against_the_in_process_twin() {
        let rows = vec![
            row("live-parallel", true, 2, 20.0),
            row("remote", true, 2, 15.0),
        ];
        assert_eq!(socket_overhead(&rows, "addrcheck", 2), Some(0.75));
        assert_eq!(
            socket_overhead(&rows, "addrcheck", 4),
            None,
            "unmeasured count"
        );
        let table = render_pipeline(&rows);
        assert!(table.contains("0.75x vs in-process"), "got:\n{table}");
    }

    #[test]
    fn dedup_speedup_compares_against_the_unfiltered_cell() {
        let mut filtered = row("lba", true, 1, 30.0);
        filtered.window = IDEMPOTENT_WINDOW;
        filtered.records = 4;
        let rows = vec![row("lba", true, 1, 10.0), filtered];
        assert_eq!(dedup_speedup(&rows, "lba", "addrcheck"), Some(3.0));
        assert_eq!(dedup_speedup(&rows, "live", "addrcheck"), None);
        let table = render_pipeline(&rows);
        assert!(table.contains("3.00x vs unfiltered"));
        // The batched-vs-per-record speedup must ignore windowed rows.
        assert_eq!(speedup(&rows, "lba", "addrcheck"), None);
    }

    #[test]
    fn epoch_speedup_compares_modeled_cycles_against_sequential() {
        let mut sequential = row("lba", true, 1, 10.0);
        sequential.lifeguard = "taintcheck";
        sequential.modeled_cycles = 3000;
        let mut two = row("taint-parallel", true, 2, 10.0);
        two.lifeguard = "taintcheck";
        two.modeled_cycles = 2000;
        let mut four = row("taint-parallel", true, 4, 10.0);
        four.lifeguard = "taintcheck";
        four.modeled_cycles = 1500;
        let rows = vec![sequential, two, four];
        assert_eq!(epoch_speedup(&rows, 2), Some(1.5));
        assert_eq!(epoch_speedup(&rows, 4), Some(2.0));
        assert_eq!(epoch_speedup(&rows, 8), None, "unmeasured worker count");
        let table = render_pipeline(&rows);
        assert!(table.contains("2.00x vs sequential"), "got:\n{table}");
        // The json round-trips the modeled cycles for the gate to read.
        let json = pipeline_json(&rows);
        assert!(json.contains("\"modeled_cycles\": 1500"));
    }

    #[test]
    fn row_field_extracts_values() {
        let line = "    {\"mode\": \"lba\", \"lifeguard\": \"addrcheck\", \"window\": 4096, \
                    \"records\": 12, \"events_per_sec\": 17}";
        assert_eq!(row_field(line, "mode"), Some("lba"));
        assert_eq!(row_field(line, "window"), Some("4096"));
        assert_eq!(row_field(line, "events_per_sec"), Some("17"));
        assert_eq!(row_field(line, "absent"), None);
        assert_eq!(row_u64(line, "records"), Ok(12));
    }

    #[test]
    fn trajectory_keys_identify_rows() {
        let mut filtered = row("lba", true, 1, 30.0);
        filtered.window = IDEMPOTENT_WINDOW;
        let rows = vec![row("lba", true, 1, 10.0), filtered];
        let keys = trajectory_keys(&pipeline_json(&rows)).expect("well-formed");
        assert_eq!(keys.len(), 2, "window distinguishes the rows");
        // Same schema, different numbers: keys are equal.
        let faster: Vec<PipelineRow> = rows
            .iter()
            .cloned()
            .map(|mut r| {
                r.events_per_sec *= 2.0;
                r
            })
            .collect();
        assert_eq!(keys, trajectory_keys(&pipeline_json(&faster)).unwrap());
        // A dropped series changes the key set.
        assert_ne!(keys, trajectory_keys(&pipeline_json(&rows[..1])).unwrap());
    }

    #[test]
    fn validate_trajectory_rejects_malformed_documents() {
        assert!(validate_trajectory("{}").is_err(), "no headers");
        let rows = vec![row("lba", true, 1, 10.0)];
        let err = validate_trajectory(&pipeline_json(&rows)).unwrap_err();
        assert!(err.contains("missing series"), "got: {err}");
    }
}
