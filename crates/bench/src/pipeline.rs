//! End-to-end pipeline throughput: host wall-clock events/sec.
//!
//! Everything else in the reproduction reports *modeled* cycles; this
//! module measures how fast the simulator itself moves events, which is
//! the ROADMAP's "as fast as the hardware allows" axis. The same rows feed
//! three places:
//!
//! * the `pipeline` Criterion bench (`cargo bench -p lba-bench --bench
//!   pipeline`), which compares the frame-granular default against the
//!   pre-batching per-record path kept callable via
//!   `LogConfig::batch_dispatch = false`;
//! * the `figures` binary, which appends the rows to its report;
//! * `BENCH_pipeline.json`, the committed trajectory file every future PR
//!   re-generates to show where host throughput moved.

use std::time::Instant;

use lba::{run_lba, run_live, run_live_parallel, SystemConfig};
use lba_cache::{MemSystem, MemSystemConfig};
use lba_cpu::Machine;
use lba_lifeguard::{DispatchEngine, Lifeguard};
use lba_lifeguards::{AddrCheck, LockSet, MemProfile, TaintCheck};
use lba_record::EventRecord;
use lba_transport::{LogChannel, ModeledFrameChannel};
use lba_workloads::Benchmark;

/// A lifeguard factory used by the measurement matrix.
pub type LifeguardFactory = fn() -> Box<dyn Lifeguard>;

/// The four lifeguards as (name, factory) pairs — `LifeguardKind` covers
/// the paper's three; the pipeline bench also drives MemProfile.
#[must_use]
pub fn lifeguards() -> Vec<(&'static str, LifeguardFactory)> {
    vec![
        ("addrcheck", || Box::new(AddrCheck::new())),
        ("taintcheck", || Box::new(TaintCheck::new())),
        ("lockset", || Box::new(LockSet::new())),
        ("memprofile", || Box::new(MemProfile::new())),
    ]
}

/// The lifeguards the sharded (parallel) modes support — those whose
/// per-address state is independent, so address-interleaved routing is
/// sound. TaintCheck is excluded: its register state forms a sequential
/// dependence chain through every instruction (same soundness note as the
/// modeled `run_lba_parallel`).
#[must_use]
pub fn sharded_lifeguards() -> Vec<(&'static str, LifeguardFactory)> {
    vec![
        ("addrcheck", || Box::new(AddrCheck::new())),
        ("lockset", || Box::new(LockSet::new())),
    ]
}

/// Shard counts the live-parallel series measures.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One throughput measurement.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Execution mode: `"lba"` (deterministic co-simulation), `"live"`
    /// (two OS threads), `"live-parallel"` (1 producer + N consumer
    /// threads), or `"consume"` (isolated consumption path).
    pub mode: &'static str,
    /// Lifeguard name.
    pub lifeguard: &'static str,
    /// Benchmark program.
    pub benchmark: &'static str,
    /// Whether consumption was frame-granular (the default) or the
    /// per-record baseline.
    pub batched: bool,
    /// Lifeguard shard count (1 for the unsharded modes).
    pub shards: usize,
    /// Log records consumed.
    pub records: u64,
    /// Best-of-N wall-clock seconds.
    pub wall_seconds: f64,
    /// Records per wall-clock second.
    pub events_per_sec: f64,
}

/// Best-of-`n` wall time of `body` (the min estimator is robust to
/// scheduler noise on shared machines), with the record count it reports.
fn best_of<F: FnMut() -> u64>(n: usize, mut body: F) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut records = 0;
    for _ in 0..n {
        let start = Instant::now();
        records = body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (records, best)
}

fn config(batched: bool) -> SystemConfig {
    let mut config = SystemConfig::default();
    config.log.batch_dispatch = batched;
    config
}

/// Runs the full measurement matrix: both execution modes, all four
/// lifeguards on gzip, batched and per-record, the live-parallel series
/// across shard counts, plus the isolated consumption-path pair.
/// `samples` is the best-of-N count per cell.
#[must_use]
pub fn measure_pipeline(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let mut rows = measure_consume(samples);
    for (name, make) in lifeguards() {
        for batched in [true, false] {
            let cfg = config(batched);
            let (records, wall) = best_of(samples, || {
                let mut lg = make();
                run_lba(&program, lg.as_mut(), &cfg)
                    .expect("gzip runs clean")
                    .log
                    .records
            });
            rows.push(PipelineRow {
                mode: "lba",
                lifeguard: name,
                benchmark: "gzip",
                batched,
                shards: 1,
                records,
                wall_seconds: wall,
                events_per_sec: records as f64 / wall,
            });
            let (records, wall) = best_of(samples, || {
                let mut lg = make();
                run_live(&program, lg.as_mut(), &cfg)
                    .expect("gzip runs clean")
                    .log
                    .records
            });
            rows.push(PipelineRow {
                mode: "live",
                lifeguard: name,
                benchmark: "gzip",
                batched,
                shards: 1,
                records,
                wall_seconds: wall,
                events_per_sec: records as f64 / wall,
            });
        }
    }
    rows.extend(measure_live_parallel(samples));
    rows
}

/// The live-parallel series: events/sec through `run_live_parallel` on
/// gzip for every supported lifeguard at each shard count. Events are
/// *retired records* — the same work whatever the shard count — so the
/// rate is comparable across shard counts and with the unsharded live
/// series. (Broadcast records are shipped once per shard, but that is
/// transport duplication, not new events; counting it would manufacture
/// phantom speedup from duplicated work.) Consumption stays on the
/// default frame-granular path.
#[must_use]
pub fn measure_live_parallel(samples: usize) -> Vec<PipelineRow> {
    let program = Benchmark::Gzip.build();
    let cfg = config(true);
    let mut rows = Vec::new();
    for (name, make) in sharded_lifeguards() {
        for shards in SHARD_COUNTS {
            let (records, wall) = best_of(samples, || {
                run_live_parallel(&program, make, shards, &cfg)
                    .expect("gzip runs clean")
                    .trace
                    .instructions()
            });
            rows.push(PipelineRow {
                mode: "live-parallel",
                lifeguard: name,
                benchmark: "gzip",
                batched: true,
                shards,
                records,
                wall_seconds: wall,
                events_per_sec: records as f64 / wall,
            });
        }
    }
    rows
}

/// Captures gzip's record stream once (for the consumption-path cells).
#[must_use]
pub fn capture_stream() -> Vec<EventRecord> {
    let program = Benchmark::Gzip.build();
    let cfg = SystemConfig::default();
    let mut machine = Machine::new(&program, cfg.machine);
    let mut mem = MemSystem::new(cfg.mem_single());
    let mut records = Vec::new();
    machine
        .run(&mut mem, |r| records.push(r.record))
        .expect("gzip runs clean");
    records
}

/// Fills a channel with the whole stream. The per-record baseline decodes
/// on pop, so it gets the software-decoding channel; the batched path gets
/// the zero-copy one — the same pairing `run_lba` wires up.
fn fill_channel(records: &[EventRecord], batched: bool) -> ModeledFrameChannel {
    let fc = SystemConfig::default().log.frame_config();
    let mut ch = if batched {
        ModeledFrameChannel::zero_copy(1 << 26, fc, false)
    } else {
        ModeledFrameChannel::new(1 << 26, fc, false)
    };
    for (i, rec) in records.iter().enumerate() {
        ch.push_record(rec, i as u64);
    }
    ch.flush(records.len() as u64);
    ch
}

/// Pushes the stream and consumes it per-record (`pop_record` +
/// `deliver`); returns the lifeguard cycles charged.
#[must_use]
pub fn consume_per_record(records: &[EventRecord]) -> u64 {
    let mut ch = fill_channel(records, false);
    let engine = DispatchEngine::default();
    let mut mem = MemSystem::new(MemSystemConfig::dual_core());
    let mut lg = AddrCheck::new();
    let mut findings = Vec::new();
    let mut cycles = 0;
    while let Some(popped) = ch.pop_record() {
        cycles += engine.deliver(&mut lg, &popped.record, &mut mem, 1, &mut findings);
    }
    cycles
}

/// Pushes the stream and consumes it frame-at-a-time (`pop_frame` +
/// `deliver_batch`); returns the lifeguard cycles charged.
#[must_use]
pub fn consume_batched(records: &[EventRecord]) -> u64 {
    let mut ch = fill_channel(records, true);
    let engine = DispatchEngine::default();
    let mut mem = MemSystem::new(MemSystemConfig::dual_core());
    let mut lg = AddrCheck::new();
    let mut findings = Vec::new();
    let mut cycles = 0;
    while let Some(frame) = ch.pop_frame() {
        cycles += engine.deliver_batch(&mut lg, frame.records, &mut mem, 1, &mut findings);
    }
    cycles
}

/// The isolated consumption-path cells: identical pre-captured stream and
/// channel fill, only the consumption granularity differs — the purest
/// contrast between the batched path and the pre-change per-record path.
#[must_use]
pub fn measure_consume(samples: usize) -> Vec<PipelineRow> {
    let stream = capture_stream();
    assert_eq!(
        consume_per_record(&stream),
        consume_batched(&stream),
        "consumption paths must charge identical cycles"
    );
    let n = stream.len() as u64;
    let mut rows = Vec::new();
    for batched in [true, false] {
        let (_, wall) = best_of(samples, || {
            if batched {
                consume_batched(&stream)
            } else {
                consume_per_record(&stream)
            }
        });
        rows.push(PipelineRow {
            mode: "consume",
            lifeguard: "addrcheck",
            benchmark: "gzip",
            batched,
            shards: 1,
            records: n,
            wall_seconds: wall,
            events_per_sec: n as f64 / wall,
        });
    }
    rows
}

/// The headline ratio: batched over per-record events/sec for one
/// mode+lifeguard pair, if both rows are present.
#[must_use]
pub fn speedup(rows: &[PipelineRow], mode: &str, lifeguard: &str) -> Option<f64> {
    let find = |batched: bool| {
        rows.iter().find(|r| {
            r.mode == mode && r.lifeguard == lifeguard && r.batched == batched && r.records > 0
        })
    };
    let batched = find(true)?;
    let baseline = find(false)?;
    Some(batched.events_per_sec / baseline.events_per_sec)
}

/// The sharded ratio: a live-parallel row's events/sec over the one-shard
/// row of the same lifeguard, if both are present. On genuinely parallel
/// hardware this is the scaling curve; on a 1-vCPU box it hovers near (or
/// below) 1.0 because the threads cannot overlap.
#[must_use]
pub fn shard_speedup(rows: &[PipelineRow], lifeguard: &str, shards: usize) -> Option<f64> {
    let find = |shards: usize| {
        rows.iter()
            .find(|r| r.mode == "live-parallel" && r.lifeguard == lifeguard && r.shards == shards)
    };
    let sharded = find(shards)?;
    let single = find(1)?;
    Some(sharded.events_per_sec / single.events_per_sec)
}

/// Renders the pipeline-throughput table.
#[must_use]
pub fn render_pipeline(rows: &[PipelineRow]) -> String {
    use lba::table::TextTable;
    let mut t = TextTable::new([
        "mode",
        "lifeguard",
        "benchmark",
        "path",
        "shards",
        "Mevents/s",
        "speedup",
    ]);
    for row in rows {
        let speedup = if row.mode == "live-parallel" && row.shards > 1 {
            shard_speedup(rows, row.lifeguard, row.shards)
                .map_or(String::new(), |s| format!("{s:.2}x vs 1 shard"))
        } else if row.batched {
            speedup(rows, row.mode, row.lifeguard)
                .map_or(String::new(), |s| format!("{s:.2}x vs per-record"))
        } else {
            String::new()
        };
        t.row([
            row.mode.to_string(),
            row.lifeguard.to_string(),
            row.benchmark.to_string(),
            if row.batched {
                "frame-batched".to_string()
            } else {
                "per-record".to_string()
            },
            row.shards.to_string(),
            format!("{:.2}", row.events_per_sec / 1e6),
            speedup,
        ]);
    }
    format!("Pipeline host throughput (wall clock, best-of-N)\n{t}")
}

/// Serializes the rows as the `BENCH_pipeline.json` trajectory document.
/// Hand-rolled JSON: the environment is air-gapped, so no serde.
#[must_use]
pub fn pipeline_json(rows: &[PipelineRow]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"pipeline\",\n  \"unit\": \"events_per_sec\",\n  \"results\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"lifeguard\": \"{}\", \"benchmark\": \"{}\", \"batched\": {}, \"shards\": {}, \"records\": {}, \"wall_seconds\": {:.6}, \"events_per_sec\": {:.0}}}{sep}\n",
            row.mode, row.lifeguard, row.benchmark, row.batched, row.shards, row.records, row.wall_seconds, row.events_per_sec,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mode: &'static str, batched: bool, shards: usize, events_per_sec: f64) -> PipelineRow {
        PipelineRow {
            mode,
            lifeguard: "addrcheck",
            benchmark: "gzip",
            batched,
            shards,
            records: 10,
            wall_seconds: 10.0 / events_per_sec,
            events_per_sec,
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![row("lba", true, 1, 20.0), row("lba", false, 1, 10.0)];
        let json = pipeline_json(&rows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"mode\"").count(), 2, "one per row");
        assert_eq!(
            json.matches("\"shards\"").count(),
            2,
            "every row carries its shard count"
        );
        assert!(!json.contains(",\n  ]"), "no trailing comma");
        assert_eq!(speedup(&rows, "lba", "addrcheck"), Some(2.0));
        let table = render_pipeline(&rows);
        assert!(table.contains("frame-batched"));
        assert!(table.contains("2.00x vs per-record"));
    }

    #[test]
    fn shard_speedup_compares_against_one_shard() {
        let rows = vec![
            row("live-parallel", true, 1, 10.0),
            row("live-parallel", true, 2, 15.0),
            row("live-parallel", true, 4, 30.0),
        ];
        assert_eq!(shard_speedup(&rows, "addrcheck", 4), Some(3.0));
        assert_eq!(shard_speedup(&rows, "lockset", 4), None);
        let table = render_pipeline(&rows);
        assert!(table.contains("3.00x vs 1 shard"));
    }
}
