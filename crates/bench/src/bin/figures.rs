//! Regenerates every table and figure from the paper's evaluation, plus
//! the host-throughput trajectory (`BENCH_pipeline.json` in the working
//! directory — committed at the repo root so every PR shows where
//! events/sec moved).
//!
//! Usage: `cargo run --release -p lba-bench --bin figures [scale]`
//!
//! `scale` multiplies every benchmark's iteration counts (default 1).
//!
//! `figures --bench-smoke` is the CI gate: it records a run through the
//! flight recorder and replays it (requiring byte-identical findings and
//! wire accounting, recording left at `target/flight-recording` for the
//! artifact upload), round-trips a sharded run over Unix-domain sockets
//! (`RunMode::Remote`, requiring findings and per-shard wire accounting
//! identical to the in-process `RunMode::LiveParallel`), measures the
//! pipeline matrix once, writes
//! `BENCH_pipeline.smoke.json` next to the committed trajectory
//! (uploaded as a workflow artifact), validates the emitted document
//! with the same `lba_bench::pipeline::validate_trajectory` shape check
//! `tests/figures_smoke.rs` runs on the committed file, and fails if the
//! emitted *schema* (the set of series/cells) diverges from the
//! committed one — so a PR cannot silently drop or mutate a series
//! without regenerating the trajectory.

use lba::experiment;
use lba::{LifeguardKind, RecordConfig, ReplayMode, Run, RunMode, RunOutcome, SystemConfig};
use lba_bench as render;
use lba_bench::pipeline;
use lba_workloads::{bugs, Benchmark};

/// The committed trajectory and its CI smoke sibling, anchored to the
/// workspace root regardless of the invocation directory.
const TRAJECTORY: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
const SMOKE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_pipeline.smoke.json"
);
/// Where `--bench-smoke` leaves its replay-verified flight recording —
/// uploaded as a CI artifact so every run ships an actual `lbas/1` stream.
const RECORDING: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/flight-recording");

/// The `--bench-smoke` flight-recorder gate: record a run, replay the
/// recording, and require findings and wire-bit accounting byte-identical
/// to the live run. The recording is left at [`RECORDING`] for the CI
/// artifact upload.
fn record_replay_smoke() -> Result<(), String> {
    let dir = std::path::Path::new(RECORDING);
    std::fs::remove_dir_all(dir).ok();
    let program = bugs::data_race();
    let mut config = SystemConfig::default();
    config.log.record_to = Some(RecordConfig::new(dir));
    let recorded = Run::new(&program)
        .monitor(LifeguardKind::AddrCheck)
        .config(&config)
        .run()
        .map_err(|e| format!("recording run: {e}"))?;

    let outcome = Run::new(&program)
        .mode(RunMode::Replay)
        .monitor(LifeguardKind::AddrCheck)
        .config(&config)
        .replay_from(dir)
        .run()
        .map_err(|e| format!("replay: {e}"))?;
    if outcome.findings != recorded.findings {
        return Err("replayed findings diverge from the recorded run".into());
    }
    let RunOutcome::Replay(replay) = &outcome else {
        return Err("RunMode::Replay produced a non-replay outcome".into());
    };
    if replay.total_wire_bits() != recorded.log.wire_bits
        || replay.total_records() != recorded.log.records
    {
        return Err(format!(
            "replay accounting diverges: {} wire bits / {} records vs recorded {} / {}",
            replay.total_wire_bits(),
            replay.total_records(),
            recorded.log.wire_bits,
            recorded.log.records,
        ));
    }
    println!(
        "flight recording at {RECORDING} replays byte-identical \
         ({} wire bits, {} findings)",
        recorded.log.wire_bits,
        replay.findings.len()
    );
    Ok(())
}

/// The `--bench-smoke` fault-injection gate: under the same injected
/// slow-drain the degraded trajectory rows are measured with, the
/// adaptive controller must engage, the degraded findings must equal the
/// undegraded run's byte for byte, a recording made while degraded must
/// carry its spans into replay, and a torn recording tail must salvage
/// under `ReplayMode::SalvagePrefix` where strict replay refuses.
fn fault_injection_smoke() -> Result<(), String> {
    let program = Benchmark::Gzip.build();
    let clean_config = SystemConfig::default();
    let clean = Run::new(&program)
        .monitor(LifeguardKind::AddrCheck)
        .config(&clean_config)
        .run()
        .map_err(|e| format!("clean run: {e}"))?;

    let dir = std::env::temp_dir().join(format!("lba-fault-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut config = pipeline::fault_config("lba", true);
    config.log.record_to = Some(RecordConfig::new(&dir));
    let degraded = Run::new(&program)
        .monitor(LifeguardKind::AddrCheck)
        .config(&config)
        .run()
        .map_err(|e| format!("degraded run: {e}"))?;
    if degraded.degradation.is_empty() {
        return Err("injected slow drain failed to engage the controller".into());
    }
    if degraded.findings != clean.findings {
        return Err(format!(
            "degraded findings diverge from the undegraded run \
             ({} vs {} findings)",
            degraded.findings.len(),
            clean.findings.len()
        ));
    }

    let outcome = Run::new(&program)
        .mode(RunMode::Replay)
        .monitor(LifeguardKind::AddrCheck)
        .config(&config)
        .replay_from(&dir)
        .run()
        .map_err(|e| format!("replay: {e}"))?;
    if outcome.findings != degraded.findings {
        return Err("replay of the degraded recording diverges from the degraded run".into());
    }
    let RunOutcome::Replay(replay) = &outcome else {
        return Err("RunMode::Replay produced a non-replay outcome".into());
    };
    if replay.total_degraded_frames() == 0 {
        return Err("degraded spans did not ride the flight-recorder stream".into());
    }

    // Tear the newest segment's tail: strict replay must refuse, salvage
    // must deliver the checksummed prefix and report the loss.
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .map(|entry| entry.expect("readable dir entry").path())
        .collect();
    segments.sort();
    let last = segments.last().ok_or("recording left no segments")?;
    let bytes = std::fs::read(last).map_err(|e| format!("{}: {e}", last.display()))?;
    std::fs::write(last, &bytes[..bytes.len() - 11]).map_err(|e| e.to_string())?;
    let strict = Run::new(&program)
        .mode(RunMode::Replay)
        .monitor(LifeguardKind::AddrCheck)
        .config(&config)
        .replay_from(&dir);
    if strict.run().is_ok() {
        return Err("strict replay accepted a torn recording".into());
    }
    let salvage = Run::new(&program)
        .mode(RunMode::Replay)
        .monitor(LifeguardKind::AddrCheck)
        .config(&config)
        .replay_from(&dir)
        .replay_mode(ReplayMode::SalvagePrefix)
        .run()
        .map_err(|e| format!("salvage replay: {e}"))?;
    let RunOutcome::Replay(salvaged) = &salvage else {
        return Err("RunMode::Replay produced a non-replay outcome".into());
    };
    if !salvaged.is_lossy() {
        return Err("salvage replay of a torn recording reported no loss".into());
    }
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "fault-injection smoke: controller engaged ({} records removed), findings \
         identical, {} degraded frame(s) replayed, torn tail salvaged at frame {}",
        degraded.degradation.removed(),
        replay.total_degraded_frames(),
        salvaged.salvaged[0].frames_salvaged,
    );
    Ok(())
}

/// The `--bench-smoke` socket-transport gate: the same sharded program
/// through `RunMode::Remote` (every shard's sealed frames crossing a real
/// Unix-domain socket under the credit window) and `RunMode::LiveParallel`
/// (in-process channels) must produce identical merged findings and
/// identical per-shard wire accounting — the socket hop is a transport,
/// not a re-encode.
fn socket_transport_smoke() -> Result<(), String> {
    let program = Benchmark::Gzip.build();
    let config = SystemConfig::default();
    let workers = 2;
    let request = |mode| {
        Run::new(&program)
            .mode(mode)
            .monitor(LifeguardKind::AddrCheck)
            .workers(workers)
            .config(&config)
    };
    let remote = request(RunMode::Remote)
        .run()
        .map_err(|e| format!("remote run: {e}"))?;
    let live = request(RunMode::LiveParallel)
        .run()
        .map_err(|e| format!("live-parallel run: {e}"))?;
    if remote.findings != live.findings {
        return Err("remote findings diverge from live-parallel".into());
    }
    let (RunOutcome::Remote(remote), RunOutcome::LiveParallel(live)) = (&remote, &live) else {
        return Err("builder returned unexpected outcome variants".into());
    };
    if remote.shard_log.len() != live.shard_log.len() {
        return Err(format!(
            "remote ran {} shard streams, live-parallel {}",
            remote.shard_log.len(),
            live.shard_log.len()
        ));
    }
    for (shard, (r, l)) in remote.shard_log.iter().zip(&live.shard_log).enumerate() {
        if (r.records, r.frames, r.wire_bits, r.payload_bits)
            != (l.records, l.frames, l.wire_bits, l.payload_bits)
        {
            return Err(format!(
                "shard {shard} wire accounting diverges over the socket: \
                 {} records / {} frames / {} wire bits vs in-process \
                 {} / {} / {}",
                r.records, r.frames, r.wire_bits, l.records, l.frames, l.wire_bits,
            ));
        }
    }
    println!(
        "socket transport smoke: {workers} workers over Unix-domain sockets, \
         findings and per-shard wire accounting identical to in-process \
         ({} wire bits, {} findings)",
        remote.total_wire_bits(),
        remote.findings.len()
    );
    Ok(())
}

/// The `--bench-smoke` mode; returns the process exit code.
fn bench_smoke() -> i32 {
    if let Err(e) = record_replay_smoke() {
        eprintln!("flight-recorder smoke failed: {e}");
        return 1;
    }
    if let Err(e) = fault_injection_smoke() {
        eprintln!("fault-injection smoke failed: {e}");
        return 1;
    }
    if let Err(e) = socket_transport_smoke() {
        eprintln!("socket-transport smoke failed: {e}");
        return 1;
    }
    let rows = pipeline::measure_pipeline(1);
    println!("{}", pipeline::render_pipeline(&rows));
    let json = pipeline::pipeline_json(&rows);
    if let Err(e) = std::fs::write(SMOKE, &json) {
        eprintln!("{SMOKE}: {e}");
        return 1;
    }
    println!("wrote {SMOKE}");
    if let Err(e) = pipeline::validate_trajectory(&json) {
        eprintln!("emitted trajectory is malformed: {e}");
        return 1;
    }
    let committed = match std::fs::read_to_string(TRAJECTORY) {
        Ok(committed) => committed,
        Err(e) => {
            eprintln!("{TRAJECTORY}: {e}");
            return 1;
        }
    };
    // The committed trajectory must itself satisfy the registry-derived
    // shape check: every series a `RUN_MODES` entry owns is present, and
    // nothing the registry doesn't know about lingers. A registry change
    // therefore fails CI until the trajectory is regenerated.
    if let Err(e) = pipeline::validate_trajectory(&committed) {
        eprintln!("committed trajectory diverges from the run-mode registry: {e}");
        return 1;
    }
    let emitted_keys = pipeline::trajectory_keys(&json).expect("validated above");
    match pipeline::trajectory_keys(&committed) {
        Err(e) => {
            eprintln!("committed trajectory is malformed: {e}");
            1
        }
        Ok(committed_keys) if committed_keys != emitted_keys => {
            for gone in committed_keys.difference(&emitted_keys) {
                eprintln!("series cell dropped vs committed trajectory: {gone}");
            }
            for new in emitted_keys.difference(&committed_keys) {
                eprintln!("series cell missing from committed trajectory: {new}");
            }
            eprintln!(
                "schema diverged: regenerate the trajectory with \
                 `cargo run --release -p lba-bench --bin figures` and commit it"
            );
            1
        }
        Ok(_) => {
            println!("emitted schema matches the committed trajectory");
            0
        }
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--bench-smoke") {
        std::process::exit(bench_smoke());
    }
    let scale: u32 = match arg {
        None => 1,
        Some(arg) => match arg.parse() {
            Ok(scale) if scale > 0 => scale,
            _ => {
                eprintln!(
                    "usage: figures [scale | --bench-smoke]  (scale: positive integer, got {arg:?})"
                );
                std::process::exit(2);
            }
        },
    };
    let config = SystemConfig::default();
    let failed = std::cell::Cell::new(false);
    let run = |what: &str, body: &mut dyn FnMut() -> Result<String, lba::RunError>| match body() {
        Ok(text) => println!("{text}"),
        Err(e) => {
            failed.set(true);
            eprintln!("{what} failed: {e}");
        }
    };

    println!("== LBA reproduction: all paper tables and figures (scale {scale}) ==\n");

    let mut summaries = Vec::new();
    for kind in LifeguardKind::ALL {
        run(kind.name(), &mut || {
            let rows = experiment::figure2(kind, &config, scale)?;
            summaries.push(experiment::summarize(kind, &rows));
            Ok(render::render_fig2(kind, &rows))
        });
    }
    println!("{}", render::render_summary(&summaries));

    run("workloads", &mut || {
        Ok(render::render_workloads(&experiment::workload_table(
            &config, scale,
        )?))
    });
    run("compression", &mut || {
        Ok(render::render_compression(&experiment::compression_table(
            &config, scale,
        )?))
    });
    run("ablation A", &mut || {
        Ok(render::render_decoupling(&experiment::ablation_decoupling(
            &config, scale,
        )?))
    });
    run("ablation B", &mut || {
        Ok(render::render_buffer(&experiment::ablation_buffer(
            &config, scale,
        )?))
    });
    run("ablation C", &mut || {
        Ok(render::render_compression_ablation(
            &experiment::ablation_compression(&config, scale)?,
        ))
    });
    run("filtering", &mut || {
        Ok(render::render_filtering(&experiment::ext_filtering(
            &config, scale,
        )?))
    });
    run("parallel", &mut || {
        Ok(render::render_parallel(&experiment::ext_parallel(
            &config, scale,
        )?))
    });

    // Host throughput (wall clock, not modeled cycles): the bench
    // trajectory every future PR regenerates and diffs.
    let rows = pipeline::measure_pipeline(5);
    println!("{}", pipeline::render_pipeline(&rows));
    let json = pipeline::pipeline_json(&rows);
    if let Err(e) = pipeline::validate_trajectory(&json) {
        failed.set(true);
        eprintln!("emitted trajectory is malformed: {e}");
    }
    match std::fs::write(TRAJECTORY, &json) {
        Ok(()) => println!("wrote {TRAJECTORY}"),
        Err(e) => {
            failed.set(true);
            eprintln!("{TRAJECTORY}: {e}");
        }
    }

    if failed.get() {
        std::process::exit(1);
    }
}
