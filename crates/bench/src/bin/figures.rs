//! Regenerates every table and figure from the paper's evaluation.
//!
//! Usage: `cargo run --release -p lba-bench --bin figures [scale]`
//!
//! `scale` multiplies every benchmark's iteration counts (default 1).

use lba::experiment;
use lba::{LifeguardKind, SystemConfig};
use lba_bench as render;

fn main() {
    let scale: u32 = match std::env::args().nth(1) {
        None => 1,
        Some(arg) => match arg.parse() {
            Ok(scale) if scale > 0 => scale,
            _ => {
                eprintln!("usage: figures [scale]  (scale: positive integer, got {arg:?})");
                std::process::exit(2);
            }
        },
    };
    let config = SystemConfig::default();
    let failed = std::cell::Cell::new(false);
    let run = |what: &str, body: &mut dyn FnMut() -> Result<String, lba::RunError>| match body() {
        Ok(text) => println!("{text}"),
        Err(e) => {
            failed.set(true);
            eprintln!("{what} failed: {e}");
        }
    };

    println!("== LBA reproduction: all paper tables and figures (scale {scale}) ==\n");

    let mut summaries = Vec::new();
    for kind in LifeguardKind::ALL {
        run(kind.name(), &mut || {
            let rows = experiment::figure2(kind, &config, scale)?;
            summaries.push(experiment::summarize(kind, &rows));
            Ok(render::render_fig2(kind, &rows))
        });
    }
    println!("{}", render::render_summary(&summaries));

    run("workloads", &mut || {
        Ok(render::render_workloads(&experiment::workload_table(
            &config, scale,
        )?))
    });
    run("compression", &mut || {
        Ok(render::render_compression(&experiment::compression_table(
            &config, scale,
        )?))
    });
    run("ablation A", &mut || {
        Ok(render::render_decoupling(&experiment::ablation_decoupling(
            &config, scale,
        )?))
    });
    run("ablation B", &mut || {
        Ok(render::render_buffer(&experiment::ablation_buffer(
            &config, scale,
        )?))
    });
    run("ablation C", &mut || {
        Ok(render::render_compression_ablation(
            &experiment::ablation_compression(&config, scale)?,
        ))
    });
    run("filtering", &mut || {
        Ok(render::render_filtering(&experiment::ext_filtering(
            &config, scale,
        )?))
    });
    run("parallel", &mut || {
        Ok(render::render_parallel(&experiment::ext_parallel(
            &config, scale,
        )?))
    });

    if failed.get() {
        std::process::exit(1);
    }
}
