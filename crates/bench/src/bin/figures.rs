//! Regenerates every table and figure from the paper's evaluation, plus
//! the host-throughput trajectory (`BENCH_pipeline.json` in the working
//! directory — committed at the repo root so every PR shows where
//! events/sec moved).
//!
//! Usage: `cargo run --release -p lba-bench --bin figures [scale]`
//!
//! `scale` multiplies every benchmark's iteration counts (default 1).

use lba::experiment;
use lba::{LifeguardKind, SystemConfig};
use lba_bench as render;
use lba_bench::pipeline;

fn main() {
    let scale: u32 = match std::env::args().nth(1) {
        None => 1,
        Some(arg) => match arg.parse() {
            Ok(scale) if scale > 0 => scale,
            _ => {
                eprintln!("usage: figures [scale]  (scale: positive integer, got {arg:?})");
                std::process::exit(2);
            }
        },
    };
    let config = SystemConfig::default();
    let failed = std::cell::Cell::new(false);
    let run = |what: &str, body: &mut dyn FnMut() -> Result<String, lba::RunError>| match body() {
        Ok(text) => println!("{text}"),
        Err(e) => {
            failed.set(true);
            eprintln!("{what} failed: {e}");
        }
    };

    println!("== LBA reproduction: all paper tables and figures (scale {scale}) ==\n");

    let mut summaries = Vec::new();
    for kind in LifeguardKind::ALL {
        run(kind.name(), &mut || {
            let rows = experiment::figure2(kind, &config, scale)?;
            summaries.push(experiment::summarize(kind, &rows));
            Ok(render::render_fig2(kind, &rows))
        });
    }
    println!("{}", render::render_summary(&summaries));

    run("workloads", &mut || {
        Ok(render::render_workloads(&experiment::workload_table(
            &config, scale,
        )?))
    });
    run("compression", &mut || {
        Ok(render::render_compression(&experiment::compression_table(
            &config, scale,
        )?))
    });
    run("ablation A", &mut || {
        Ok(render::render_decoupling(&experiment::ablation_decoupling(
            &config, scale,
        )?))
    });
    run("ablation B", &mut || {
        Ok(render::render_buffer(&experiment::ablation_buffer(
            &config, scale,
        )?))
    });
    run("ablation C", &mut || {
        Ok(render::render_compression_ablation(
            &experiment::ablation_compression(&config, scale)?,
        ))
    });
    run("filtering", &mut || {
        Ok(render::render_filtering(&experiment::ext_filtering(
            &config, scale,
        )?))
    });
    run("parallel", &mut || {
        Ok(render::render_parallel(&experiment::ext_parallel(
            &config, scale,
        )?))
    });

    // Host throughput (wall clock, not modeled cycles): the bench
    // trajectory every future PR regenerates and diffs. Anchored to the
    // workspace root regardless of the invocation directory.
    let rows = pipeline::measure_pipeline(5);
    println!("{}", pipeline::render_pipeline(&rows));
    let json = pipeline::pipeline_json(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            failed.set(true);
            eprintln!("{path}: {e}");
        }
    }

    if failed.get() {
        std::process::exit(1);
    }
}
