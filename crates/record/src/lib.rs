//! The LBA event-record format, per §2 of the paper.
//!
//! As each application instruction retires, the capture hardware creates an
//! event record containing the instruction's **(a)** program counter,
//! **(b)** type, **(c)** input and output operand identifiers, and **(d)**
//! load/store memory address if present. This crate defines that record
//! ([`EventRecord`]), the event vocabulary ([`EventKind`]), subscription
//! masks used by the dispatch hardware ([`EventMask`]), and running trace
//! statistics ([`TraceStats`]).
//!
//! # Examples
//!
//! ```
//! use lba_record::{EventKind, EventRecord, TraceStats};
//!
//! let rec = EventRecord::load(0x1000, 0, Some(1), Some(2), 0x4000_0000, 4);
//! assert!(rec.is_memory());
//!
//! let mut stats = TraceStats::new();
//! stats.observe(&rec);
//! assert_eq!(stats.count(EventKind::Load), 1);
//! ```

mod event;
mod mask;
mod stats;
mod stream;
mod trace;

pub use event::{DecodeRecordError, EventKind, EventRecord, RAW_RECORD_BYTES};
pub use mask::EventMask;
pub use stats::TraceStats;
pub use stream::{
    payload_checksum, segment_file_name, stream_ids, SegmentReader, SegmentWriter, StreamConfig,
    StreamError, StreamFrame, StreamSummary, SEGMENT_HEADER_BYTES, STREAM_FORMAT,
};
pub use trace::{TraceError, TraceReader, TraceWriter};
