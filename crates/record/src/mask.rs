//! Event subscription masks for the dispatch hardware.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use crate::event::EventKind;

/// A set of [`EventKind`]s a lifeguard subscribes to.
///
/// The LBA dispatch hardware consults this mask: unsubscribed events fall
/// through to a trivial no-op handler (one cycle in the cost model) instead
/// of invoking lifeguard code.
///
/// # Examples
///
/// ```
/// use lba_record::{EventKind, EventMask};
///
/// let mask = EventMask::of(&[EventKind::Load, EventKind::Store]);
/// assert!(mask.contains(EventKind::Load));
/// assert!(!mask.contains(EventKind::Alu));
///
/// let wider = mask | EventMask::of(&[EventKind::Alloc]);
/// assert!(wider.contains(EventKind::Alloc));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct EventMask(u32);

impl EventMask {
    /// The empty mask.
    pub const EMPTY: EventMask = EventMask(0);

    /// The mask containing every event kind.
    pub const ALL: EventMask = EventMask((1 << EventKind::COUNT) - 1);

    /// Creates a mask containing the given kinds.
    #[must_use]
    pub fn of(kinds: &[EventKind]) -> Self {
        let mut mask = EventMask::EMPTY;
        for &k in kinds {
            mask.insert(k);
        }
        mask
    }

    /// Adds a kind to the mask.
    pub fn insert(&mut self, kind: EventKind) {
        self.0 |= 1 << kind.code();
    }

    /// Whether the mask contains `kind`.
    #[must_use]
    pub fn contains(&self, kind: EventKind) -> bool {
        self.0 & (1 << kind.code()) != 0
    }

    /// Whether the mask is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of kinds in the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the kinds in the mask in code order.
    pub fn iter(&self) -> impl Iterator<Item = EventKind> + '_ {
        EventKind::ALL.into_iter().filter(|k| self.contains(*k))
    }
}

impl BitOr for EventMask {
    type Output = EventMask;

    fn bitor(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for EventMask {
    fn bitor_assign(&mut self, rhs: EventMask) {
        self.0 |= rhs.0;
    }
}

impl FromIterator<EventKind> for EventMask {
    fn from_iter<I: IntoIterator<Item = EventKind>>(iter: I) -> Self {
        let mut mask = EventMask::EMPTY;
        for k in iter {
            mask.insert(k);
        }
        mask
    }
}

impl fmt::Display for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, kind) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kind}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_all() {
        assert!(EventMask::EMPTY.is_empty());
        assert_eq!(EventMask::ALL.len(), EventKind::COUNT);
        for k in EventKind::ALL {
            assert!(EventMask::ALL.contains(k));
            assert!(!EventMask::EMPTY.contains(k));
        }
    }

    #[test]
    fn insert_and_contains() {
        let mut m = EventMask::EMPTY;
        m.insert(EventKind::Lock);
        assert!(m.contains(EventKind::Lock));
        assert!(!m.contains(EventKind::Unlock));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn bitor_unions() {
        let a = EventMask::of(&[EventKind::Load]);
        let b = EventMask::of(&[EventKind::Store]);
        let u = a | b;
        assert!(u.contains(EventKind::Load) && u.contains(EventKind::Store));
        let mut c = a;
        c |= b;
        assert_eq!(c, u);
    }

    #[test]
    fn from_iterator_collects() {
        let m: EventMask = [EventKind::Alloc, EventKind::Free].into_iter().collect();
        assert_eq!(m, EventMask::of(&[EventKind::Alloc, EventKind::Free]));
    }

    #[test]
    fn iter_yields_in_code_order() {
        let m = EventMask::of(&[EventKind::Free, EventKind::Alu]);
        let kinds: Vec<_> = m.iter().collect();
        assert_eq!(kinds, vec![EventKind::Alu, EventKind::Free]);
    }

    #[test]
    fn display_lists_kinds() {
        let m = EventMask::of(&[EventKind::Load, EventKind::Store]);
        assert_eq!(m.to_string(), "{load, store}");
    }
}
