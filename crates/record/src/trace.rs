//! Raw trace serialization — the paper's "trace generation tool".
//!
//! §3: "we developed a trace generation tool to produce log record traces
//! from applications, and a Simics extension module to read the log traces
//! and perform event-driven lifeguard executions." This module is that
//! interchange format: a self-describing byte stream of raw records, so
//! traces can be captured once and replayed through any lifeguard (or
//! shipped between machines).

use std::fmt;

use crate::event::{DecodeRecordError, EventRecord, RAW_RECORD_BYTES};

/// Magic bytes identifying a trace stream.
const MAGIC: [u8; 4] = *b"LBA1";

/// Error produced when decoding a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The stream does not start with the trace magic.
    BadMagic,
    /// The stream ended in the middle of a record or the header.
    Truncated,
    /// A record failed to decode.
    BadRecord {
        /// Index of the bad record.
        index: u64,
        /// The underlying decode error.
        source: DecodeRecordError,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an LBA trace (bad magic)"),
            TraceError::Truncated => write!(f, "trace stream is truncated"),
            TraceError::BadRecord { index, source } => {
                write!(f, "record {index} is invalid: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::BadRecord { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serializes event records into a raw trace stream.
///
/// # Examples
///
/// ```
/// use lba_record::{EventRecord, TraceReader, TraceWriter};
///
/// let mut writer = TraceWriter::new();
/// writer.push(&EventRecord::alu(0x1000, 0, Some(1), None, Some(2)));
/// let bytes = writer.into_bytes();
///
/// let records: Vec<_> = TraceReader::new(&bytes)
///     .expect("valid trace")
///     .collect::<Result<_, _>>()
///     .expect("all records decode");
/// assert_eq!(records.len(), 1);
/// assert_eq!(records[0].pc, 0x1000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWriter {
    bytes: Vec<u8>,
    count: u64,
}

impl Default for TraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceWriter {
    /// Creates a writer with an empty trace.
    #[must_use]
    pub fn new() -> Self {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // count, patched later
        TraceWriter { bytes, count: 0 }
    }

    /// Appends one record.
    pub fn push(&mut self, record: &EventRecord) {
        self.bytes.extend_from_slice(&record.encode_raw());
        self.count += 1;
    }

    /// Records written so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finalises the stream (patching the record count) and returns it.
    #[must_use]
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.bytes[4..12].copy_from_slice(&self.count.to_le_bytes());
        self.bytes
    }
}

/// Iterates over the records of a raw trace stream.
#[derive(Debug, Clone)]
pub struct TraceReader<'a> {
    bytes: &'a [u8],
    remaining: u64,
    index: u64,
}

impl<'a> TraceReader<'a> {
    /// Opens a trace stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadMagic`] or [`TraceError::Truncated`] when
    /// the header is invalid.
    pub fn new(bytes: &'a [u8]) -> Result<Self, TraceError> {
        if bytes.len() < 12 {
            return Err(TraceError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let count = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        Ok(TraceReader {
            bytes: &bytes[12..],
            remaining: count,
            index: 0,
        })
    }

    /// Records declared by the header that are still unread.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for TraceReader<'_> {
    type Item = Result<EventRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        if self.bytes.len() < RAW_RECORD_BYTES {
            self.remaining = 0;
            return Some(Err(TraceError::Truncated));
        }
        let (head, tail) = self.bytes.split_at(RAW_RECORD_BYTES);
        self.bytes = tail;
        self.remaining -= 1;
        let index = self.index;
        self.index += 1;
        let raw: &[u8; RAW_RECORD_BYTES] = head.try_into().expect("split at record size");
        Some(EventRecord::decode_raw(raw).map_err(|source| TraceError::BadRecord { index, source }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<EventRecord> {
        (0..n)
            .map(|i| EventRecord::load(0x1000 + i * 8, (i % 3) as u8, Some(1), Some(2), i * 64, 8))
            .collect()
    }

    #[test]
    fn write_read_round_trip() {
        let records = sample(50);
        let mut writer = TraceWriter::new();
        for rec in &records {
            writer.push(rec);
        }
        assert_eq!(writer.len(), 50);
        let bytes = writer.into_bytes();
        let read: Vec<EventRecord> = TraceReader::new(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(read, records);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = TraceWriter::new().into_bytes();
        let mut reader = TraceReader::new(&bytes).unwrap();
        assert_eq!(reader.remaining(), 0);
        assert!(reader.next().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = TraceWriter::new().into_bytes();
        bytes[0] = b'X';
        assert_eq!(TraceReader::new(&bytes).unwrap_err(), TraceError::BadMagic);
    }

    #[test]
    fn truncated_stream_detected() {
        let mut writer = TraceWriter::new();
        writer.push(&EventRecord::alu(0x1000, 0, None, None, None));
        let mut bytes = writer.into_bytes();
        bytes.truncate(bytes.len() - 3);
        let results: Vec<_> = TraceReader::new(&bytes).unwrap().collect();
        assert_eq!(results, vec![Err(TraceError::Truncated)]);
    }

    #[test]
    fn corrupt_record_reported_with_index() {
        let mut writer = TraceWriter::new();
        writer.push(&EventRecord::alu(0x1000, 0, None, None, None));
        writer.push(&EventRecord::alu(0x1008, 0, None, None, None));
        let mut bytes = writer.into_bytes();
        // Corrupt the second record's kind byte.
        bytes[12 + RAW_RECORD_BYTES + 8] = 0xee;
        let results: Vec<_> = TraceReader::new(&bytes).unwrap().collect();
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(TraceError::BadRecord { index: 1, .. })
        ));
    }
}
