//! Running statistics over an event stream.

use std::fmt;

use crate::event::{EventKind, EventRecord};

/// Counts of retired instructions by kind, plus derived ratios.
///
/// Used to reproduce the paper's §3 workload characterisation ("on average,
/// a benchmark executes 209 million x86 instructions, of which 51% are
/// memory references").
///
/// # Examples
///
/// ```
/// use lba_record::{EventRecord, TraceStats};
///
/// let mut stats = TraceStats::new();
/// stats.observe(&EventRecord::alu(0x1000, 0, None, None, Some(1)));
/// stats.observe(&EventRecord::load(0x1008, 0, Some(1), Some(2), 0x100, 4));
/// assert_eq!(stats.instructions(), 2);
/// assert!((stats.memory_ref_fraction() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    counts: [u64; EventKind::COUNT],
    total: u64,
}

impl TraceStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event.
    pub fn observe(&mut self, record: &EventRecord) {
        self.counts[record.kind.code() as usize] += 1;
        self.total += 1;
    }

    /// Total events observed.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.total
    }

    /// Events of a particular kind.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.code() as usize]
    }

    /// Number of data-memory references (loads + stores).
    #[must_use]
    pub fn memory_refs(&self) -> u64 {
        self.count(EventKind::Load) + self.count(EventKind::Store)
    }

    /// Fraction of events that are memory references, in `[0, 1]`.
    #[must_use]
    pub fn memory_ref_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.memory_refs() as f64 / self.total as f64
        }
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions, {:.1}% memory references",
            self.total,
            self.memory_ref_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: EventKind) -> EventRecord {
        EventRecord {
            pc: 0,
            kind,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 0,
            size: 0,
        }
    }

    #[test]
    fn counts_per_kind() {
        let mut s = TraceStats::new();
        s.observe(&rec(EventKind::Alu));
        s.observe(&rec(EventKind::Alu));
        s.observe(&rec(EventKind::Lock));
        assert_eq!(s.count(EventKind::Alu), 2);
        assert_eq!(s.count(EventKind::Lock), 1);
        assert_eq!(s.count(EventKind::Free), 0);
        assert_eq!(s.instructions(), 3);
    }

    #[test]
    fn memory_fraction() {
        let mut s = TraceStats::new();
        assert_eq!(s.memory_ref_fraction(), 0.0, "empty trace");
        s.observe(&rec(EventKind::Load));
        s.observe(&rec(EventKind::Store));
        s.observe(&rec(EventKind::Alu));
        s.observe(&rec(EventKind::Branch));
        assert_eq!(s.memory_refs(), 2);
        assert!((s.memory_ref_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TraceStats::new();
        a.observe(&rec(EventKind::Load));
        let mut b = TraceStats::new();
        b.observe(&rec(EventKind::Store));
        b.observe(&rec(EventKind::Alu));
        a.merge(&b);
        assert_eq!(a.instructions(), 3);
        assert_eq!(a.memory_refs(), 2);
    }

    #[test]
    fn display_mentions_fraction() {
        let mut s = TraceStats::new();
        s.observe(&rec(EventKind::Load));
        assert!(s.to_string().contains("100.0%"));
    }
}
