//! Durable flight-recorder streams: the `lbas/1` on-disk segment format.
//!
//! The in-memory transports ship sealed compressed frames between cores;
//! this module makes those frames *durable*, so a deployed run leaves a
//! recording behind — the crash-post-mortem and run-a-different-lifeguard-
//! later stories the paper motivates. A recording is one **stream** per
//! wire stream (the single-lifeguard modes have one; the sharded modes
//! have one per shard), and each stream is a sequence of bounded **segment
//! files**.
//!
//! # Segment layout
//!
//! Every segment file starts with a 24-byte header:
//!
//! ```text
//! offset  size  field
//!      0     8  format identifier: b"lbas/1\n\0" (readable via `head -c8`)
//!      8     4  codec version (u32 LE) — the compressed wire format the
//!               frame payloads were sealed under
//!     12     4  stream id (u32 LE) — shard index; 0 for unsharded modes
//!     16     4  segment sequence number (u32 LE), contiguous from 0
//!     20     4  reserved (zero)
//! ```
//!
//! followed by records, each introduced by a one-byte tag:
//!
//! * **Frame** (`0x01`): `u64` LE seal timestamp (producer-core cycle in
//!   the co-simulation; 0 in the live modes, which have no modeled clock),
//!   `u32` LE record count, `u32` LE payload length in bytes, `u32` LE
//!   FNV-1a checksum of the payload, then the payload — the sealed frame's
//!   complete wire image (frame header, compressed payload, line padding),
//!   so a stream's replayed wire-bit total is exactly the recorded run's.
//! * **End** (`0x02`): `u64` LE count of frame records in this segment.
//!   Written when a segment closes — at rotation and at
//!   [`SegmentWriter::finish`] — so a segment *without* one is positively
//!   identified as truncated (crash or disk-full mid-write) rather than
//!   silently short.
//!
//! # Segment naming, rotation, retention
//!
//! Segments are named `shard-SS.NNNNNN.lbas` (stream id, then sequence
//! number, both zero-padded decimal) inside the recording directory. A
//! segment rotates when appending the next frame would push it past
//! [`StreamConfig::segment_bytes`]; once the stream's total on-disk size
//! exceeds [`StreamConfig::retain_bytes`], the oldest *closed* segments
//! are deleted (the segment being written is never deleted), bounding disk
//! from day one. Retention is a trade: the compressed stream's predictor
//! state threads through every frame from the start, so replay needs the
//! stream complete from sequence 0 — a reader that finds the early
//! segments aged out reports it descriptively instead of decoding garbage.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The stream format identifier, also the first line of every segment.
pub const STREAM_FORMAT: &str = "lbas/1";

/// The 8-byte on-disk form of [`STREAM_FORMAT`].
const IDENT: [u8; 8] = *b"lbas/1\n\0";

/// Segment header size in bytes (identifier + codec version + stream id +
/// sequence number + reserved word).
pub const SEGMENT_HEADER_BYTES: usize = 24;

/// Record tags.
const TAG_FRAME: u8 = 0x01;
const TAG_END: u8 = 0x02;

/// On-disk size of a frame record's fixed part (tag + timestamp + record
/// count + payload length + checksum).
const FRAME_RECORD_HEADER_BYTES: u64 = 1 + 8 + 4 + 4 + 4;

/// On-disk size of an End record (tag + frame count).
const END_RECORD_BYTES: u64 = 1 + 8;

/// FNV-1a over the payload, folded to 32 bits — cheap enough to run at
/// capture (the tee's only per-byte work) yet positively identifies
/// mid-frame corruption that length checks cannot see. Public because the
/// socket transport frames its wire records with the same checksum, so a
/// recorded stream and a socket stream corrupt (and salvage) identically.
#[must_use]
pub fn payload_checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    #[allow(clippy::cast_possible_truncation)]
    {
        (h ^ (h >> 32)) as u32
    }
}

/// The canonical file name of a segment.
#[must_use]
pub fn segment_file_name(stream: u32, seq: u32) -> String {
    format!("shard-{stream:02}.{seq:06}.lbas")
}

/// Parses a segment file name back into `(stream, seq)`.
fn parse_segment_file_name(name: &str) -> Option<(u32, u32)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".lbas")?;
    let (stream, seq) = rest.split_once('.')?;
    Some((stream.parse().ok()?, seq.parse().ok()?))
}

/// Size and retention policy of a recorded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Rotate to a new segment once appending the next frame would push
    /// the current file past this many bytes (a single oversized frame
    /// still lands whole — segments never split a frame).
    pub segment_bytes: u64,
    /// Delete the oldest closed segments once the stream's total on-disk
    /// bytes exceed this cap. `u64::MAX` (the default) retains everything,
    /// which full-stream replay requires.
    pub retain_bytes: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            segment_bytes: 4 << 20,
            retain_bytes: u64::MAX,
        }
    }
}

/// What [`SegmentWriter::finish`] reports about the completed stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Frame records written over the stream's lifetime.
    pub frames: u64,
    /// Bytes written over the stream's lifetime (deleted segments
    /// included).
    pub bytes_written: u64,
    /// Segments currently on disk after retention.
    pub segments_retained: usize,
    /// Bytes currently on disk after retention.
    pub bytes_retained: u64,
}

/// One recorded frame, as handed back by [`SegmentReader::next_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFrame {
    /// Producer-core cycle at which the frame sealed (0 in live modes).
    pub timestamp: u64,
    /// Records the frame carries.
    pub records: u32,
    /// The sealed frame's complete wire image.
    pub bytes: Vec<u8>,
}

impl StreamFrame {
    /// Wire bits this frame occupied on the original run's transport.
    #[must_use]
    pub fn wire_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }
}

/// Everything that can go wrong writing or reading a stream. Every
/// variant names the file (or directory) involved; none of them panic.
#[derive(Debug)]
pub enum StreamError {
    /// An underlying filesystem operation failed.
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the `lbas/` identifier.
    NotAStream {
        /// Offending file.
        path: PathBuf,
    },
    /// The file is an LBA stream of a format version this reader does not
    /// understand.
    UnknownVersion {
        /// Offending file.
        path: PathBuf,
        /// The version string found after `lbas/`.
        version: String,
    },
    /// The segment ended in the middle of a record — a crash or disk-full
    /// cut the writer off mid-write.
    Truncated {
        /// Offending file.
        path: PathBuf,
        /// Byte offset at which the record began.
        offset: u64,
    },
    /// The segment ended at a record boundary but without an End record,
    /// so frames may be missing off its tail.
    MissingEnd {
        /// Offending file.
        path: PathBuf,
    },
    /// The segment's bytes are internally inconsistent (bad tag, checksum
    /// mismatch, frame/record-count disagreement, End-count mismatch).
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// Byte offset of the inconsistent record.
        offset: u64,
        /// What exactly disagreed.
        detail: String,
    },
    /// The stream's segments do not start at sequence 0 (retention aged
    /// the early ones out) or have a gap. The compressed stream's
    /// predictor state threads through every frame, so replay needs the
    /// segments contiguous from 0.
    MissingSegments {
        /// Recording directory.
        dir: PathBuf,
        /// Stream id.
        stream: u32,
        /// First sequence number expected but not found.
        expected_seq: u32,
    },
    /// The recording directory holds no segments for this stream id.
    NoSuchStream {
        /// Recording directory.
        dir: PathBuf,
        /// Stream id.
        stream: u32,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io { path, source } => {
                write!(f, "stream I/O error on {}: {source}", path.display())
            }
            StreamError::NotAStream { path } => {
                write!(
                    f,
                    "{} is not an LBA stream segment (missing lbas/ identifier)",
                    path.display()
                )
            }
            StreamError::UnknownVersion { path, version } => {
                write!(
                    f,
                    "{} is an lbas/{version} segment; this reader understands {STREAM_FORMAT}",
                    path.display()
                )
            }
            StreamError::Truncated { path, offset } => {
                write!(
                    f,
                    "{} is truncated mid-record at byte {offset} (writer was cut off)",
                    path.display()
                )
            }
            StreamError::MissingEnd { path } => {
                write!(
                    f,
                    "{} has no End record: the stream was not closed cleanly \
                     and frames may be missing off its tail",
                    path.display()
                )
            }
            StreamError::Corrupt {
                path,
                offset,
                detail,
            } => {
                write!(
                    f,
                    "{} is corrupt at byte {offset}: {detail}",
                    path.display()
                )
            }
            StreamError::MissingSegments {
                dir,
                stream,
                expected_seq,
            } => {
                write!(
                    f,
                    "stream {stream} in {} is missing segment {expected_seq} \
                     (aged out by retention or deleted); replay needs the \
                     stream contiguous from segment 0",
                    dir.display()
                )
            }
            StreamError::NoSuchStream { dir, stream } => {
                write!(f, "no segments for stream {stream} in {}", dir.display())
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StreamError {
    fn io(path: &Path, source: std::io::Error) -> Self {
        StreamError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

/// Writes one stream as a sequence of rotating, retained segment files.
///
/// # Examples
///
/// ```
/// use lba_record::{SegmentReader, SegmentWriter, StreamConfig};
///
/// let dir = std::env::temp_dir().join(format!("lbas-doc-{}", std::process::id()));
/// let mut writer = SegmentWriter::create(&dir, 0, 1, StreamConfig::default())?;
/// let mut image = [0u8; 64]; // a sealed frame's wire image; first word = record count
/// image[0..4].copy_from_slice(&2u32.to_le_bytes());
/// writer.append(7, 2, &image)?;
/// let summary = writer.finish()?;
/// assert_eq!(summary.frames, 1);
///
/// let mut reader = SegmentReader::open(&dir, 0)?;
/// assert_eq!(reader.codec_version(), 1);
/// let frame = reader.next_frame()?.expect("one frame recorded");
/// assert_eq!((frame.timestamp, frame.records), (7, 2));
/// assert!(reader.next_frame()?.is_none(), "clean end of stream");
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), lba_record::StreamError>(())
/// ```
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    stream: u32,
    codec_version: u32,
    config: StreamConfig,
    /// Open segment (None only transiently and after `finish`).
    file: Option<BufWriter<File>>,
    seq: u32,
    segment_bytes: u64,
    segment_frames: u64,
    /// Closed segments still on disk, oldest first: `(seq, bytes)`.
    retained: VecDeque<(u32, u64)>,
    total_frames: u64,
    total_bytes: u64,
}

impl SegmentWriter {
    /// Creates the recording directory (if needed) and opens segment 0.
    ///
    /// `codec_version` is stamped into every segment header — pass the
    /// version of the codec that seals the frames being recorded (for the
    /// LBA pipeline, `lba_compress::CODEC_VERSION`).
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] when the directory or first segment cannot be
    /// created.
    pub fn create(
        dir: &Path,
        stream: u32,
        codec_version: u32,
        config: StreamConfig,
    ) -> Result<Self, StreamError> {
        fs::create_dir_all(dir).map_err(|e| StreamError::io(dir, e))?;
        let mut writer = SegmentWriter {
            dir: dir.to_path_buf(),
            stream,
            codec_version,
            config,
            file: None,
            seq: 0,
            segment_bytes: 0,
            segment_frames: 0,
            retained: VecDeque::new(),
            total_frames: 0,
            total_bytes: 0,
        };
        writer.open_segment()?;
        Ok(writer)
    }

    fn segment_path(&self, seq: u32) -> PathBuf {
        self.dir.join(segment_file_name(self.stream, seq))
    }

    fn open_segment(&mut self) -> Result<(), StreamError> {
        let path = self.segment_path(self.seq);
        let file = File::create(&path).map_err(|e| StreamError::io(&path, e))?;
        let mut file = BufWriter::new(file);
        let mut header = [0u8; SEGMENT_HEADER_BYTES];
        header[0..8].copy_from_slice(&IDENT);
        header[8..12].copy_from_slice(&self.codec_version.to_le_bytes());
        header[12..16].copy_from_slice(&self.stream.to_le_bytes());
        header[16..20].copy_from_slice(&self.seq.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| StreamError::io(&path, e))?;
        self.file = Some(file);
        self.segment_bytes = SEGMENT_HEADER_BYTES as u64;
        self.segment_frames = 0;
        self.total_bytes += SEGMENT_HEADER_BYTES as u64;
        Ok(())
    }

    /// Writes the End record and closes the current segment file.
    fn close_segment(&mut self) -> Result<(), StreamError> {
        let path = self.segment_path(self.seq);
        let mut file = self.file.take().expect("segment open");
        let mut end = [0u8; END_RECORD_BYTES as usize];
        end[0] = TAG_END;
        end[1..9].copy_from_slice(&self.segment_frames.to_le_bytes());
        file.write_all(&end)
            .map_err(|e| StreamError::io(&path, e))?;
        file.flush().map_err(|e| StreamError::io(&path, e))?;
        self.segment_bytes += END_RECORD_BYTES;
        self.total_bytes += END_RECORD_BYTES;
        self.retained.push_back((self.seq, self.segment_bytes));
        self.segment_bytes = 0; // now accounted under `retained`
        Ok(())
    }

    /// Deletes the oldest closed segments until the stream's on-disk bytes
    /// fit the retention cap (the open segment is never deleted).
    fn enforce_retention(&mut self) -> Result<(), StreamError> {
        while self.bytes_retained() > self.config.retain_bytes {
            let Some((seq, bytes)) = self.retained.pop_front() else {
                break; // only the open segment is left; nothing to delete
            };
            let path = self.segment_path(seq);
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) => {
                    self.retained.push_front((seq, bytes));
                    return Err(StreamError::io(&path, e));
                }
            }
        }
        Ok(())
    }

    /// Bytes currently on disk: closed segments plus the open one.
    #[must_use]
    pub fn bytes_retained(&self) -> u64 {
        self.retained.iter().map(|(_, b)| b).sum::<u64>() + self.segment_bytes
    }

    /// Appends one sealed frame's wire image, rotating and enforcing
    /// retention as configured.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] when a write, rotation, or retention delete
    /// fails. After an error the writer is broken; drop it.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](Self::finish) (the writer is
    /// consumed by value there, so this requires unsafe shenanigans) or
    /// after a previous append error.
    pub fn append(
        &mut self,
        timestamp: u64,
        records: u32,
        frame: &[u8],
    ) -> Result<(), StreamError> {
        let record_bytes = FRAME_RECORD_HEADER_BYTES + frame.len() as u64;
        // Rotate when this frame would overflow the segment — unless the
        // segment is still empty (an oversized frame lands whole).
        if self.segment_frames > 0
            && self.segment_bytes + record_bytes + END_RECORD_BYTES > self.config.segment_bytes
        {
            self.close_segment()?;
            self.seq += 1;
            self.open_segment()?;
        }
        let path = self.segment_path(self.seq);
        let file = self.file.as_mut().expect("segment open");
        let mut header = [0u8; FRAME_RECORD_HEADER_BYTES as usize];
        header[0] = TAG_FRAME;
        header[1..9].copy_from_slice(&timestamp.to_le_bytes());
        header[9..13].copy_from_slice(&records.to_le_bytes());
        #[allow(clippy::cast_possible_truncation)]
        header[13..17].copy_from_slice(&(frame.len() as u32).to_le_bytes());
        header[17..21].copy_from_slice(&payload_checksum(frame).to_le_bytes());
        file.write_all(&header)
            .and_then(|()| file.write_all(frame))
            .map_err(|e| StreamError::io(&path, e))?;
        self.segment_bytes += record_bytes;
        self.segment_frames += 1;
        self.total_bytes += record_bytes;
        self.total_frames += 1;
        self.enforce_retention()
    }

    /// Closes the stream cleanly: writes the final segment's End record
    /// and flushes it.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] when the final write or flush fails.
    pub fn finish(mut self) -> Result<StreamSummary, StreamError> {
        self.close_segment()?;
        self.enforce_retention()?;
        Ok(StreamSummary {
            frames: self.total_frames,
            bytes_written: self.total_bytes,
            segments_retained: self.retained.len(),
            bytes_retained: self.retained.iter().map(|(_, b)| b).sum(),
        })
    }
}

/// The stream ids with at least one segment in `dir`, ascending.
///
/// # Errors
///
/// [`StreamError::Io`] when the directory cannot be listed.
pub fn stream_ids(dir: &Path) -> Result<Vec<u32>, StreamError> {
    let mut ids: Vec<u32> = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| StreamError::io(dir, e))? {
        let entry = entry.map_err(|e| StreamError::io(dir, e))?;
        if let Some((stream, _)) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            if !ids.contains(&stream) {
                ids.push(stream);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Reads one stream's segments back in sequence order, yielding frames
/// until the clean end of the final segment.
#[derive(Debug)]
pub struct SegmentReader {
    dir: PathBuf,
    stream: u32,
    /// Remaining segment sequence numbers, ascending (current one first).
    segments: VecDeque<u32>,
    /// Current segment's bytes and read cursor.
    path: PathBuf,
    bytes: Vec<u8>,
    cursor: usize,
    codec_version: u32,
    /// Frame records seen in the current segment (checked against End).
    segment_frames: u64,
}

impl SegmentReader {
    /// Opens stream `stream` inside recording directory `dir`, validating
    /// that its segments are contiguous from sequence 0 and that the first
    /// segment's header is well-formed.
    ///
    /// # Errors
    ///
    /// [`StreamError::NoSuchStream`] when no segment of this stream
    /// exists, [`StreamError::MissingSegments`] when the stream does not
    /// start at sequence 0 or has a gap, plus any header-validation error
    /// from the first segment.
    pub fn open(dir: &Path, stream: u32) -> Result<Self, StreamError> {
        let mut seqs: Vec<u32> = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| StreamError::io(dir, e))? {
            let entry = entry.map_err(|e| StreamError::io(dir, e))?;
            if let Some((s, seq)) = entry.file_name().to_str().and_then(parse_segment_file_name) {
                if s == stream {
                    seqs.push(seq);
                }
            }
        }
        if seqs.is_empty() {
            return Err(StreamError::NoSuchStream {
                dir: dir.to_path_buf(),
                stream,
            });
        }
        seqs.sort_unstable();
        for (expected, &found) in seqs.iter().enumerate() {
            let expected = u32::try_from(expected).expect("segment count fits u32");
            if found != expected {
                return Err(StreamError::MissingSegments {
                    dir: dir.to_path_buf(),
                    stream,
                    expected_seq: expected,
                });
            }
        }
        let mut reader = SegmentReader {
            dir: dir.to_path_buf(),
            stream,
            segments: seqs.into_iter().collect(),
            path: PathBuf::new(),
            bytes: Vec::new(),
            cursor: 0,
            codec_version: 0,
            segment_frames: 0,
        };
        reader
            .load_next_segment()?
            .then_some(())
            .expect("open checked the stream has at least one segment");
        Ok(reader)
    }

    /// The codec version stamped in the stream's segment headers.
    #[must_use]
    pub fn codec_version(&self) -> u32 {
        self.codec_version
    }

    fn corrupt(&self, offset: usize, detail: impl Into<String>) -> StreamError {
        StreamError::Corrupt {
            path: self.path.clone(),
            offset: offset as u64,
            detail: detail.into(),
        }
    }

    /// Loads and header-validates the next segment; `false` when the
    /// stream has no more segments.
    fn load_next_segment(&mut self) -> Result<bool, StreamError> {
        let Some(seq) = self.segments.pop_front() else {
            return Ok(false);
        };
        let path = self.dir.join(segment_file_name(self.stream, seq));
        let bytes = fs::read(&path).map_err(|e| StreamError::io(&path, e))?;
        self.path = path;
        if bytes.len() < 8 || bytes[0..5] != IDENT[0..5] {
            return Err(StreamError::NotAStream {
                path: self.path.clone(),
            });
        }
        let version_end = bytes[5..8]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(8, |p| 5 + p);
        let version = String::from_utf8_lossy(&bytes[5..version_end]).into_owned();
        if version != "1" {
            return Err(StreamError::UnknownVersion {
                path: self.path.clone(),
                version,
            });
        }
        if bytes.len() < SEGMENT_HEADER_BYTES {
            return Err(StreamError::Truncated {
                path: self.path.clone(),
                offset: bytes.len() as u64,
            });
        }
        let codec = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let header_stream = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let header_seq = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        if header_stream != self.stream || header_seq != seq {
            return Err(self.corrupt(
                8,
                format!(
                    "header says stream {header_stream} segment {header_seq}, \
                     file name says stream {} segment {seq}",
                    self.stream
                ),
            ));
        }
        if self.segment_frames == 0 && self.codec_version != 0 && codec != self.codec_version {
            // Segments of one stream must agree on the codec.
            return Err(self.corrupt(
                8,
                format!(
                    "segment codec version {codec} differs from the stream's {}",
                    self.codec_version
                ),
            ));
        }
        self.codec_version = codec;
        self.bytes = bytes;
        self.cursor = SEGMENT_HEADER_BYTES;
        self.segment_frames = 0;
        Ok(true)
    }

    /// Reads `n` bytes of the current segment, or reports truncation.
    fn take(&mut self, n: usize, record_start: usize) -> Result<&[u8], StreamError> {
        if self.cursor + n > self.bytes.len() {
            return Err(StreamError::Truncated {
                path: self.path.clone(),
                offset: record_start as u64,
            });
        }
        let slice = &self.bytes[self.cursor..self.cursor + n];
        self.cursor += n;
        Ok(slice)
    }

    /// The next recorded frame, in seal order across segments, or
    /// `Ok(None)` at the clean end of the stream.
    ///
    /// # Errors
    ///
    /// [`StreamError::Truncated`] when a segment ends mid-record,
    /// [`StreamError::MissingEnd`] when it ends without an End record,
    /// and [`StreamError::Corrupt`] for checksum, tag, or count
    /// inconsistencies.
    pub fn next_frame(&mut self) -> Result<Option<StreamFrame>, StreamError> {
        loop {
            let start = self.cursor;
            if start >= self.bytes.len() {
                return Err(StreamError::MissingEnd {
                    path: self.path.clone(),
                });
            }
            let tag = self.bytes[start];
            self.cursor += 1;
            match tag {
                TAG_FRAME => {
                    let header = self.take(20, start)?;
                    let timestamp = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
                    let records = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
                    let len =
                        u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
                    let sum = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
                    let payload = self.take(len, start)?.to_vec();
                    if payload_checksum(&payload) != sum {
                        return Err(self.corrupt(start, "frame payload checksum mismatch"));
                    }
                    // The payload is a sealed frame image whose first word
                    // is its record count; the stream record repeats it,
                    // so the two must agree. Since codec v3 the word's top
                    // bit is the epoch-end mark and since v4 bit 30 is the
                    // degraded mark (see `lba_compress`), not part of the
                    // count — mask both before comparing.
                    if payload.len() >= 4 {
                        let embedded =
                            u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"))
                                & !((1 << 31) | (1 << 30));
                        if embedded != records {
                            return Err(self.corrupt(
                                start,
                                format!(
                                    "stream record says {records} records, \
                                     frame image says {embedded}"
                                ),
                            ));
                        }
                    }
                    self.segment_frames += 1;
                    return Ok(Some(StreamFrame {
                        timestamp,
                        records,
                        bytes: payload,
                    }));
                }
                TAG_END => {
                    let count =
                        u64::from_le_bytes(self.take(8, start)?.try_into().expect("8 bytes"));
                    if count != self.segment_frames {
                        return Err(self.corrupt(
                            start,
                            format!(
                                "End record says {count} frames, segment held {}",
                                self.segment_frames
                            ),
                        ));
                    }
                    if self.cursor != self.bytes.len() {
                        return Err(self.corrupt(start, "data after the End record"));
                    }
                    if !self.load_next_segment()? {
                        return Ok(None);
                    }
                }
                other => {
                    return Err(self.corrupt(start, format!("unknown record tag {other:#04x}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "lbas-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    /// A fake sealed frame image: record count embedded in the first word,
    /// line-padded length like the real codec produces.
    fn frame_image(records: u32, lines: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; lines * 64];
        bytes[0..4].copy_from_slice(&records.to_le_bytes());
        bytes[8] = 0xAB; // some payload
        bytes
    }

    #[test]
    fn round_trips_frames_across_rotated_segments() {
        let dir = temp_dir("roundtrip");
        let config = StreamConfig {
            segment_bytes: 256, // tiny: forces rotation every couple frames
            retain_bytes: u64::MAX,
        };
        let mut writer = SegmentWriter::create(&dir, 3, 2, config).unwrap();
        let frames: Vec<_> = (0..10u32).map(|i| (u64::from(i) * 100, i + 1)).collect();
        for &(ts, recs) in &frames {
            writer.append(ts, recs, &frame_image(recs, 1)).unwrap();
        }
        let summary = writer.finish().unwrap();
        assert_eq!(summary.frames, 10);
        assert!(summary.segments_retained > 1, "tiny segments must rotate");

        assert_eq!(stream_ids(&dir).unwrap(), vec![3]);
        let mut reader = SegmentReader::open(&dir, 3).unwrap();
        assert_eq!(reader.codec_version(), 2);
        for &(ts, recs) in &frames {
            let frame = reader.next_frame().unwrap().expect("frame present");
            assert_eq!((frame.timestamp, frame.records), (ts, recs));
            assert_eq!(frame.bytes, frame_image(recs, 1));
        }
        assert!(reader.next_frame().unwrap().is_none(), "clean end");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_cap_bounds_disk_and_reader_reports_aged_out_start() {
        let dir = temp_dir("retention");
        let config = StreamConfig {
            segment_bytes: 256,
            retain_bytes: 600,
        };
        let mut writer = SegmentWriter::create(&dir, 0, 1, config).unwrap();
        for i in 0..50u32 {
            writer.append(u64::from(i), 1, &frame_image(1, 1)).unwrap();
            assert!(
                writer.bytes_retained() <= 600,
                "retention must bound disk during the run: {} B",
                writer.bytes_retained()
            );
        }
        let summary = writer.finish().unwrap();
        assert!(summary.bytes_retained <= 600);
        assert!(summary.bytes_written > 600, "more was written than kept");

        // The on-disk files agree with the summary's accounting.
        let on_disk: u64 = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum();
        assert_eq!(on_disk, summary.bytes_retained);

        // Replay from the middle is impossible (predictor state): the
        // reader says so instead of decoding garbage.
        let err = SegmentReader::open(&dir, 0).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::MissingSegments {
                    expected_seq: 0,
                    ..
                }
            ),
            "got: {err}"
        );
        assert!(err.to_string().contains("contiguous from segment 0"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_segment_is_a_descriptive_error() {
        let dir = temp_dir("truncated");
        let mut writer = SegmentWriter::create(&dir, 0, 1, StreamConfig::default()).unwrap();
        writer.append(1, 2, &frame_image(2, 2)).unwrap();
        writer.finish().unwrap();
        let path = dir.join(segment_file_name(0, 0));
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 30); // cut mid-frame-record
        fs::write(&path, &bytes).unwrap();

        let mut reader = SegmentReader::open(&dir, 0).unwrap();
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(err, StreamError::Truncated { .. }), "got: {err}");
        assert!(err.to_string().contains("truncated mid-record"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_end_record_is_a_descriptive_error() {
        let dir = temp_dir("noend");
        let mut writer = SegmentWriter::create(&dir, 0, 1, StreamConfig::default()).unwrap();
        writer.append(1, 2, &frame_image(2, 1)).unwrap();
        writer.finish().unwrap();
        let path = dir.join(segment_file_name(0, 0));
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - END_RECORD_BYTES as usize);
        fs::write(&path, &bytes).unwrap();

        let mut reader = SegmentReader::open(&dir, 0).unwrap();
        let frame = reader.next_frame().unwrap().expect("frame still intact");
        assert_eq!(frame.records, 2);
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(err, StreamError::MissingEnd { .. }), "got: {err}");
        assert!(err.to_string().contains("not closed cleanly"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_format_version_is_a_descriptive_error() {
        let dir = temp_dir("version");
        let mut writer = SegmentWriter::create(&dir, 0, 1, StreamConfig::default()).unwrap();
        writer.append(1, 1, &frame_image(1, 1)).unwrap();
        writer.finish().unwrap();
        let path = dir.join(segment_file_name(0, 0));
        let mut bytes = fs::read(&path).unwrap();
        bytes[5] = b'9'; // lbas/9
        fs::write(&path, &bytes).unwrap();

        let err = SegmentReader::open(&dir, 0).unwrap_err();
        assert!(
            matches!(&err, StreamError::UnknownVersion { version, .. } if version == "9"),
            "got: {err}"
        );
        assert!(err.to_string().contains("lbas/9"));

        // And a non-stream file is told apart from a future version.
        fs::write(&path, b"totally not a stream").unwrap();
        let err = SegmentReader::open(&dir, 0).unwrap_err();
        assert!(matches!(err, StreamError::NotAStream { .. }), "got: {err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_frame_corruption_is_a_descriptive_error() {
        let dir = temp_dir("corrupt");
        let mut writer = SegmentWriter::create(&dir, 0, 1, StreamConfig::default()).unwrap();
        writer.append(1, 4, &frame_image(4, 2)).unwrap();
        writer.finish().unwrap();
        let path = dir.join(segment_file_name(0, 0));
        let mut bytes = fs::read(&path).unwrap();
        let flip = SEGMENT_HEADER_BYTES + FRAME_RECORD_HEADER_BYTES as usize + 40;
        bytes[flip] ^= 0xFF; // flip one payload byte
        fs::write(&path, &bytes).unwrap();

        let mut reader = SegmentReader::open(&dir, 0).unwrap();
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(err, StreamError::Corrupt { .. }), "got: {err}");
        assert!(err.to_string().contains("checksum mismatch"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_record_frame_count_is_verified() {
        let dir = temp_dir("endcount");
        let mut writer = SegmentWriter::create(&dir, 0, 1, StreamConfig::default()).unwrap();
        writer.append(1, 1, &frame_image(1, 1)).unwrap();
        writer.append(2, 1, &frame_image(1, 1)).unwrap();
        writer.finish().unwrap();
        let path = dir.join(segment_file_name(0, 0));
        let mut bytes = fs::read(&path).unwrap();
        let end_count_at = bytes.len() - 8;
        bytes[end_count_at] = 9; // claim 9 frames
        fs::write(&path, &bytes).unwrap();

        let mut reader = SegmentReader::open(&dir, 0).unwrap();
        reader.next_frame().unwrap();
        reader.next_frame().unwrap();
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(err, StreamError::Corrupt { .. }), "got: {err}");
        assert!(err.to_string().contains("End record says 9"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_frame_lands_whole() {
        let dir = temp_dir("oversized");
        let config = StreamConfig {
            segment_bytes: 128,
            retain_bytes: u64::MAX,
        };
        let mut writer = SegmentWriter::create(&dir, 0, 1, config).unwrap();
        // 4 lines = 256 B > the 128 B segment budget.
        writer.append(1, 7, &frame_image(7, 4)).unwrap();
        writer.finish().unwrap();
        let mut reader = SegmentReader::open(&dir, 0).unwrap();
        let frame = reader.next_frame().unwrap().expect("oversized frame kept");
        assert_eq!(frame.bytes.len(), 256);
        assert!(reader.next_frame().unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_stream_round_trips() {
        let dir = temp_dir("empty");
        let writer = SegmentWriter::create(&dir, 0, 1, StreamConfig::default()).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.frames, 0);
        let mut reader = SegmentReader::open(&dir, 0).unwrap();
        assert!(reader.next_frame().unwrap().is_none());
        // A stream id that was never recorded is its own error.
        let err = SegmentReader::open(&dir, 7).unwrap_err();
        assert!(matches!(err, StreamError::NoSuchStream { stream: 7, .. }));
        fs::remove_dir_all(&dir).ok();
    }
}
