//! Event kinds and the per-instruction event record.

use std::fmt;

/// The type field of an event record.
///
/// `Alu` covers all register-to-register computation (including immediate
/// moves); the remaining kinds distinguish the events lifeguards subscribe
/// to. Runtime events (`Alloc` … `Syscall`) correspond to the libc-level
/// operations the paper's toolchain surfaced by instrumentation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// Register computation (ALU op, move, move-immediate).
    Alu = 0,
    /// Data load; `addr`/`size` hold the effective address and width.
    Load = 1,
    /// Data store; `addr`/`size` hold the effective address and width.
    Store = 2,
    /// Conditional branch (taken or not).
    Branch = 3,
    /// Direct jump.
    Jump = 4,
    /// Indirect jump through a register; `addr` holds the target.
    IndirectJump = 5,
    /// Direct call.
    Call = 6,
    /// Return.
    Return = 7,
    /// Heap allocation; `addr` holds the block address, `size` its length.
    Alloc = 8,
    /// Heap free; `addr` holds the block address.
    Free = 9,
    /// Lock acquire; `addr` identifies the lock.
    Lock = 10,
    /// Lock release; `addr` identifies the lock.
    Unlock = 11,
    /// External input; `addr`/`size` delimit the written byte range.
    Recv = 12,
    /// System call; `size` holds the syscall number.
    Syscall = 13,
    /// Thread termination (emitted when a thread halts).
    ThreadEnd = 14,
    /// Capture-side fold summary: `size` identical suppressed load/store
    /// duplicates collapsed into one record by the idempotency filter.
    /// `pc`/`tid`/`addr` are the duplicates' values, `in1` their access
    /// width in bytes, and `in2` is 1 for stores, 0 for loads. Only
    /// lifeguards whose soundness contract folds duplicates into counts
    /// (MemProfile) subscribe to it.
    Repeat = 15,
}

impl EventKind {
    /// Number of event kinds.
    pub const COUNT: usize = 16;

    /// All kinds in encoding order.
    pub const ALL: [EventKind; Self::COUNT] = [
        EventKind::Alu,
        EventKind::Load,
        EventKind::Store,
        EventKind::Branch,
        EventKind::Jump,
        EventKind::IndirectJump,
        EventKind::Call,
        EventKind::Return,
        EventKind::Alloc,
        EventKind::Free,
        EventKind::Lock,
        EventKind::Unlock,
        EventKind::Recv,
        EventKind::Syscall,
        EventKind::ThreadEnd,
        EventKind::Repeat,
    ];

    /// The kind's code as stored in encoded records.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a kind from its code.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// Whether records of this kind carry a meaningful `addr` field.
    #[must_use]
    pub fn has_addr(self) -> bool {
        matches!(
            self,
            EventKind::Load
                | EventKind::Store
                | EventKind::IndirectJump
                | EventKind::Alloc
                | EventKind::Free
                | EventKind::Lock
                | EventKind::Unlock
                | EventKind::Recv
                | EventKind::Repeat
        )
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EventKind::Alu => "alu",
            EventKind::Load => "load",
            EventKind::Store => "store",
            EventKind::Branch => "branch",
            EventKind::Jump => "jump",
            EventKind::IndirectJump => "ijump",
            EventKind::Call => "call",
            EventKind::Return => "return",
            EventKind::Alloc => "alloc",
            EventKind::Free => "free",
            EventKind::Lock => "lock",
            EventKind::Unlock => "unlock",
            EventKind::Recv => "recv",
            EventKind::Syscall => "syscall",
            EventKind::ThreadEnd => "thread-end",
            EventKind::Repeat => "repeat",
        };
        f.write_str(name)
    }
}

/// Size of a raw (uncompressed) encoded record in bytes.
///
/// Layout: pc(8) + kind(1) + tid(1) + in1(1) + in2(1) + out(1) + addr(8) +
/// size(4) = 25 bytes. This is the bandwidth baseline the VPC compressor is
/// measured against (the paper targets < 1 byte/instruction).
pub const RAW_RECORD_BYTES: usize = 25;

const NO_OPERAND: u8 = 0xff;

/// Error returned by [`EventRecord::decode_raw`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeRecordError {
    /// The kind byte is not a valid [`EventKind`] code.
    BadKind(u8),
}

impl fmt::Display for DecodeRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeRecordError::BadKind(k) => write!(f, "invalid event kind code {k}"),
        }
    }
}

impl std::error::Error for DecodeRecordError {}

/// One log entry: the hardware-captured view of a retired instruction.
///
/// Fields are public because the record is a passive data structure shared
/// by every pipeline stage (capture → compress → transport → dispatch).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct EventRecord {
    /// Program counter of the retired instruction.
    pub pc: u64,
    /// Instruction type.
    pub kind: EventKind,
    /// Hardware thread that retired the instruction.
    pub tid: u8,
    /// First input operand identifier (register number), if any.
    pub in1: Option<u8>,
    /// Second input operand identifier (register number), if any.
    pub in2: Option<u8>,
    /// Output operand identifier (register number), if any.
    pub out: Option<u8>,
    /// Effective address (meaning depends on `kind`; 0 when absent).
    pub addr: u64,
    /// Access width / allocation size / recv length / syscall number.
    pub size: u32,
}

impl EventRecord {
    /// Creates an ALU record.
    #[must_use]
    pub fn alu(pc: u64, tid: u8, in1: Option<u8>, in2: Option<u8>, out: Option<u8>) -> Self {
        EventRecord {
            pc,
            kind: EventKind::Alu,
            tid,
            in1,
            in2,
            out,
            addr: 0,
            size: 0,
        }
    }

    /// Creates a load record.
    #[must_use]
    pub fn load(pc: u64, tid: u8, base: Option<u8>, out: Option<u8>, addr: u64, size: u32) -> Self {
        EventRecord {
            pc,
            kind: EventKind::Load,
            tid,
            in1: base,
            in2: None,
            out,
            addr,
            size,
        }
    }

    /// Creates a store record.
    #[must_use]
    pub fn store(
        pc: u64,
        tid: u8,
        src: Option<u8>,
        base: Option<u8>,
        addr: u64,
        size: u32,
    ) -> Self {
        EventRecord {
            pc,
            kind: EventKind::Store,
            tid,
            in1: src,
            in2: base,
            out: None,
            addr,
            size,
        }
    }

    /// Creates a capture-side fold summary: `count` suppressed duplicates
    /// of a `width`-byte load (or store, when `is_store`) at `pc`/`addr`
    /// collapsed into one record. See [`EventKind::Repeat`].
    #[must_use]
    pub fn repeat(pc: u64, tid: u8, addr: u64, width: u32, is_store: bool, count: u32) -> Self {
        debug_assert!(width <= 8, "access width {width} exceeds 8 bytes");
        EventRecord {
            pc,
            kind: EventKind::Repeat,
            tid,
            in1: Some(width as u8),
            in2: Some(u8::from(is_store)),
            out: None,
            addr,
            size: count,
        }
    }

    /// For a [`EventKind::Repeat`] record: the number of duplicates folded
    /// into it.
    #[must_use]
    pub fn repeat_count(&self) -> u32 {
        debug_assert_eq!(self.kind, EventKind::Repeat);
        self.size
    }

    /// For a [`EventKind::Repeat`] record: the access width in bytes of
    /// each folded duplicate.
    #[must_use]
    pub fn repeat_width(&self) -> u32 {
        debug_assert_eq!(self.kind, EventKind::Repeat);
        u32::from(self.in1.unwrap_or(0))
    }

    /// For a [`EventKind::Repeat`] record: whether the folded duplicates
    /// were stores (`false`: loads).
    #[must_use]
    pub fn repeat_is_store(&self) -> bool {
        debug_assert_eq!(self.kind, EventKind::Repeat);
        self.in2 == Some(1)
    }

    /// Whether this record is a data-memory reference (load or store).
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(self.kind, EventKind::Load | EventKind::Store)
    }

    /// Encodes the record into its fixed raw form ([`RAW_RECORD_BYTES`]).
    #[must_use]
    pub fn encode_raw(&self) -> [u8; RAW_RECORD_BYTES] {
        let mut out = [0u8; RAW_RECORD_BYTES];
        out[0..8].copy_from_slice(&self.pc.to_le_bytes());
        out[8] = self.kind.code();
        out[9] = self.tid;
        out[10] = self.in1.unwrap_or(NO_OPERAND);
        out[11] = self.in2.unwrap_or(NO_OPERAND);
        out[12] = self.out.unwrap_or(NO_OPERAND);
        out[13..21].copy_from_slice(&self.addr.to_le_bytes());
        out[21..25].copy_from_slice(&self.size.to_le_bytes());
        out
    }

    /// Decodes a record from its fixed raw form.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeRecordError::BadKind`] when the kind byte is invalid.
    pub fn decode_raw(bytes: &[u8; RAW_RECORD_BYTES]) -> Result<Self, DecodeRecordError> {
        let kind = EventKind::from_code(bytes[8]).ok_or(DecodeRecordError::BadKind(bytes[8]))?;
        let opt = |b: u8| if b == NO_OPERAND { None } else { Some(b) };
        Ok(EventRecord {
            pc: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            kind,
            tid: bytes[9],
            in1: opt(bytes[10]),
            in2: opt(bytes[11]),
            out: opt(bytes[12]),
            addr: u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes")),
            size: u32::from_le_bytes(bytes[21..25].try_into().expect("4 bytes")),
        })
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t{} {:#x}] {}", self.tid, self.pc, self.kind)?;
        if self.kind.has_addr() {
            write!(f, " @{:#x}+{}", self.addr, self.size)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(EventKind::COUNT as u8), None);
    }

    #[test]
    fn raw_encode_decode_round_trip() {
        let records = [
            EventRecord::alu(0x1010, 2, Some(1), Some(2), Some(3)),
            EventRecord::load(0x1018, 0, Some(4), Some(5), 0x4000_0010, 8),
            EventRecord::store(0x1020, 1, Some(6), Some(7), 0x7000_0000, 1),
            EventRecord {
                pc: 0x2000,
                kind: EventKind::Syscall,
                tid: 0,
                in1: None,
                in2: None,
                out: None,
                addr: 0,
                size: 42,
            },
        ];
        for rec in records {
            let decoded = EventRecord::decode_raw(&rec.encode_raw()).expect("decodes");
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let mut raw = EventRecord::alu(0, 0, None, None, None).encode_raw();
        raw[8] = 200;
        assert_eq!(
            EventRecord::decode_raw(&raw),
            Err(DecodeRecordError::BadKind(200))
        );
    }

    #[test]
    fn memory_classification() {
        assert!(EventRecord::load(0, 0, None, None, 0, 4).is_memory());
        assert!(EventRecord::store(0, 0, None, None, 0, 4).is_memory());
        assert!(!EventRecord::alu(0, 0, None, None, None).is_memory());
    }

    #[test]
    fn repeat_summary_round_trips_and_exposes_fields() {
        let rec = EventRecord::repeat(0x1040, 2, 0x4000_0080, 8, true, 1234);
        assert_eq!(rec.kind, EventKind::Repeat);
        assert_eq!(rec.repeat_count(), 1234);
        assert_eq!(rec.repeat_width(), 8);
        assert!(rec.repeat_is_store());
        assert!(!rec.is_memory(), "a summary is not itself an access");
        let decoded = EventRecord::decode_raw(&rec.encode_raw()).expect("decodes");
        assert_eq!(decoded, rec);
        let load_summary = EventRecord::repeat(0x1040, 0, 0x10, 4, false, 1);
        assert!(!load_summary.repeat_is_store());
    }

    #[test]
    fn has_addr_matches_kinds() {
        assert!(EventKind::Load.has_addr());
        assert!(EventKind::Recv.has_addr());
        assert!(!EventKind::Alu.has_addr());
        assert!(!EventKind::Syscall.has_addr());
    }

    #[test]
    fn display_is_informative() {
        let rec = EventRecord::load(0x1000, 3, Some(1), Some(2), 0xabc, 4);
        let s = rec.to_string();
        assert!(s.contains("t3"));
        assert!(s.contains("load"));
        assert!(s.contains("0xabc"));
    }
}
