//! Cache hierarchy simulator for the LBA reproduction.
//!
//! Models the paper's §3 memory system: per-core split 16 KiB L1
//! instruction/data caches and a 512 KiB shared L2, all set-associative with
//! LRU replacement and write-back/write-allocate policy. Latency accounting
//! is first-order: an L1 hit is folded into the single-CPI core model, an L2
//! hit adds [`Latencies::l2_hit`] cycles and a miss to memory adds
//! [`Latencies::memory`] cycles.
//!
//! The central type is [`MemSystem`], which owns every core's private L1s
//! plus the shared L2 and returns the *extra* cycles for each access:
//!
//! ```
//! use lba_cache::{MemSystem, MemSystemConfig};
//!
//! let mut mem = MemSystem::new(MemSystemConfig::dual_core());
//! let first = mem.data_access(0, 0x4000_0000, 4, false);
//! let again = mem.data_access(0, 0x4000_0000, 4, false);
//! assert!(first > again, "second access hits in L1");
//! assert_eq!(again, 0);
//! ```

mod cache;
mod system;

pub use cache::{Access, CacheConfig, CacheStats, SetAssocCache};
pub use system::{CoreCacheStats, Latencies, MemSystem, MemSystemConfig};
