//! A single set-associative, write-back, LRU cache.

use std::fmt;

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// The paper's L1 configuration: 16 KiB, 64 B lines, 4-way.
    #[must_use]
    pub fn l1_default() -> Self {
        CacheConfig {
            size_bytes: 16 << 10,
            line_bytes: 64,
            assoc: 4,
        }
    }

    /// The paper's shared L2 configuration: 512 KiB, 64 B lines, 8-way.
    #[must_use]
    pub fn l2_default() -> Self {
        CacheConfig {
            size_bytes: 512 << 10,
            line_bytes: 64,
            assoc: 8,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.validate();
        (self.size_bytes / (self.line_bytes * self.assoc as u64)) as usize
    }

    /// Checks the geometry: power-of-two line size and set count, non-zero
    /// associativity, capacity divisible by `line_bytes * assoc`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid geometry.
    pub fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.assoc > 0, "associativity must be non-zero");
        assert_eq!(
            self.size_bytes % (self.line_bytes * self.assoc as u64),
            0,
            "capacity must divide evenly into sets"
        );
        let sets = self.size_bytes / (self.line_bytes * self.assoc as u64);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%), {} writebacks",
            self.accesses,
            self.misses,
            self.miss_ratio() * 100.0,
            self.writebacks
        )
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was fetched; `writeback` reports whether a dirty victim was
    /// evicted.
    Miss {
        /// Whether the evicted victim was dirty.
        writeback: bool,
    },
}

impl Access {
    /// Whether this access hit.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, Access::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// A set-associative cache with true-LRU replacement and
/// write-back/write-allocate policy.
///
/// The cache tracks tags only (no data); the [`Memory`](https://docs.rs)
/// model holds contents. This is the standard trace-driven simulation split.
///
/// # Examples
///
/// ```
/// use lba_cache::{Access, CacheConfig, SetAssocCache};
///
/// let mut cache = SetAssocCache::new(CacheConfig::l1_default());
/// assert!(matches!(cache.access(0x1000, false), Access::Miss { .. }));
/// assert_eq!(cache.access(0x1000, false), Access::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// All sets' lines in one flat allocation, MRU-first within each set:
    /// set `s` occupies `lines[s * assoc ..][..lens[s]]`. One contiguous
    /// block avoids a pointer chase per access.
    lines: Vec<Line>,
    /// Valid line count of each set.
    lens: Vec<u8>,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(config.assoc <= u8::MAX as usize, "associativity fits a u8");
        SetAssocCache {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    dirty: false
                };
                num_sets * config.assoc
            ],
            lens: vec![0; num_sets],
            stats: CacheStats::default(),
            set_mask: num_sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The line-aligned address of `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    /// Accesses the line containing `addr`, updating LRU state and
    /// statistics. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        let tag = addr >> self.line_shift;
        let set_idx = (tag & self.set_mask) as usize;
        let assoc = self.config.assoc;
        let len = usize::from(self.lens[set_idx]);
        let set = &mut self.lines[set_idx * assoc..set_idx * assoc + len];
        self.stats.accesses += 1;

        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            // Promote to MRU in place; the common already-MRU case is free.
            if pos != 0 {
                set[..=pos].rotate_right(1);
            }
            set[0].dirty |= write;
            self.stats.hits += 1;
            return Access::Hit;
        }

        self.stats.misses += 1;
        let mut writeback = false;
        if len == assoc {
            // Evict the LRU tail by rotating it to the front and
            // overwriting — one shift instead of a pop + front insert.
            let victim = set[len - 1];
            writeback = victim.dirty;
            if writeback {
                self.stats.writebacks += 1;
            }
            set.rotate_right(1);
            set[0] = Line { tag, dirty: write };
        } else {
            // Room left: shift the valid prefix down and install as MRU.
            let set = &mut self.lines[set_idx * assoc..set_idx * assoc + len + 1];
            set.rotate_right(1);
            set[0] = Line { tag, dirty: write };
            self.lens[set_idx] = (len + 1) as u8;
        }
        Access::Miss { writeback }
    }

    /// Whether the line containing `addr` is resident (no LRU/stat update).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let tag = addr >> self.line_shift;
        let set_idx = (tag & self.set_mask) as usize;
        let len = usize::from(self.lens[set_idx]);
        self.lines[set_idx * self.config.assoc..set_idx * self.config.assoc + len]
            .iter()
            .any(|l| l.tag == tag)
    }

    /// Invalidates all lines and clears dirty state (statistics are kept).
    pub fn flush(&mut self) {
        self.lens.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512 bytes.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
        })
    }

    #[test]
    fn config_defaults_match_paper() {
        assert_eq!(CacheConfig::l1_default().size_bytes, 16 << 10);
        assert_eq!(CacheConfig::l2_default().size_bytes, 512 << 10);
        CacheConfig::l1_default().validate();
        CacheConfig::l2_default().validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig {
            size_bytes: 512,
            line_bytes: 48,
            assoc: 2,
        }
        .validate();
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false).is_hit());
        assert!(c.access(0x1000, false).is_hit());
        assert!(c.access(0x103f, false).is_hit(), "same 64B line");
        assert!(!c.access(0x1040, false).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set index = (addr/64) & 3. Use addresses mapping to set 0:
        // lines 0, 4, 8 (x64).
        let a = 0;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = tiny();
        let a = 0;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, true); // dirty
        c.access(b, false);
        let acc = c.access(d, false); // evicts a (LRU), which is dirty
        assert_eq!(acc, Access::Miss { writeback: true });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = tiny();
        let a = 0;
        c.access(a, false);
        c.access(a, true); // dirty via hit
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(b, false);
        c.access(d, false); // evicts a
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn flush_empties_cache_but_keeps_stats() {
        let mut c = tiny();
        c.access(0, false);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 512 bytes
                            // Stream over 4 KiB twice: second pass should still miss everywhere.
        for pass in 0..2 {
            for line in 0..64u64 {
                let acc = c.access(line * 64, false);
                assert!(!acc.is_hit(), "pass {pass} line {line} unexpectedly hit");
            }
        }
    }
}
