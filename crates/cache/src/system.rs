//! The multi-core memory system: private L1s over a shared L2.

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};

/// Access latencies in cycles.
///
/// The core model is single-CPI, so an L1 hit costs no *extra* cycles; the
/// values here are penalties added on top of the base cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Extra cycles for an access that hits in L2 (paper-era on-chip L2).
    pub l2_hit: u64,
    /// Extra cycles for an access that misses to memory.
    pub memory: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            l2_hit: 10,
            memory: 100,
        }
    }
}

/// Configuration of a [`MemSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// Number of cores (each gets a private L1I + L1D).
    pub cores: usize,
    /// Per-core L1 instruction-cache geometry.
    pub l1i: CacheConfig,
    /// Per-core L1 data-cache geometry.
    pub l1d: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// Latency model.
    pub latencies: Latencies,
}

impl MemSystemConfig {
    /// The paper's dual-core configuration: application core 0 and
    /// lifeguard core 1, each with 16 KiB split L1s, sharing a 512 KiB L2.
    #[must_use]
    pub fn dual_core() -> Self {
        MemSystemConfig {
            cores: 2,
            l1i: CacheConfig::l1_default(),
            l1d: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            latencies: Latencies::default(),
        }
    }

    /// A single-core configuration (unmonitored and DBI baselines).
    #[must_use]
    pub fn single_core() -> Self {
        MemSystemConfig {
            cores: 1,
            ..Self::dual_core()
        }
    }

    /// A configuration with `cores` cores (parallel-lifeguard extension).
    #[must_use]
    pub fn multi_core(cores: usize) -> Self {
        MemSystemConfig {
            cores,
            ..Self::dual_core()
        }
    }
}

#[derive(Debug, Clone)]
struct CoreCaches {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
}

/// Per-core cache statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCacheStats {
    /// L1 instruction-cache counters.
    pub l1i: CacheStats,
    /// L1 data-cache counters.
    pub l1d: CacheStats,
}

/// The simulated memory hierarchy: per-core private split L1 caches over a
/// shared L2, with cycle-penalty accounting.
///
/// Accesses return the number of *extra* cycles (0 for an L1 hit). Accesses
/// that straddle a cache-line boundary touch both lines and sum their
/// penalties.
///
/// # Examples
///
/// ```
/// use lba_cache::{MemSystem, MemSystemConfig};
///
/// let mut mem = MemSystem::new(MemSystemConfig::dual_core());
/// // Core 0 warms a line; core 1 then finds it in the shared L2.
/// let cold = mem.data_access(0, 0x8000, 8, false);
/// let from_l2 = mem.data_access(1, 0x8000, 8, false);
/// assert!(cold > from_l2);
/// assert!(from_l2 > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MemSystem {
    config: MemSystemConfig,
    cores: Vec<CoreCaches>,
    l2: SetAssocCache,
}

impl MemSystem {
    /// Creates an empty (cold) memory system.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is zero or any cache geometry is invalid.
    #[must_use]
    pub fn new(config: MemSystemConfig) -> Self {
        assert!(config.cores > 0, "memory system needs at least one core");
        let cores = (0..config.cores)
            .map(|_| CoreCaches {
                l1i: SetAssocCache::new(config.l1i),
                l1d: SetAssocCache::new(config.l1d),
            })
            .collect();
        MemSystem {
            cores,
            l2: SetAssocCache::new(config.l2),
            config,
        }
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &MemSystemConfig {
        &self.config
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    fn line_bytes(&self) -> u64 {
        self.config.l1d.line_bytes
    }

    /// Penalty for one line-sized access through an L1 (by kind) and the L2.
    fn access_line(&mut self, core: usize, icache: bool, addr: u64, write: bool) -> u64 {
        let l1 = if icache {
            &mut self.cores[core].l1i
        } else {
            &mut self.cores[core].l1d
        };
        if l1.access(addr, write).is_hit() {
            return 0;
        }
        // L1 miss: the fill goes through the shared L2. Writes still fetch
        // the line first (write-allocate); the fill itself is a read.
        if self.l2.access(addr, write).is_hit() {
            self.config.latencies.l2_hit
        } else {
            self.config.latencies.memory
        }
    }

    /// Accesses `width` bytes of data at `addr` from `core`, returning the
    /// extra cycles beyond the base CPI.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn data_access(&mut self, core: usize, addr: u64, width: u32, write: bool) -> u64 {
        let line = self.line_bytes();
        let first = addr & !(line - 1);
        let last = (addr + u64::from(width).saturating_sub(1)) & !(line - 1);
        let mut cycles = self.access_line(core, false, first, write);
        if last != first {
            cycles += self.access_line(core, false, last, write);
        }
        cycles
    }

    /// Fetches the instruction at `addr` for `core`, returning the extra
    /// cycles beyond the base CPI.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn inst_fetch(&mut self, core: usize, addr: u64) -> u64 {
        self.access_line(core, true, addr, false)
    }

    /// Cache statistics for one core's private L1s.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_stats(&self, core: usize) -> CoreCacheStats {
        CoreCacheStats {
            l1i: *self.cores[core].l1i.stats(),
            l1d: *self.cores[core].l1d.stats(),
        }
    }

    /// Shared-L2 statistics.
    #[must_use]
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemSystem {
        MemSystem::new(MemSystemConfig::multi_core(cores))
    }

    #[test]
    fn l1_hit_costs_nothing_extra() {
        let mut m = sys(1);
        let cold = m.data_access(0, 0x100, 4, false);
        assert_eq!(cold, Latencies::default().memory);
        assert_eq!(m.data_access(0, 0x100, 4, false), 0);
    }

    #[test]
    fn l2_hit_cheaper_than_memory() {
        let mut m = sys(2);
        let cold = m.data_access(0, 0x100, 4, false);
        let shared = m.data_access(1, 0x100, 4, false);
        assert_eq!(cold, Latencies::default().memory);
        assert_eq!(shared, Latencies::default().l2_hit);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut m = sys(1);
        // 64-byte lines: an 8-byte access at offset 60 spans two lines.
        let penalty = m.data_access(0, 60, 8, false);
        assert_eq!(penalty, 2 * Latencies::default().memory);
        assert_eq!(m.data_access(0, 60, 8, false), 0, "both lines now resident");
    }

    #[test]
    fn icache_and_dcache_are_split() {
        let mut m = sys(1);
        assert!(m.inst_fetch(0, 0x1000) > 0);
        assert_eq!(m.inst_fetch(0, 0x1000), 0);
        // Data access to the same address still misses L1D (it only primed
        // L1I and L2).
        assert_eq!(
            m.data_access(0, 0x1000, 4, false),
            Latencies::default().l2_hit
        );
    }

    #[test]
    fn per_core_l1s_are_private() {
        let mut m = sys(2);
        m.data_access(0, 0x200, 4, false);
        // Core 1 misses its own L1 (hits shared L2).
        assert_eq!(
            m.data_access(1, 0x200, 4, false),
            Latencies::default().l2_hit
        );
        let s0 = m.core_stats(0);
        let s1 = m.core_stats(1);
        assert_eq!(s0.l1d.accesses, 1);
        assert_eq!(s1.l1d.accesses, 1);
        assert_eq!(m.l2_stats().accesses, 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_core_panics() {
        let mut m = sys(1);
        let _ = m.data_access(1, 0, 4, false);
    }
}
