//! Workload characterisation probe: prints each benchmark's instruction
//! count, memory-reference fraction, CPI and L1D miss ratio — the knobs
//! the generators were tuned against (DESIGN.md §2).
//!
//! ```sh
//! cargo run --release -p lba-workloads --example probe
//! ```

use lba_cache::{MemSystem, MemSystemConfig};
use lba_cpu::{Machine, MachineConfig};
use lba_record::TraceStats;
use lba_workloads::Benchmark;

fn main() {
    println!("benchmark    instructions   mem%    cpi  l1d-miss%");
    for benchmark in Benchmark::ALL {
        let program = benchmark.build();
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        let mut stats = TraceStats::new();
        let cycles = machine
            .run(&mut mem, |r| stats.observe(&r.record))
            .unwrap_or_else(|e| panic!("{} failed: {e}", benchmark.name()));
        println!(
            "{:10} {:12} {:6.1} {:6.2} {:10.1}",
            benchmark.name(),
            stats.instructions(),
            stats.memory_ref_fraction() * 100.0,
            cycles as f64 / stats.instructions() as f64,
            mem.core_stats(0).l1d.miss_ratio() * 100.0
        );
    }
}
