//! `mcf` — network-simplex optimisation.
//!
//! Character: the cache-hostile benchmark. A 1 MiB heap arena (twice the
//! shared L2) is first populated, then traversed with data-dependent
//! pointer chasing: each loaded value determines the next node address, so
//! nearly every arena access misses L1 and many miss L2.

use lba_isa::{r, Assembler, Program, Reg, Width};

const ARENA_BYTES: i64 = 1 << 20;
/// Mask selecting a 16-byte-aligned offset within the arena.
const ARENA_MASK: i64 = ARENA_BYTES - 16;
const INIT_STRIDE: i64 = 16;
const OUTER: i64 = 8;
const CHASES: i64 = 3072;

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("mcf");

    let (arena, size, p) = (r(1), r(2), r(3));
    let (i, outer, seed) = (r(4), r(5), r(6));
    let (v, c, acc, a) = (r(7), r(8), r(9), r(10));

    asm.movi(size, ARENA_BYTES);
    asm.alloc(arena, size);

    // Build the network: write a pseudo-random word into every node so the
    // chase below follows unpredictable links.
    asm.mov(p, arena);
    asm.movi(seed, 0x2545F49);
    asm.movi(i, ARENA_BYTES / INIT_STRIDE);
    let init_loop = asm.here("init_loop");
    asm.muli(seed, seed, 0x19660D);
    asm.addi(seed, seed, 0x3C6EF35F);
    asm.store(seed, p, 0, Width::B8);
    asm.store(seed, p, 8, Width::B8);
    asm.addi(p, p, INIT_STRIDE);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, init_loop);
    asm.syscall(2); // network loaded

    // Simplex iterations: dependent pointer chase with a cost update.
    asm.movi(outer, OUTER * i64::from(scale));
    asm.movi(v, 0x1234_5678);
    asm.movi(acc, 0);
    let outer_loop = asm.here("outer_loop");
    asm.movi(i, CHASES);
    let chase_loop = asm.here("chase_loop");
    // next = arena + (v & mask): the loaded value *is* the link.
    asm.andi(a, v, ARENA_MASK);
    asm.add(a, a, arena);
    asm.load(v, a, 0, Width::B8);
    asm.load(c, a, 8, Width::B8);
    asm.add(acc, acc, c);
    asm.store(acc, a, 8, Width::B8);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, chase_loop);
    // Report the improved objective.
    asm.syscall(1);
    asm.subi(outer, outer, 1);
    asm.bne(outer, Reg::ZERO, outer_loop);
    asm.free(arena);
    asm.halt();
    asm.finish().expect("mcf assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = build(1);
        assert_eq!(p.name(), "mcf");
        assert_eq!(p.entries().len(), 1);
    }
}
