//! Planted-bug programs for the detection examples and tests.
//!
//! The figure benchmarks are clean; these small programs each contain a
//! deliberate bug of the class one of the paper's three lifeguards
//! detects — they are the "deployed code with latent bugs" scenario the
//! paper motivates (§1).

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

/// A program with the full AddrCheck bug menu:
///
/// 1. a **use-after-free** read,
/// 2. a **double free**,
/// 3. an **invalid free** (interior pointer),
/// 4. a **leak** (a block never freed),
/// 5. an access to **never-allocated** heap memory.
///
/// Between the bugs it does legitimate buffer work, so the trace is not
/// bug-dominated.
#[must_use]
pub fn memory_bugs() -> Program {
    let mut asm = Assembler::new("memory-bugs");
    let (a, b, c, size) = (r(1), r(2), r(3), r(4));
    let (p, i, v) = (r(5), r(6), r(7));

    asm.movi(size, 128);
    asm.alloc(a, size);
    asm.alloc(b, size);
    asm.alloc(c, size);

    // Legitimate work: fill block A.
    asm.mov(p, a);
    asm.movi(i, 16);
    let fill = asm.here("fill");
    asm.store(i, p, 0, Width::B8);
    asm.addi(p, p, 8);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, fill);

    // Bug 1: read A after freeing it.
    asm.free(a);
    asm.load(v, a, 8, Width::B8);

    // Bug 2: free A again.
    asm.free(a);

    // Bug 3: free an interior pointer of B.
    asm.addi(p, b, 16);
    asm.free(p);

    // Bug 5: touch heap memory that was never allocated.
    asm.movi(p, 0x4100_0000);
    asm.store(v, p, 0, Width::B8);

    asm.syscall(1);
    // Clean up B but *leak* C (bug 4).
    asm.free(b);
    asm.halt();
    asm.finish().expect("memory-bugs assembles")
}

/// A control-flow-hijack victim for TaintCheck.
///
/// The program keeps a function-pointer slot directly after a fixed-size
/// input buffer and then copies `recv`'d bytes with **no bounds check**,
/// so the tail of the attacker-controlled input overwrites the function
/// pointer. The indirect call through the clobbered slot is the exploit:
/// the supplied input aims it at `privileged`, a function the normal
/// control flow never reaches. TaintCheck flags the tainted jump target.
#[must_use]
pub fn exploit() -> Program {
    let mut asm = Assembler::new("exploit");
    // Globals: 32-byte input buffer, then the function-pointer slot.
    let buf = GLOBAL_BASE as i64;
    let slot = buf + 32;

    let (p, q, i, v) = (r(1), r(2), r(3), r(4));
    let (size, h) = (r(5), r(6));

    let handler = asm.label("handler");
    let privileged = asm.label("privileged");
    let after = asm.label("after");

    // Install the legitimate handler pointer.
    asm.lea(h, handler);
    asm.movi(p, slot);
    asm.store(h, p, 0, Width::B8);

    // Receive 40 attacker bytes into a scratch heap block: 32 for the
    // buffer, 8 that will smash the slot.
    asm.movi(size, 40);
    asm.alloc(q, size);
    asm.recv(q, size);

    // memcpy(buf, input, 40) — the missing bounds check.
    asm.movi(p, buf);
    asm.movi(i, 5);
    let copy = asm.here("copy");
    asm.load(v, q, 0, Width::B8);
    asm.store(v, p, 0, Width::B8);
    asm.addi(p, p, 8);
    asm.addi(q, q, 8);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, copy);

    // Dispatch through the (now clobbered) function pointer.
    asm.movi(p, slot);
    asm.load(h, p, 0, Width::B8);
    asm.call_reg(h);
    asm.jump(after);

    asm.bind(handler);
    asm.movi(v, 1); // benign behaviour
    asm.ret();

    asm.bind(privileged);
    asm.movi(v, 0x5ec2e7); // the "secret" action the attacker wants
    asm.syscall(9);
    asm.ret();

    asm.bind(after);
    asm.halt();

    let program = asm.finish().expect("exploit assembles");
    // The attack payload: 32 filler bytes, then the address of
    // `privileged` in little-endian — computed from the assembled layout.
    let privileged_pc = program
        .code()
        .iter()
        .enumerate()
        .find_map(|(idx, inst)| match inst {
            lba_isa::Instruction::MovImm { imm, .. } if *imm == 0x5ec2e7 => {
                Some(program.pc_of(idx))
            }
            _ => None,
        })
        .expect("privileged body found");

    // Rebuild with the payload as input (the program text is identical).
    let mut input = vec![0x41u8; 32];
    input.extend_from_slice(&privileged_pc.to_le_bytes());
    rebuild_with_input(program, input)
}

/// Rebuilds a program with a replacement input stream.
fn rebuild_with_input(program: Program, input: Vec<u8>) -> Program {
    Program::new(
        program.name().to_string(),
        program.code().to_vec(),
        program.entries().to_vec(),
        program.data().to_vec(),
        input,
    )
    .expect("program stays valid")
}

/// A two-thread counter with a missing lock on one side: the classic data
/// race LockSet exists to catch. Thread 0 increments under the lock;
/// thread 1 "forgot" the lock on its second increment.
#[must_use]
pub fn data_race() -> Program {
    let mut asm = Assembler::new("data-race");
    let counter = GLOBAL_BASE as i64 + 0x40;
    let lock_addr = GLOBAL_BASE as i64 + 0x80;

    let (p, lk, v, i) = (r(1), r(2), r(3), r(4));

    // Thread 0: disciplined.
    let t0 = asm.here("t0");
    asm.entry(t0);
    asm.movi(p, counter);
    asm.movi(lk, lock_addr);
    asm.movi(i, 20);
    let t0_loop = asm.here("t0_loop");
    asm.lock(lk);
    asm.load(v, p, 0, Width::B8);
    asm.addi(v, v, 1);
    asm.store(v, p, 0, Width::B8);
    asm.unlock(lk);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, t0_loop);
    asm.syscall(1);
    asm.halt();

    // Thread 1: locks at first, then forgets.
    let t1 = asm.here("t1");
    asm.entry(t1);
    asm.movi(p, counter);
    asm.movi(lk, lock_addr);
    asm.movi(i, 10);
    let t1_locked = asm.here("t1_locked");
    asm.lock(lk);
    asm.load(v, p, 0, Width::B8);
    asm.addi(v, v, 1);
    asm.store(v, p, 0, Width::B8);
    asm.unlock(lk);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, t1_locked);
    // The buggy unprotected increment.
    asm.load(v, p, 0, Width::B8);
    asm.addi(v, v, 1);
    asm.store(v, p, 0, Width::B8);
    asm.syscall(1);
    asm.halt();

    asm.finish().expect("data-race assembles")
}

/// A victim that leaks tainted data into a syscall argument *just before*
/// the syscall — the containment scenario: the OS must stall the syscall
/// until TaintCheck catches up and flags it.
#[must_use]
pub fn tainted_syscall() -> Program {
    let mut asm = Assembler::new("tainted-syscall");
    let (buf, size) = (r(4), r(5));
    asm.movi(size, 16);
    asm.alloc(buf, size);
    asm.recv(buf, size);
    // Pad with benign work so the log has depth before the syscall.
    let (i, acc) = (r(6), r(7));
    asm.movi(i, 2000);
    let spin = asm.here("spin");
    asm.addi(acc, acc, 3);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, spin);
    // Load attacker bytes straight into the syscall argument register.
    asm.load(r(1), buf, 0, Width::B8);
    asm.syscall(13);
    asm.halt();
    asm.finish().expect("tainted-syscall assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bug_programs_assemble() {
        assert_eq!(memory_bugs().name(), "memory-bugs");
        assert_eq!(exploit().name(), "exploit");
        assert_eq!(data_race().name(), "data-race");
        assert_eq!(tainted_syscall().name(), "tainted-syscall");
    }

    #[test]
    fn exploit_payload_targets_privileged_code() {
        let p = exploit();
        let payload_target = u64::from_le_bytes(p.input()[32..40].try_into().unwrap());
        assert!(
            p.index_of(payload_target).is_some(),
            "payload must be a valid code address"
        );
    }

    #[test]
    fn data_race_has_two_threads() {
        assert_eq!(data_race().entries().len(), 2);
    }
}
