//! `gnuplot` — function plotting.
//!
//! Character: streaming transforms of sample arrays into point arrays;
//! medium working set (L1-overflowing, L2-resident), fixed-point
//! polynomial evaluation between the loads and the store.

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

use crate::rng;

const SAMPLES: i64 = 4096;
const PASSES: i64 = 5;

const SAMPLE_BASE: i64 = GLOBAL_BASE as i64;
const COEFF_BASE: i64 = GLOBAL_BASE as i64 + 0x10_000;
const POINT_BASE: i64 = GLOBAL_BASE as i64 + 0x20_000;

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("gnuplot");
    let mut rand = rng::rng_for("gnuplot");
    asm.data(
        SAMPLE_BASE as u64,
        rng::bytes(&mut rand, (SAMPLES * 8) as usize),
    );
    asm.data(
        COEFF_BASE as u64,
        rng::bytes(&mut rand, (SAMPLES * 8) as usize),
    );

    let (ps, pc, pp) = (r(1), r(2), r(3));
    let (pass, i) = (r(4), r(5));
    let (x, c, t, u) = (r(6), r(7), r(8), r(9));

    asm.movi(pass, PASSES * i64::from(scale));
    let pass_loop = asm.here("pass_loop");
    asm.movi(ps, SAMPLE_BASE);
    asm.movi(pc, COEFF_BASE);
    asm.movi(pp, POINT_BASE);
    asm.movi(i, SAMPLES / 2);
    let point_loop = asm.here("point_loop");
    // Two points per iteration (offset addressing); each point is
    // y = (x*x >> 16) + c, stored as an (x, y) pair.
    asm.load(x, ps, 0, Width::B8);
    asm.load(c, pc, 0, Width::B8);
    asm.mul(t, x, x);
    asm.shri(t, t, 16);
    asm.add(t, t, c);
    asm.store(x, pp, 0, Width::B8);
    asm.store(t, pp, 8, Width::B8);
    asm.load(x, ps, 8, Width::B8);
    asm.load(c, pc, 8, Width::B8);
    asm.mul(u, x, x);
    asm.shri(u, u, 16);
    asm.add(u, u, c);
    asm.store(x, pp, 16, Width::B8);
    asm.store(u, pp, 24, Width::B8);
    asm.addi(ps, ps, 16);
    asm.addi(pc, pc, 16);
    asm.addi(pp, pp, 32);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, point_loop);
    // Flush the curve to the terminal driver.
    asm.syscall(1);
    asm.subi(pass, pass, 1);
    asm.bne(pass, Reg::ZERO, pass_loop);
    asm.halt();
    asm.finish().expect("gnuplot assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = build(1);
        assert_eq!(p.name(), "gnuplot");
        assert_eq!(p.data().len(), 2);
        assert_eq!(p.data()[0].bytes.len(), (SAMPLES * 8) as usize);
    }
}
