//! `water` — SPLASH-2-style molecular dynamics (multi-threaded).
//!
//! Character: four threads each integrate a private molecule slab (loads of
//! position components, fixed-point force math, acceleration store), then
//! fold their partial forces into a shared global array **under a lock**.
//! Disciplined locking means LockSet sees heavy monitored traffic but no
//! races.

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

use crate::rng;

const THREADS: usize = 4;
const MOLECULES: i64 = 512;
const STEPS: i64 = 8;
const FORCE_BASE: i64 = GLOBAL_BASE as i64; // shared, lock-protected
const LOCK_ADDR: i64 = GLOBAL_BASE as i64 + 0x100;
const PRIV_BASE: i64 = GLOBAL_BASE as i64 + 0x1_0000;
const PRIV_STRIDE: i64 = 0x8000; // 32 KiB per-thread slab

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("water");
    let mut rand = rng::rng_for("water");
    for tid in 0..THREADS {
        asm.data(
            (PRIV_BASE + tid as i64 * PRIV_STRIDE) as u64,
            rng::bytes(&mut rand, (MOLECULES * 32) as usize),
        );
    }

    let (p, i, steps) = (r(1), r(2), r(3));
    let (x, y, z, f) = (r(4), r(5), r(6), r(7));
    let (g, v, lk) = (r(8), r(9), r(10));

    for tid in 0..THREADS {
        let entry = asm.here(format!("t{tid}"));
        asm.entry(entry);
        asm.movi(steps, STEPS * i64::from(scale));
        let step_loop = asm.here(format!("t{tid}_step"));
        asm.movi(p, PRIV_BASE + tid as i64 * PRIV_STRIDE);
        asm.movi(i, MOLECULES);
        let mol_loop = asm.here(format!("t{tid}_mol"));
        // Integrate one molecule: read components, compute, store accel.
        asm.load(x, p, 0, Width::B8);
        asm.load(y, p, 8, Width::B8);
        asm.load(z, p, 16, Width::B8);
        asm.mul(f, x, y);
        asm.add(f, f, z);
        asm.shri(f, f, 7);
        asm.store(f, p, 24, Width::B8);
        asm.addi(p, p, 32);
        asm.subi(i, i, 1);
        asm.bne(i, Reg::ZERO, mol_loop);
        // Fold the partial force into the shared array, locked.
        asm.movi(lk, LOCK_ADDR);
        asm.lock(lk);
        asm.movi(g, FORCE_BASE);
        for slot in 0..4 {
            asm.load(v, g, slot * 8, Width::B8);
            asm.add(v, v, f);
            asm.store(v, g, slot * 8, Width::B8);
        }
        asm.unlock(lk);
        // Periodic checkpoint of the trajectory.
        asm.syscall(1);
        asm.subi(steps, steps, 1);
        asm.bne(steps, Reg::ZERO, step_loop);
        asm.halt();
    }
    asm.finish().expect("water assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_four_threads() {
        let p = build(1);
        assert_eq!(p.name(), "water");
        assert_eq!(p.entries().len(), THREADS);
        assert_eq!(p.data().len(), THREADS);
    }
}
