//! `gs` — PostScript rendering.
//!
//! Character: heavy allocator churn (one raster buffer per page) plus
//! store-dominated fills and load-blend-store compositing against a global
//! texture; a syscall ships each finished page. The densest AddrCheck
//! workload.

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

use crate::rng;

const PAGES: i64 = 250;
const BUF_BYTES: i64 = 1024;
const TEXTURE_BASE: i64 = GLOBAL_BASE as i64;

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("gs");
    let mut rand = rng::rng_for("gs");
    asm.data(
        TEXTURE_BASE as u64,
        rng::bytes(&mut rand, BUF_BYTES as usize),
    );

    let (page, buf, size) = (r(1), r(2), r(3));
    let (p, q, i) = (r(4), r(5), r(6));
    let (v, w, acc) = (r(7), r(8), r(9));

    asm.movi(page, PAGES * i64::from(scale));
    let page_loop = asm.here("page_loop");
    asm.movi(size, BUF_BYTES);
    asm.alloc(buf, size);

    // Fill: unrolled 4x8-byte stores per iteration.
    asm.mov(p, buf);
    asm.movi(i, BUF_BYTES / 32);
    asm.movi(v, 0x00ff_00ff);
    let fill_loop = asm.here("fill_loop");
    asm.store(v, p, 0, Width::B8);
    asm.store(v, p, 8, Width::B8);
    asm.store(v, p, 16, Width::B8);
    asm.store(v, p, 24, Width::B8);
    asm.addi(p, p, 32);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, fill_loop);

    // Blend the texture into the page: load-load-op-store, unrolled 2x.
    asm.mov(p, buf);
    asm.movi(q, TEXTURE_BASE);
    asm.movi(i, BUF_BYTES / 16);
    let blend_loop = asm.here("blend_loop");
    asm.load(v, q, 0, Width::B8);
    asm.load(w, p, 0, Width::B8);
    asm.xor(w, w, v);
    asm.store(w, p, 0, Width::B8);
    asm.load(v, q, 8, Width::B8);
    asm.load(w, p, 8, Width::B8);
    asm.add(w, w, v);
    asm.store(w, p, 8, Width::B8);
    asm.addi(p, p, 16);
    asm.addi(q, q, 16);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, blend_loop);

    // Checksum one word so the blend is observable, ship the page, release.
    asm.load(acc, buf, 0, Width::B8);
    asm.syscall(1);
    asm.free(buf);
    asm.subi(page, page, 1);
    asm.bne(page, Reg::ZERO, page_loop);
    asm.halt();
    asm.finish().expect("gs assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = build(1);
        assert_eq!(p.name(), "gs");
        assert_eq!(p.entries().len(), 1);
    }
}
