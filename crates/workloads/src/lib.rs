//! Synthetic MiniISA workloads mirroring the paper's nine benchmarks.
//!
//! The paper evaluates on seven single-threaded programs — `bc`, `gnuplot`,
//! `gs`, `gzip`, `mcf`, `tidy`, `w3m` — and two multi-threaded ones —
//! `water`, `zchaff` — reporting that "on average, a benchmark executes 209
//! million x86 instructions, of which 51% are memory references".
//!
//! We cannot ship those binaries, so each generator here reproduces the
//! *drivers* of the paper's results for its namesake (DESIGN.md §2):
//! instruction mix (the memory-reference fraction), working-set size and
//! locality (cache behaviour), allocation churn (AddrCheck event rate),
//! input consumption (TaintCheck sources) and locking discipline (LockSet
//! event rate) — scaled from 209 M instructions down to a few hundred
//! thousand so the whole suite simulates in seconds.
//!
//! Every workload is deterministic: generators use fixed-seed RNGs, so the
//! same [`Benchmark`] and scale always produce the same instruction stream.
//!
//! The [`bugs`] module contains separate *planted-bug* programs used by the
//! examples and detection tests; the figure workloads themselves are clean.
//!
//! # Examples
//!
//! ```
//! use lba_workloads::Benchmark;
//!
//! let program = Benchmark::Gzip.build();
//! assert_eq!(program.name(), "gzip");
//! assert!(program.len() > 10);
//!
//! assert_eq!(Benchmark::ALL.len(), 9);
//! assert!(Benchmark::Water.is_multithreaded());
//! ```

mod bc;
pub mod bugs;
mod gnuplot;
mod gs;
mod gzip;
mod mcf;
mod rng;
mod tidy;
mod w3m;
mod water;
mod zchaff;

use lba_isa::Program;

/// One of the paper's nine evaluation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Arbitrary-precision calculator: ALU-heavy digit loops, small
    /// working set.
    Bc,
    /// Plotting tool: samples → transformed points, medium arrays.
    Gnuplot,
    /// PostScript renderer: allocation churn plus buffer fills and blends.
    Gs,
    /// Compressor: sliding-window hashing over received input.
    Gzip,
    /// Network-simplex optimiser: pointer chasing over a >L2 arena.
    Mcf,
    /// HTML fixer: byte classification with small node allocations.
    Tidy,
    /// Text browser: received (tainted) pages driving a handler jump table.
    W3m,
    /// SPLASH-2 style molecular dynamics: 4 threads, locked force updates.
    Water,
    /// SAT solver: threads sharing a clause database under locks.
    Zchaff,
}

impl Benchmark {
    /// All nine benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Bc,
        Benchmark::Gnuplot,
        Benchmark::Gs,
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Tidy,
        Benchmark::W3m,
        Benchmark::Water,
        Benchmark::Zchaff,
    ];

    /// The seven single-threaded benchmarks (Figures 2(a) and 2(b)).
    pub const SINGLE_THREADED: [Benchmark; 7] = [
        Benchmark::Bc,
        Benchmark::Gnuplot,
        Benchmark::Gs,
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Tidy,
        Benchmark::W3m,
    ];

    /// The two multi-threaded benchmarks (Figure 2(c)).
    pub const MULTI_THREADED: [Benchmark; 2] = [Benchmark::Water, Benchmark::Zchaff];

    /// The benchmark's canonical name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bc => "bc",
            Benchmark::Gnuplot => "gnuplot",
            Benchmark::Gs => "gs",
            Benchmark::Gzip => "gzip",
            Benchmark::Mcf => "mcf",
            Benchmark::Tidy => "tidy",
            Benchmark::W3m => "w3m",
            Benchmark::Water => "water",
            Benchmark::Zchaff => "zchaff",
        }
    }

    /// Whether the benchmark runs more than one application thread.
    #[must_use]
    pub fn is_multithreaded(self) -> bool {
        matches!(self, Benchmark::Water | Benchmark::Zchaff)
    }

    /// Builds the benchmark program at the default scale (hundreds of
    /// thousands of retired instructions; see crate docs).
    #[must_use]
    pub fn build(self) -> Program {
        self.build_scaled(1)
    }

    /// Builds the benchmark with its iteration counts multiplied by
    /// `scale` (for longer benchmarking runs).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    #[must_use]
    pub fn build_scaled(self, scale: u32) -> Program {
        assert!(scale > 0, "scale must be non-zero");
        match self {
            Benchmark::Bc => bc::build(scale),
            Benchmark::Gnuplot => gnuplot::build(scale),
            Benchmark::Gs => gs::build(scale),
            Benchmark::Gzip => gzip::build(scale),
            Benchmark::Mcf => mcf::build(scale),
            Benchmark::Tidy => tidy::build(scale),
            Benchmark::W3m => w3m::build(scale),
            Benchmark::Water => water::build(scale),
            Benchmark::Zchaff => zchaff::build(scale),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::{MemSystem, MemSystemConfig};
    use lba_cpu::{Machine, MachineConfig};
    use lba_record::{EventKind, TraceStats};

    fn run(benchmark: Benchmark) -> (TraceStats, Vec<(EventKind, u64)>) {
        let program = benchmark.build();
        let mut machine = Machine::new(&program, MachineConfig::default());
        let mut mem = MemSystem::new(MemSystemConfig::single_core());
        let mut stats = TraceStats::new();
        machine
            .run(&mut mem, |r| stats.observe(&r.record))
            .unwrap_or_else(|e| panic!("{} failed: {e}", benchmark.name()));
        let counts = EventKind::ALL
            .iter()
            .map(|&k| (k, stats.count(k)))
            .collect();
        (stats, counts)
    }

    #[test]
    fn every_benchmark_builds_and_terminates() {
        for benchmark in Benchmark::ALL {
            let (stats, _) = run(benchmark);
            assert!(
                stats.instructions() > 50_000,
                "{} too small: {} instructions",
                benchmark.name(),
                stats.instructions()
            );
            assert!(
                stats.instructions() < 3_000_000,
                "{} too large: {} instructions",
                benchmark.name(),
                stats.instructions()
            );
        }
    }

    #[test]
    fn memory_fraction_averages_near_the_papers_51_percent() {
        let mut total = 0.0;
        for benchmark in Benchmark::ALL {
            let (stats, _) = run(benchmark);
            let frac = stats.memory_ref_fraction();
            assert!(
                (0.15..0.80).contains(&frac),
                "{}: memory fraction {frac:.2} out of plausible band",
                benchmark.name()
            );
            total += frac;
        }
        let avg = total / Benchmark::ALL.len() as f64;
        // The paper reports 51% for x86, whose CISC encodings fold memory
        // operands into ALU instructions; on a load/store RISC the same
        // programs sit somewhat lower (EXPERIMENTS.md discusses this).
        assert!(
            (0.35..0.62).contains(&avg),
            "average memory fraction {avg:.3} should sit near the paper's 0.51"
        );
    }

    #[test]
    fn multithreaded_benchmarks_use_locks_and_threads() {
        for benchmark in Benchmark::MULTI_THREADED {
            let program = benchmark.build();
            assert!(program.entries().len() >= 2, "{}", benchmark.name());
            let (stats, _) = run(benchmark);
            assert!(
                stats.count(EventKind::Lock) > 0,
                "{} must lock",
                benchmark.name()
            );
            assert_eq!(
                stats.count(EventKind::Lock),
                stats.count(EventKind::Unlock),
                "{}: lock/unlock balance",
                benchmark.name()
            );
        }
    }

    #[test]
    fn single_threaded_benchmarks_have_one_entry() {
        for benchmark in Benchmark::SINGLE_THREADED {
            assert_eq!(benchmark.build().entries().len(), 1, "{}", benchmark.name());
        }
    }

    #[test]
    fn taint_source_benchmarks_recv_input() {
        for benchmark in [Benchmark::Gzip, Benchmark::Tidy, Benchmark::W3m] {
            let (stats, _) = run(benchmark);
            assert!(
                stats.count(EventKind::Recv) > 0,
                "{} must recv",
                benchmark.name()
            );
        }
    }

    #[test]
    fn w3m_exercises_indirect_jumps() {
        let (stats, _) = run(Benchmark::W3m);
        assert!(stats.count(EventKind::IndirectJump) > 100);
    }

    #[test]
    fn gs_and_tidy_churn_the_allocator() {
        for benchmark in [Benchmark::Gs, Benchmark::Tidy] {
            let (stats, _) = run(benchmark);
            assert!(stats.count(EventKind::Alloc) > 20, "{}", benchmark.name());
            assert!(stats.count(EventKind::Free) > 20, "{}", benchmark.name());
        }
    }

    #[test]
    fn every_benchmark_issues_syscalls() {
        // The syscall-stall containment policy needs syscalls to exist.
        for benchmark in Benchmark::ALL {
            let (stats, _) = run(benchmark);
            assert!(stats.count(EventKind::Syscall) > 0, "{}", benchmark.name());
        }
    }

    #[test]
    fn determinism_same_program_twice() {
        let a = Benchmark::Gzip.build();
        let b = Benchmark::Gzip.build();
        assert_eq!(a, b);
    }

    #[test]
    fn scale_multiplies_work() {
        let p1 = Benchmark::Bc.build_scaled(1);
        let p2 = Benchmark::Bc.build_scaled(2);
        let count = |p: &lba_isa::Program| {
            let mut machine = Machine::new(p, MachineConfig::default());
            let mut mem = MemSystem::new(MemSystemConfig::single_core());
            let mut n = 0u64;
            machine.run(&mut mem, |_| n += 1).unwrap();
            n
        };
        let (n1, n2) = (count(&p1), count(&p2));
        assert!(
            n2 > n1 * 3 / 2,
            "scale 2 ({n2}) should do much more work than scale 1 ({n1})"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_scale_rejected() {
        let _ = Benchmark::Bc.build_scaled(0);
    }

    #[test]
    fn mcf_has_poor_locality_relative_to_bc() {
        let miss_ratio = |benchmark: Benchmark| {
            let program = benchmark.build();
            let mut machine = Machine::new(&program, MachineConfig::default());
            let mut mem = MemSystem::new(MemSystemConfig::single_core());
            machine.run(&mut mem, |_| {}).unwrap();
            mem.core_stats(0).l1d.miss_ratio()
        };
        let (mcf, bc) = (miss_ratio(Benchmark::Mcf), miss_ratio(Benchmark::Bc));
        assert!(
            mcf > 2.0 * bc,
            "mcf miss ratio {mcf:.3} should dwarf bc's {bc:.3}"
        );
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::W3m.to_string(), "w3m");
    }
}
