//! `zchaff` — SAT solving (multi-threaded).
//!
//! Character: two solver threads evaluate clauses from a large shared
//! read-only clause database with data-dependent (irregular) access
//! patterns, and push implications onto a shared assignment stack under a
//! lock. Read-shared data keeps LockSet's shared-state machinery hot; the
//! irregular clause fetches are cache-unfriendly.

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

use crate::rng;

const THREADS: usize = 2;
const BLOCKS: i64 = 24;
const EVALS: i64 = 512;
/// Push an implication every this many evaluations.
const ASSIGN_PERIOD: i64 = 16;
const CLAUSE_BASE: i64 = GLOBAL_BASE as i64 + 0x10_0000;
const CLAUSE_BYTES: i64 = 256 << 10;
const CLAUSE_MASK: i64 = CLAUSE_BYTES - 8;
const STACK_BASE: i64 = GLOBAL_BASE as i64; // shared assignment stack
const LOCK_ADDR: i64 = GLOBAL_BASE as i64 + 0x8000;
/// Per-thread private tally arrays (8 KiB apart).
const TALLY_BASE: i64 = GLOBAL_BASE as i64 + 0x20_000;

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("zchaff");
    let mut rand = rng::rng_for("zchaff");
    // The clause database: shared, read-only, too big for L1.
    asm.data(
        CLAUSE_BASE as u64,
        rng::index_table(&mut rand, (CLAUSE_BYTES / 4) as usize, u32::MAX),
    );

    let (seed, blocks, i) = (r(1), r(2), r(3));
    let (a, v, w, t) = (r(4), r(5), r(6), r(7));
    let (lk, sp, idx, period) = (r(8), r(9), r(10), r(11));
    let (tally, t2) = (r(12), r(13));

    for tid in 0..THREADS {
        let entry = asm.here(format!("z{tid}"));
        asm.entry(entry);
        asm.movi(seed, 0x9E3779 + tid as i64 * 77);
        // Per-thread watch-literal tally (thread-private global region).
        asm.movi(tally, TALLY_BASE + tid as i64 * 0x2000);
        asm.movi(blocks, BLOCKS * i64::from(scale));
        let block_loop = asm.here(format!("z{tid}_block"));
        asm.movi(i, EVALS);
        asm.movi(period, ASSIGN_PERIOD);
        let skip_assign = asm.label(format!("z{tid}_skip"));
        let eval_loop = asm.here(format!("z{tid}_eval"));
        // Irregular clause fetch: LCG-derived offset into the database.
        asm.muli(seed, seed, 0x19660D);
        asm.addi(seed, seed, 0x3C6EF35F);
        asm.andi(a, seed, CLAUSE_MASK);
        asm.addi(a, a, CLAUSE_BASE);
        asm.load(v, a, 0, Width::B8);
        asm.load(w, a, 8, Width::B8);
        asm.xor(v, v, w);
        asm.load(w, a, 16, Width::B8);
        asm.add(v, v, w);
        // Record the watch tally for this literal (private counters).
        asm.shri(t2, seed, 16);
        asm.andi(t2, t2, 0x1ff8);
        asm.add(t2, t2, tally);
        asm.load(w, t2, 0, Width::B8);
        asm.add(w, w, v);
        asm.store(w, t2, 0, Width::B8);
        // Every ASSIGN_PERIOD evaluations: lock, push implication, unlock.
        asm.subi(period, period, 1);
        asm.bne(period, Reg::ZERO, skip_assign);
        asm.movi(period, ASSIGN_PERIOD);
        asm.movi(lk, LOCK_ADDR);
        asm.lock(lk);
        asm.movi(sp, STACK_BASE);
        asm.load(idx, sp, 0, Width::B8);
        asm.andi(idx, idx, 0xfff);
        asm.add(t, sp, idx);
        asm.store(v, t, 8, Width::B8);
        asm.addi(idx, idx, 8);
        asm.store(idx, sp, 0, Width::B8);
        asm.unlock(lk);
        asm.bind(skip_assign);
        asm.subi(i, i, 1);
        asm.bne(i, Reg::ZERO, eval_loop);
        // Report progress (decision level, conflicts).
        asm.syscall(1);
        asm.subi(blocks, blocks, 1);
        asm.bne(blocks, Reg::ZERO, block_loop);
        asm.halt();
    }
    asm.finish().expect("zchaff assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_two_threads() {
        let p = build(1);
        assert_eq!(p.name(), "zchaff");
        assert_eq!(p.entries().len(), THREADS);
    }
}
