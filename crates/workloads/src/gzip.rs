//! `gzip` — sliding-window compression.
//!
//! Character: byte-granular input scanning with a hash-table update per
//! position and window writes; input arrives through `recv` (so gzip is
//! also a TaintCheck source workload); a syscall writes each compressed
//! chunk out.

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

use crate::rng;

const CHUNKS: i64 = 16;
const CHUNK_BYTES: i64 = 1024;
const HASH_BASE: i64 = GLOBAL_BASE as i64;

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("gzip");
    let mut rand = rng::rng_for("gzip");
    asm.input(rng::bytes(&mut rand, 4096));

    let (inbuf, window, size) = (r(1), r(2), r(3));
    let (chunk, i, h) = (r(4), r(5), r(6));
    let (c0, c1, a, pos) = (r(7), r(8), r(9), r(10));
    let (pin, pw) = (r(11), r(12));

    // Allocate the input buffer and the output window on the heap.
    asm.movi(size, CHUNK_BYTES);
    asm.alloc(inbuf, size);
    asm.movi(size, CHUNK_BYTES * 2);
    asm.alloc(window, size);
    asm.movi(h, 0);
    asm.movi(pos, 0);

    asm.movi(chunk, CHUNKS * i64::from(scale));
    let chunk_loop = asm.here("chunk_loop");
    // Pull one chunk of input (tainted under TaintCheck).
    asm.movi(size, CHUNK_BYTES);
    asm.recv(inbuf, size);
    asm.mov(pin, inbuf);
    asm.mov(pw, window);
    asm.movi(i, CHUNK_BYTES / 2);
    let byte_loop = asm.here("byte_loop");
    // Two input bytes per iteration: hash, probe, update, emit.
    asm.load(c0, pin, 0, Width::B1);
    asm.load(c1, pin, 1, Width::B1);
    asm.shli(h, h, 5);
    asm.xor(h, h, c0);
    asm.xor(h, h, c1);
    asm.andi(h, h, 0x7ffc);
    asm.add(a, Reg::ZERO, h);
    asm.addi(a, a, HASH_BASE);
    asm.load(c0, a, 0, Width::B4); // previous position for this hash
    asm.store(pos, a, 0, Width::B4); // chain update
                                     // Probe the window at the chained position for a match.
    asm.andi(c0, c0, 0x3ff);
    asm.add(c0, c0, window);
    asm.load(c0, c0, 0, Width::B1);
    asm.store(c1, pw, 0, Width::B1); // literal emit
    asm.store(c0, pw, 1, Width::B1); // match byte emit
    asm.addi(pin, pin, 2);
    asm.addi(pw, pw, 2);
    asm.addi(pos, pos, 2);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, byte_loop);
    // Write the compressed chunk.
    asm.syscall(1);
    asm.subi(chunk, chunk, 1);
    asm.bne(chunk, Reg::ZERO, chunk_loop);
    asm.free(window);
    asm.free(inbuf);
    asm.halt();
    asm.finish().expect("gzip assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = build(1);
        assert_eq!(p.name(), "gzip");
        assert_eq!(p.input().len(), 4096);
    }
}
