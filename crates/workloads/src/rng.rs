//! Deterministic pseudo-random data for workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for one benchmark; the seed is derived from the benchmark
/// name so every generator is independent yet reproducible.
pub(crate) fn rng_for(name: &str) -> StdRng {
    let mut seed = [0u8; 32];
    for (i, b) in name.bytes().enumerate() {
        seed[i % 32] ^= b.wrapping_mul(i as u8 + 31);
    }
    seed[0] ^= 0xa5;
    StdRng::from_seed(seed)
}

/// `n` pseudo-random bytes.
pub(crate) fn bytes(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen()).collect()
}

/// `n` little-endian u32 indices in `0..bound`, as raw bytes (for lookup
/// tables stored in data segments).
pub(crate) fn index_table(rng: &mut StdRng, n: usize, bound: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 4);
    for _ in 0..n {
        let v: u32 = rng.gen_range(0..bound);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a = bytes(&mut rng_for("gzip"), 16);
        let b = bytes(&mut rng_for("gzip"), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let a = bytes(&mut rng_for("gzip"), 16);
        let b = bytes(&mut rng_for("mcf"), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn index_table_respects_bound() {
        let raw = index_table(&mut rng_for("t"), 100, 50);
        assert_eq!(raw.len(), 400);
        for chunk in raw.chunks(4) {
            let v = u32::from_le_bytes(chunk.try_into().unwrap());
            assert!(v < 50);
        }
    }
}
