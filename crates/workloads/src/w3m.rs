//! `w3m` — text-mode web browser.
//!
//! Character: received (network, i.e. *tainted*) pages drive a
//! character-class handler dispatch through an in-memory **jump table** —
//! the indirect-jump-dense workload that motivates TaintCheck's
//! jump-target checking. Each handler updates a rendering state table, and
//! a render phase copies the line buffer to the screen.

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

use crate::rng;

const PAGES: i64 = 6;
const PAGE_BYTES: i64 = 2048;
const TABLE_BASE: i64 = GLOBAL_BASE as i64; // 4 handler slots x 8 bytes
const STATE_BASE: i64 = GLOBAL_BASE as i64 + 0x1000;
const LINE_BASE: i64 = GLOBAL_BASE as i64 + 0x2000;
const SCREEN_BASE: i64 = GLOBAL_BASE as i64 + 0x4000;

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("w3m");
    let mut rand = rng::rng_for("w3m");
    asm.input(rng::bytes(&mut rand, 4096));

    let (inbuf, size, page) = (r(1), r(2), r(3));
    let (pin, i, c) = (r(4), r(5), r(6));
    let (cls, a, h, st) = (r(7), r(8), r(9), r(10));
    let (pl, tab, j, v) = (r(11), r(12), r(13), r(14));
    let ps = a; // render phase reuses the scratch register

    let h_text = asm.label("h_text");
    let h_tag = asm.label("h_tag");
    let h_entity = asm.label("h_entity");
    let h_ctrl = asm.label("h_ctrl");
    let after_handler = asm.label("after_handler");

    // Populate the handler jump table (function-pointer slots in memory —
    // exactly the structure an exploit would overwrite).
    asm.movi(a, TABLE_BASE);
    asm.lea(h, h_text);
    asm.store(h, a, 0, Width::B8);
    asm.lea(h, h_tag);
    asm.store(h, a, 8, Width::B8);
    asm.lea(h, h_entity);
    asm.store(h, a, 16, Width::B8);
    asm.lea(h, h_ctrl);
    asm.store(h, a, 24, Width::B8);

    asm.movi(size, PAGE_BYTES);
    asm.alloc(inbuf, size);
    // Loop-invariant bases live in registers (as a compiler would emit).
    asm.movi(st, STATE_BASE);
    asm.movi(tab, TABLE_BASE);

    asm.movi(page, PAGES * i64::from(scale));
    let page_loop = asm.here("page_loop");
    asm.movi(size, PAGE_BYTES);
    asm.recv(inbuf, size);
    asm.mov(pin, inbuf);
    asm.movi(pl, LINE_BASE);
    asm.movi(i, PAGE_BYTES);

    let byte_loop = asm.here("byte_loop");
    asm.load(c, pin, 0, Width::B1);
    asm.andi(cls, c, 3);
    asm.shli(cls, cls, 3);
    asm.add(a, tab, cls);
    asm.load(h, a, 0, Width::B8);
    asm.jump_reg(h); // dispatch through the function-pointer table

    // Handlers: each reads and updates the rendering state table, then
    // falls through to the shared continuation.
    asm.bind(h_text);
    asm.load(v, st, 0, Width::B8);
    asm.add(v, v, c);
    asm.store(v, st, 0, Width::B8);
    asm.jump(after_handler);

    asm.bind(h_tag);
    asm.load(v, st, 8, Width::B8);
    asm.addi(v, v, 1);
    asm.store(v, st, 8, Width::B8);
    asm.jump(after_handler);

    asm.bind(h_entity);
    asm.load(v, st, 16, Width::B8);
    asm.xor(v, v, c);
    asm.store(v, st, 16, Width::B8);
    asm.jump(after_handler);

    asm.bind(h_ctrl);
    asm.load(v, st, 24, Width::B8);
    asm.addi(v, v, 2);
    asm.store(v, st, 24, Width::B8);
    asm.jump(after_handler);

    asm.bind(after_handler);
    // Append the (possibly transformed) byte to the line buffer.
    asm.andi(j, i, 0x7f);
    asm.add(a, pl, j);
    asm.store(c, a, 0, Width::B1);
    asm.addi(pin, pin, 1);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, byte_loop);

    // Render: copy the line buffer to the screen, 16 bytes per iteration.
    asm.movi(ps, SCREEN_BASE);
    asm.movi(j, 128 / 16);
    let render_loop = asm.here("render_loop");
    asm.load(v, pl, 0, Width::B8);
    asm.store(v, ps, 0, Width::B8);
    asm.load(v, pl, 8, Width::B8);
    asm.store(v, ps, 8, Width::B8);
    asm.addi(pl, pl, 16);
    asm.addi(ps, ps, 16);
    asm.subi(j, j, 1);
    asm.bne(j, Reg::ZERO, render_loop);
    asm.syscall(1); // blit to terminal

    asm.subi(page, page, 1);
    asm.bne(page, Reg::ZERO, page_loop);
    asm.free(inbuf);
    asm.halt();
    asm.finish().expect("w3m assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = build(1);
        assert_eq!(p.name(), "w3m");
        assert!(p.len() > 50);
    }
}
