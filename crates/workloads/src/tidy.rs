//! `tidy` — HTML cleanup.
//!
//! Character: byte-wise classification of received markup with branches per
//! character class, a node allocation per "tag", and an output-building
//! copy phase; mixes parsing, allocation churn and buffer writes.

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

use crate::rng;

const CHUNKS: i64 = 8;
const CHUNK_BYTES: i64 = 2048;
const NODE_BYTES: i64 = 32;
/// One node per this many input bytes.
const TAG_PERIOD: i64 = 64;
const OUT_BASE: i64 = GLOBAL_BASE as i64 + 0x40_000;
/// Node pointers saved here so every chunk's nodes are freed afterwards.
const PTRS_BASE: i64 = GLOBAL_BASE as i64 + 0x50_000;

/// Byte-classification lookup table (a `ctype`-style table).
const CLASS_BASE: i64 = GLOBAL_BASE as i64 + 0x60_000;

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("tidy");
    let mut rand = rng::rng_for("tidy");
    asm.input(rng::bytes(&mut rand, 4096));
    asm.data(CLASS_BASE as u64, rng::bytes(&mut rand, 256));

    let (inbuf, size, chunk) = (r(1), r(2), r(3));
    let (pin, pout, i) = (r(4), r(5), r(6));
    let (c, t, node) = (r(7), r(8), r(9));
    let (pptr, nptr, tagcnt) = (r(10), r(11), r(12));
    let tbl = r(13);

    asm.movi(size, CHUNK_BYTES);
    asm.alloc(inbuf, size);
    asm.movi(tbl, CLASS_BASE);

    asm.movi(chunk, CHUNKS * i64::from(scale));
    let chunk_loop = asm.here("chunk_loop");
    asm.movi(size, CHUNK_BYTES);
    asm.recv(inbuf, size);
    asm.mov(pin, inbuf);
    asm.movi(pout, OUT_BASE);
    asm.movi(pptr, PTRS_BASE);
    asm.movi(nptr, 0);
    asm.movi(tagcnt, TAG_PERIOD);
    asm.movi(i, CHUNK_BYTES);

    let no_tag = asm.label("no_tag");
    let byte_loop = asm.here("byte_loop");
    // Table-driven classification (ctype lookup), then emit the byte and
    // its class to the output and attribute maps.
    asm.load(c, pin, 0, Width::B1);
    asm.add(t, tbl, c);
    asm.load(t, t, 0, Width::B1);
    asm.store(c, pout, 0, Width::B1);
    asm.store(t, pout, 0x2000, Width::B1); // attribute map shadows output
                                           // Every TAG_PERIOD bytes: allocate a parse node and record it.
    asm.subi(tagcnt, tagcnt, 1);
    asm.bne(tagcnt, Reg::ZERO, no_tag);
    asm.movi(tagcnt, TAG_PERIOD);
    asm.movi(size, NODE_BYTES);
    asm.alloc(node, size);
    asm.store(c, node, 0, Width::B8); // tag byte
    asm.store(pin, node, 8, Width::B8); // source position
    asm.store(node, pptr, 0, Width::B8); // remember for cleanup
    asm.addi(pptr, pptr, 8);
    asm.addi(nptr, nptr, 1);
    asm.bind(no_tag);
    asm.addi(pin, pin, 1);
    asm.addi(pout, pout, 1);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, byte_loop);

    // Emit the cleaned chunk, then free this chunk's parse nodes.
    asm.syscall(1);
    let done_free = asm.label("done_free");
    let free_loop_top = asm.here("free_loop");
    asm.beq(nptr, Reg::ZERO, done_free);
    asm.subi(pptr, pptr, 8);
    asm.load(node, pptr, 0, Width::B8);
    asm.free(node);
    asm.subi(nptr, nptr, 1);
    asm.jump(free_loop_top);
    asm.bind(done_free);

    asm.subi(chunk, chunk, 1);
    asm.bne(chunk, Reg::ZERO, chunk_loop);
    asm.free(inbuf);
    asm.halt();
    asm.finish().expect("tidy assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = build(1);
        assert_eq!(p.name(), "tidy");
        assert!(p.input().len() >= 4096);
    }
}
