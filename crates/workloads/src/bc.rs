//! `bc` — arbitrary-precision calculator.
//!
//! Character: ALU-dominated bignum digit loops over a small working set
//! (fits comfortably in L1), few runtime events. The least memory-bound of
//! the seven single-threaded benchmarks.

use lba_isa::{r, Assembler, Program, Reg, Width};
use lba_mem::layout::GLOBAL_BASE;

use crate::rng;

const NDIGITS: i64 = 32;
const PASSES: i64 = 320;

const A_BASE: i64 = GLOBAL_BASE as i64;
const B_BASE: i64 = GLOBAL_BASE as i64 + 0x1000;
const C_BASE: i64 = GLOBAL_BASE as i64 + 0x2000;

pub(crate) fn build(scale: u32) -> Program {
    let mut asm = Assembler::new("bc");
    let mut rand = rng::rng_for("bc");
    // Operand bignums: NDIGITS 64-bit limbs each.
    asm.data(A_BASE as u64, rng::bytes(&mut rand, (NDIGITS * 8) as usize));
    asm.data(B_BASE as u64, rng::bytes(&mut rand, (NDIGITS * 8) as usize));

    let (pa, pb, pc) = (r(1), r(2), r(3));
    let (pass, i, carry) = (r(4), r(5), r(6));
    let (x, y, z) = (r(7), r(8), r(9));
    let sp_slot = r(10); // interpreter operand-stack slot

    asm.movi(pass, PASSES * i64::from(scale));
    let pass_loop = asm.here("pass_loop");
    asm.movi(pa, A_BASE);
    asm.movi(pb, B_BASE);
    asm.movi(pc, C_BASE);
    asm.movi(sp_slot, C_BASE + 0x800);
    asm.movi(carry, 0);
    asm.movi(i, NDIGITS);
    let digit_loop = asm.here("digit_loop");
    // One schoolbook multiply-accumulate limb step. `bc` is a stack-machine
    // interpreter, so each step also spills/reloads the running total
    // through its operand stack.
    asm.load(x, pa, 0, Width::B8);
    asm.load(y, pb, 0, Width::B8);
    asm.mul(z, x, y);
    asm.add(z, z, carry);
    asm.store(z, sp_slot, 0, Width::B8); // push intermediate
    asm.shri(carry, z, 32);
    asm.load(z, sp_slot, 0, Width::B8); // pop intermediate
    asm.shli(z, z, 32);
    asm.shri(z, z, 32);
    asm.store(z, pc, 0, Width::B8);
    asm.addi(pa, pa, 8);
    asm.addi(pb, pb, 8);
    asm.addi(pc, pc, 8);
    asm.subi(i, i, 1);
    asm.bne(i, Reg::ZERO, digit_loop);
    // Print the result line.
    asm.syscall(1);
    asm.subi(pass, pass, 1);
    asm.bne(pass, Reg::ZERO, pass_loop);
    asm.halt();
    asm.finish().expect("bc assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = build(1);
        assert_eq!(p.name(), "bc");
        assert_eq!(p.entries().len(), 1);
        assert_eq!(p.data().len(), 2);
    }
}
