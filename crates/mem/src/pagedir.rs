//! A direct-mapped page directory with a one-entry translation cache —
//! the indexing structure shared by the sparse paged [`Memory`] model and
//! the lifeguards' shadow memory.
//!
//! Maps sparse 64-bit page numbers to dense `u32` arena indices. Level 1
//! is a tag-checked slot array addressed by the page number's low bits; a
//! rare colliding page falls through to the adjacent slot (linear
//! probing), and the array doubles at three-quarters occupancy so probes
//! stay short. In front sits a one-entry last-page cache — a software
//! metadata-TLB — making the common case (consecutive accesses within one
//! page) one compare, no hashing. Pages are never removed.
//!
//! [`Memory`]: crate::Memory

use std::cell::Cell;

/// Sentinel marking an empty directory slot / invalid cache entry.
const NO_PAGE: u32 = u32::MAX;

/// Initial capacity in slots; doubles when three-quarters full.
const INITIAL_SLOTS: usize = 64;

/// The direct-mapped page-number → arena-index directory.
///
/// # Examples
///
/// ```
/// use lba_mem::PageDirectory;
///
/// let mut dir = PageDirectory::new();
/// assert_eq!(dir.get(7), None);
/// dir.insert(7, 0);
/// assert_eq!(dir.get(7), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct PageDirectory {
    /// Slot tags: the page number owning each slot (valid only where
    /// `idx` is not the sentinel).
    tags: Vec<u64>,
    /// Slot payloads: the arena index of each slot's page.
    idx: Vec<u32>,
    /// Slot-index mask (`tags.len() - 1`; the length is a power of two).
    mask: u64,
    /// Occupied slots, for the resize trigger.
    used: usize,
    /// Last-page cache: (page number, arena index) of the most recent
    /// lookup. A `Cell` so read hits refill it through `&self`.
    last: Cell<(u64, u32)>,
}

impl Default for PageDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl PageDirectory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        PageDirectory {
            tags: vec![0; INITIAL_SLOTS],
            idx: vec![NO_PAGE; INITIAL_SLOTS],
            mask: INITIAL_SLOTS as u64 - 1,
            used: 0,
            last: Cell::new((0, NO_PAGE)),
        }
    }

    /// Number of pages entered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.used
    }

    /// Whether the directory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// The arena index of `page_no`, if entered — last-page cache first,
    /// then the direct-mapped probe (refilling the cache on a hit).
    #[inline]
    #[must_use]
    pub fn get(&self, page_no: u64) -> Option<u32> {
        let (cached_no, cached_idx) = self.last.get();
        if cached_idx != NO_PAGE && cached_no == page_no {
            return Some(cached_idx);
        }
        let idx = self.probe(page_no)?;
        self.last.set((page_no, idx));
        Some(idx)
    }

    /// Slot-array lookup: one direct-mapped probe in the common case,
    /// walking forward on collision.
    #[inline]
    fn probe(&self, page_no: u64) -> Option<u32> {
        let mut slot = (page_no & self.mask) as usize;
        loop {
            let idx = self.idx[slot];
            if idx == NO_PAGE {
                return None;
            }
            if self.tags[slot] == page_no {
                return Some(idx);
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// Enters `page_no` → `arena_idx`, growing the slot array when
    /// three-quarters full, and primes the last-page cache.
    ///
    /// The caller must have checked [`get`](Self::get) first: entering a
    /// page number twice leaves the older entry shadowing the newer one.
    ///
    /// # Panics
    ///
    /// Panics if `arena_idx` is the reserved `u32::MAX` sentinel.
    pub fn insert(&mut self, page_no: u64, arena_idx: u32) {
        assert_ne!(arena_idx, NO_PAGE, "arena index u32::MAX is reserved");
        if (self.used + 1) * 4 > self.tags.len() * 3 {
            self.grow();
        }
        self.place(page_no, arena_idx);
        self.used += 1;
        self.last.set((page_no, arena_idx));
    }

    /// Writes one entry into the first free slot of its probe chain.
    fn place(&mut self, page_no: u64, arena_idx: u32) {
        let mut slot = (page_no & self.mask) as usize;
        while self.idx[slot] != NO_PAGE {
            slot = (slot + 1) & self.mask as usize;
        }
        self.tags[slot] = page_no;
        self.idx[slot] = arena_idx;
    }

    /// Doubles the slot array and re-enters every page.
    fn grow(&mut self) {
        let new_len = self.tags.len() * 2;
        let old_tags = std::mem::replace(&mut self.tags, vec![0; new_len]);
        let old_idx = std::mem::replace(&mut self.idx, vec![NO_PAGE; new_len]);
        self.mask = new_len as u64 - 1;
        for (tag, idx) in old_tags.into_iter().zip(old_idx) {
            if idx != NO_PAGE {
                self.place(tag, idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_round_trip() {
        let mut dir = PageDirectory::new();
        assert!(dir.is_empty());
        dir.insert(42, 0);
        dir.insert(7, 1);
        assert_eq!(dir.get(42), Some(0));
        assert_eq!(dir.get(7), Some(1));
        assert_eq!(dir.get(8), None);
        assert_eq!(dir.len(), 2);
    }

    #[test]
    fn colliding_page_numbers_chain() {
        // Congruent modulo every power-of-two size: all land in slot 0.
        let mut dir = PageDirectory::new();
        for i in 0..50u64 {
            dir.insert(i << 40, i as u32);
        }
        for i in 0..50u64 {
            assert_eq!(dir.get(i << 40), Some(i as u32), "page {i}");
        }
    }

    #[test]
    fn growth_preserves_entries() {
        let mut dir = PageDirectory::new();
        for i in 0..500u64 {
            dir.insert(i * 3 + 1, i as u32);
        }
        for i in 0..500u64 {
            assert_eq!(dir.get(i * 3 + 1), Some(i as u32));
        }
        assert_eq!(dir.len(), 500);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_arena_index_rejected() {
        let mut dir = PageDirectory::new();
        dir.insert(0, u32::MAX);
    }
}
