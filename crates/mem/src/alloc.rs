//! First-fit free-list heap allocator backing the `alloc`/`free`
//! instructions.
//!
//! The allocator's bookkeeping lives outside simulated memory (the cycle
//! model charges a fixed library cost per call instead of simulating
//! allocator instructions; see DESIGN.md §5). It is deliberately *tolerant*:
//! erroneous frees return an error but leave the heap intact, so that a
//! buggy application can keep running while a lifeguard flags the bug — the
//! paper's deployed-code scenario.

use std::collections::BTreeMap;
use std::fmt;

/// Error returned by [`HeapAllocator`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The arena has no free block large enough.
    OutOfMemory {
        /// The request that failed, in bytes.
        requested: u64,
    },
    /// `free` was called with an address that is not a live block start.
    InvalidFree {
        /// The offending address.
        addr: u64,
    },
    /// `free` was called twice on the same block.
    DoubleFree {
        /// The offending address.
        addr: u64,
    },
    /// `alloc` was called with a zero size.
    ZeroSize,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "heap exhausted allocating {requested} bytes")
            }
            HeapError::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            HeapError::DoubleFree { addr } => write!(f, "double free of {addr:#x}"),
            HeapError::ZeroSize => write!(f, "zero-size allocation"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Alignment of every returned block, in bytes.
pub const BLOCK_ALIGN: u64 = 16;

fn align_up(v: u64) -> u64 {
    (v + BLOCK_ALIGN - 1) & !(BLOCK_ALIGN - 1)
}

/// A first-fit free-list allocator over `[base, base + size)`.
///
/// Freed neighbours coalesce, so fragmentation stays bounded for the
/// workload generators' alloc/free churn.
///
/// # Examples
///
/// ```
/// use lba_mem::{HeapAllocator, HeapError};
///
/// let mut heap = HeapAllocator::new(0x4000_0000, 4096);
/// let a = heap.alloc(100)?;
/// let b = heap.alloc(100)?;
/// assert_ne!(a, b);
/// heap.free(a)?;
/// assert_eq!(heap.free(a), Err(HeapError::DoubleFree { addr: a }));
/// # Ok::<(), HeapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    base: u64,
    size: u64,
    /// Free blocks: start -> length. Coalesced, non-overlapping, sorted.
    free: BTreeMap<u64, u64>,
    /// Live blocks: start -> length.
    live: BTreeMap<u64, u64>,
    /// Addresses that were freed (and not since re-allocated), for
    /// double-free classification.
    freed: BTreeMap<u64, u64>,
    peak_bytes: u64,
    live_bytes: u64,
    total_allocs: u64,
}

impl HeapAllocator {
    /// Creates an allocator over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 16-byte aligned or `size` is zero.
    #[must_use]
    pub fn new(base: u64, size: u64) -> Self {
        assert_eq!(
            base % BLOCK_ALIGN,
            0,
            "heap base must be {BLOCK_ALIGN}-byte aligned"
        );
        assert!(size > 0, "heap size must be non-zero");
        let mut free = BTreeMap::new();
        free.insert(base, size);
        HeapAllocator {
            base,
            size,
            free,
            live: BTreeMap::new(),
            freed: BTreeMap::new(),
            peak_bytes: 0,
            live_bytes: 0,
            total_allocs: 0,
        }
    }

    /// Allocates `size` bytes, returning the block address.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::ZeroSize`] for zero-size requests and
    /// [`HeapError::OutOfMemory`] when no free block fits.
    pub fn alloc(&mut self, size: u64) -> Result<u64, HeapError> {
        if size == 0 {
            return Err(HeapError::ZeroSize);
        }
        let need = align_up(size);
        let found = self
            .free
            .iter()
            .find(|(_, &len)| len >= need)
            .map(|(&start, &len)| (start, len));
        let (start, len) = found.ok_or(HeapError::OutOfMemory { requested: size })?;
        self.free.remove(&start);
        if len > need {
            self.free.insert(start + need, len - need);
        }
        self.live.insert(start, need);
        self.freed.remove(&start);
        self.live_bytes += need;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.total_allocs += 1;
        Ok(start)
    }

    /// Frees the block starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::DoubleFree`] when `addr` was already freed and
    /// [`HeapError::InvalidFree`] when `addr` never named a live block. The
    /// heap is unchanged in both cases.
    pub fn free(&mut self, addr: u64) -> Result<(), HeapError> {
        let Some(len) = self.live.remove(&addr) else {
            if self.freed.contains_key(&addr) {
                return Err(HeapError::DoubleFree { addr });
            }
            return Err(HeapError::InvalidFree { addr });
        };
        self.live_bytes -= len;
        self.freed.insert(addr, len);
        self.insert_free(addr, len);
        Ok(())
    }

    /// Inserts and coalesces a free range.
    fn insert_free(&mut self, start: u64, len: u64) {
        let mut start = start;
        let mut len = len;
        // Coalesce with predecessor.
        if let Some((&pstart, &plen)) = self.free.range(..start).next_back() {
            if pstart + plen == start {
                self.free.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        // Coalesce with successor.
        if let Some(&slen) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            len += slen;
        }
        self.free.insert(start, len);
    }

    /// The size recorded for the live block at `addr`, if any.
    #[must_use]
    pub fn live_block_len(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// Iterates over live blocks as `(addr, len)` pairs (leak reporting).
    pub fn live_blocks(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.live.iter().map(|(&a, &l)| (a, l))
    }

    /// Total bytes currently allocated (rounded to block alignment).
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of allocated bytes.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of successful allocations.
    #[must_use]
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// The arena base address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The arena size in bytes.
    #[must_use]
    pub fn arena_size(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x4000_0000;

    #[test]
    fn alloc_returns_aligned_disjoint_blocks() {
        let mut h = HeapAllocator::new(BASE, 1 << 16);
        let a = h.alloc(10).unwrap();
        let b = h.alloc(10).unwrap();
        assert_eq!(a % BLOCK_ALIGN, 0);
        assert_eq!(b % BLOCK_ALIGN, 0);
        assert!(b >= a + 16 || a >= b + 16, "blocks must not overlap");
    }

    #[test]
    fn zero_size_rejected() {
        let mut h = HeapAllocator::new(BASE, 1 << 16);
        assert_eq!(h.alloc(0), Err(HeapError::ZeroSize));
    }

    #[test]
    fn out_of_memory_reported() {
        let mut h = HeapAllocator::new(BASE, 64);
        assert!(h.alloc(48).is_ok());
        assert_eq!(h.alloc(64), Err(HeapError::OutOfMemory { requested: 64 }));
    }

    #[test]
    fn free_then_realloc_reuses_space() {
        let mut h = HeapAllocator::new(BASE, 64);
        let a = h.alloc(64).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn double_free_detected() {
        let mut h = HeapAllocator::new(BASE, 1 << 16);
        let a = h.alloc(8).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(HeapError::DoubleFree { addr: a }));
    }

    #[test]
    fn invalid_free_detected() {
        let mut h = HeapAllocator::new(BASE, 1 << 16);
        let _ = h.alloc(8).unwrap();
        assert_eq!(
            h.free(BASE + 8),
            Err(HeapError::InvalidFree { addr: BASE + 8 })
        );
    }

    #[test]
    fn realloc_after_free_clears_double_free_state() {
        let mut h = HeapAllocator::new(BASE, 64);
        let a = h.alloc(64).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(64).unwrap();
        assert_eq!(a, b);
        // Freeing the re-allocated block is legitimate, not a double free.
        assert_eq!(h.free(b), Ok(()));
    }

    #[test]
    fn coalescing_allows_full_size_realloc() {
        let mut h = HeapAllocator::new(BASE, 3 * 16);
        let a = h.alloc(16).unwrap();
        let b = h.alloc(16).unwrap();
        let c = h.alloc(16).unwrap();
        h.free(b).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        assert_eq!(
            h.alloc(48).unwrap(),
            BASE,
            "coalesced arena serves a full-size block"
        );
    }

    #[test]
    fn statistics_track_usage() {
        let mut h = HeapAllocator::new(BASE, 1 << 16);
        let a = h.alloc(16).unwrap();
        let b = h.alloc(16).unwrap();
        assert_eq!(h.live_bytes(), 32);
        assert_eq!(h.peak_bytes(), 32);
        h.free(a).unwrap();
        assert_eq!(h.live_bytes(), 16);
        assert_eq!(h.peak_bytes(), 32);
        assert_eq!(h.total_allocs(), 2);
        assert_eq!(h.live_blocks().collect::<Vec<_>>(), vec![(b, 16)]);
    }

    #[test]
    fn live_block_len_reports_aligned_size() {
        let mut h = HeapAllocator::new(BASE, 1 << 16);
        let a = h.alloc(10).unwrap();
        assert_eq!(h.live_block_len(a), Some(16));
        assert_eq!(h.live_block_len(a + 1), None);
    }
}
