//! The canonical simulated address-space layout.
//!
//! All components (CPU model, workload generators, lifeguards) share these
//! constants so that region classification — e.g. AddrCheck checking only
//! heap addresses, LockSet skipping thread-private stacks — is consistent.
//!
//! ```text
//! 0x0000_1000  code image (8 bytes/instruction)
//! 0x0010_0000  globals (initialised data segments)
//! 0x4000_0000  heap (HeapAllocator arena)
//! 0x7000_0000  per-thread stacks, growing down from STACK_TOP(tid)
//! ```

/// Base address of the globals region.
pub const GLOBAL_BASE: u64 = 0x0010_0000;

/// First address past the globals region.
pub const GLOBAL_END: u64 = 0x4000_0000;

/// Base address of the heap arena.
pub const HEAP_BASE: u64 = 0x4000_0000;

/// Default heap arena size in bytes (64 MiB).
pub const HEAP_SIZE: u64 = 64 << 20;

/// First address past the heap arena.
pub const HEAP_END: u64 = HEAP_BASE + HEAP_SIZE;

/// Per-thread stack size in bytes (1 MiB).
pub const STACK_SIZE: u64 = 1 << 20;

/// Base of the stack region (all threads).
pub const STACK_REGION_BASE: u64 = 0x7000_0000;

/// Initial stack pointer for a thread.
///
/// Stacks grow downwards; thread `tid`'s stack occupies
/// `[STACK_TOP(tid) - STACK_SIZE, STACK_TOP(tid))`.
#[must_use]
pub fn stack_top(tid: u8) -> u64 {
    STACK_REGION_BASE + (u64::from(tid) + 1) * STACK_SIZE
}

/// Whether `addr` lies in the heap arena.
#[must_use]
pub fn is_heap(addr: u64) -> bool {
    (HEAP_BASE..HEAP_END).contains(&addr)
}

/// Whether `addr` lies in the globals region.
#[must_use]
pub fn is_global(addr: u64) -> bool {
    (GLOBAL_BASE..GLOBAL_END).contains(&addr)
}

/// Whether `addr` lies in any thread stack.
#[must_use]
pub fn is_stack(addr: u64) -> bool {
    addr >= STACK_REGION_BASE
}

/// Whether `addr` is in a region that can be shared between threads
/// (heap or globals) — the set of addresses LockSet monitors.
#[must_use]
pub fn is_shared_region(addr: u64) -> bool {
    is_heap(addr) || is_global(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        // Compile-time asserts: the layout is all constants.
        const _: () = assert!(GLOBAL_END <= HEAP_BASE || HEAP_END <= GLOBAL_BASE);
        const _: () = assert!(HEAP_END <= STACK_REGION_BASE);
    }

    #[test]
    fn stack_tops_do_not_collide() {
        for a in 0..8u8 {
            for b in (a + 1)..8u8 {
                let (ta, tb) = (stack_top(a), stack_top(b));
                assert!(ta != tb);
                assert!((ta as i64 - tb as i64).unsigned_abs() >= STACK_SIZE);
            }
        }
    }

    #[test]
    fn classification_matches_layout() {
        assert!(is_heap(HEAP_BASE));
        assert!(is_heap(HEAP_END - 1));
        assert!(!is_heap(HEAP_END));
        assert!(is_global(GLOBAL_BASE));
        assert!(!is_global(HEAP_BASE));
        assert!(is_stack(stack_top(0) - 8));
        assert!(!is_stack(HEAP_BASE));
        assert!(is_shared_region(HEAP_BASE));
        assert!(is_shared_region(GLOBAL_BASE));
        assert!(!is_shared_region(stack_top(1) - 8));
    }
}
