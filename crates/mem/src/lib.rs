//! Simulated application memory for the LBA reproduction.
//!
//! Provides a sparse, paged flat memory ([`Memory`]), a user-level heap
//! allocator ([`HeapAllocator`]) backing the MiniISA `alloc`/`free`
//! instructions, and the canonical [address-space layout](layout) shared by
//! the CPU model, the workload generators and the lifeguards.
//!
//! # Examples
//!
//! ```
//! use lba_mem::{HeapAllocator, Memory};
//!
//! let mut mem = Memory::new();
//! mem.write_u64(0x4000_0000, 0xdead_beef);
//! assert_eq!(mem.read_u64(0x4000_0000), 0xdead_beef);
//!
//! let mut heap = HeapAllocator::new(0x4000_0000, 1 << 20);
//! let block = heap.alloc(64)?;
//! heap.free(block)?;
//! # Ok::<(), lba_mem::HeapError>(())
//! ```

mod alloc;
pub mod layout;
mod memory;
mod pagedir;

pub use alloc::{HeapAllocator, HeapError};
pub use memory::Memory;
pub use pagedir::PageDirectory;
