//! Sparse paged memory.

use crate::pagedir::PageDirectory;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse 64-bit byte-addressable memory backed by 4 KiB pages.
///
/// Unwritten memory reads as zero, so programs can be loaded at arbitrary
/// addresses without pre-touching pages. All multi-byte accesses are
/// little-endian and may span page boundaries.
///
/// Pages live in an arena behind a [`PageDirectory`], so the executor's
/// hot path — consecutive accesses within one page — resolves with a
/// compare and an indexed load instead of hashing.
///
/// # Examples
///
/// ```
/// use lba_mem::Memory;
///
/// let mut mem = Memory::new();
/// assert_eq!(mem.read_u32(0x1234), 0, "untouched memory reads as zero");
/// mem.write_u16(0xfff, 0xabcd); // spans a page boundary
/// assert_eq!(mem.read_u16(0xfff), 0xabcd);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    dir: PageDirectory,
    /// Page arena; directory entries index into it and never move.
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (touched) pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// The resident page containing `addr`.
    #[inline]
    fn page_of(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        let idx = self.dir.get(addr >> PAGE_SHIFT)?;
        Some(&self.pages[idx as usize])
    }

    /// Like [`page_of`](Self::page_of), but creates the page when absent.
    fn page_of_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        let page_no = addr >> PAGE_SHIFT;
        let idx = match self.dir.get(page_no) {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.pages.len()).expect("fewer than 2^32 memory pages");
                self.pages.push(Box::new([0u8; PAGE_SIZE]));
                self.dir.insert(page_no, idx);
                idx
            }
        };
        &mut self.pages[idx as usize]
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page_of(addr) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_of_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: whole access within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE {
            if let Some(page) = self.page_of(addr) {
                out.copy_from_slice(&page[off..off + N]);
            }
            return out;
        }
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.read_u8(addr + i as u64);
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_SIZE {
            let page = self.page_of_mut(addr);
            page[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a zero-extended value of `width` ∈ {1, 2, 4, 8} bytes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn read_width(&self, addr: u64, width: u32) -> u64 {
        match width {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            other => panic!("unsupported access width {other}"),
        }
    }

    /// Writes the low `width` ∈ {1, 2, 4, 8} bytes of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_width(&mut self, addr: u64, value: u64, width: u32) {
        match width {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            other => panic!("unsupported access width {other}"),
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_slice(&mut self, addr: u64, bytes: &[u8]) {
        self.write_bytes(addr, bytes);
    }

    /// Reads `len` bytes starting at `addr`.
    #[must_use]
    pub fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u64(0xffff_ffff_ffff_fff0), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut mem = Memory::new();
        mem.write_u8(10, 0xab);
        assert_eq!(mem.read_u8(10), 0xab);
        mem.write_u16(20, 0x1234);
        assert_eq!(mem.read_u16(20), 0x1234);
        mem.write_u32(30, 0xdead_beef);
        assert_eq!(mem.read_u32(30), 0xdead_beef);
        mem.write_u64(40, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(40), 0x0102_0304_0506_0708);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new();
        mem.write_u32(0, 0x0a0b_0c0d);
        assert_eq!(mem.read_u8(0), 0x0d);
        assert_eq!(mem.read_u8(3), 0x0a);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = (PAGE_SIZE as u64) - 4; // 4 bytes in page 0, 4 in page 1
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn width_accessors_match_typed_accessors() {
        let mut mem = Memory::new();
        mem.write_width(100, 0xffff_ffff_ffff_ffff, 2);
        assert_eq!(mem.read_u16(100), 0xffff);
        assert_eq!(mem.read_u32(100), 0x0000_ffff, "write truncated to width");
        assert_eq!(mem.read_width(100, 2), 0xffff);
    }

    #[test]
    fn slice_round_trip() {
        let mut mem = Memory::new();
        mem.write_slice(0x5000, b"hello world");
        assert_eq!(mem.read_vec(0x5000, 11), b"hello world");
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_panics() {
        let mem = Memory::new();
        let _ = mem.read_width(0, 3);
    }
}
