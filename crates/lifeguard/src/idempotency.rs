//! Capture-side idempotent-event filtering (§3).
//!
//! The paper observes that most dynamic checks are *idempotent*: once a
//! lifeguard has cleared an access, re-checking the same `pc`+`addr`
//! before anything relevant changes is pure overhead. This module drops
//! such duplicates at capture time — before compression, before the log
//! buffer, before dispatch — so the duplicate never costs wire bandwidth
//! or lifeguard-core cycles at all. It is the repo's first optimisation
//! that shrinks the log itself rather than moving it faster.
//!
//! Soundness is *per lifeguard*: each one declares, via
//! [`Lifeguard::idempotency`](crate::Lifeguard::idempotency), an
//! [`IdempotencyClass`] naming the key granularity under which its verdict
//! for a repeated access cannot change, and the events that *can* change a
//! verdict and therefore flush the window (allocation changes, lock
//! operations, cross-thread interleaving, syscalls). A lifeguard that
//! cannot tolerate any drop — TaintCheck, where every access propagates
//! state — declares [`IdempotencyClass::None`] and the filter provably
//! never touches its stream. Lifeguards whose duplicates carry information
//! only as *counts* (MemProfile) declare a [`Fold`](IdempotencyClass::Fold)
//! contract: suppressed duplicates accumulate in the window entry and are
//! re-emitted as one [`EventKind::Repeat`] summary record when the entry
//! is evicted, invalidated, or flushed, so end-of-run totals stay exact.
//!
//! [`CaptureFilter`] composes the idempotency window with the existing
//! [`AddrRangeFilter`] into a single capture-pass predicate shared by
//! every producer (co-simulated, live, and both sharded modes), so the two
//! filters cannot drift between modes.

use lba_record::{EventKind, EventMask, EventRecord};

use crate::filter::AddrRangeFilter;

/// A lifeguard's declared tolerance for capture-side duplicate
/// suppression — its *soundness contract* with the filter layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdempotencyClass {
    /// Every load/store carries analysis state; nothing may be dropped.
    /// The filter ships the stream untouched (TaintCheck: register taint
    /// is a sequential dependence chain through every instruction — the
    /// same property that excludes it from address-interleaved sharding).
    None,
    /// Duplicates under the spec's key may be dropped outright between
    /// flushes: a repeated access re-derives a verdict the lifeguard
    /// already reached and already deduplicates (AddrCheck, LockSet).
    Window(WindowSpec),
    /// Duplicates may be suppressed only if their *count* is preserved:
    /// each window entry accumulates its suppressed hits and re-emits them
    /// as one [`EventKind::Repeat`] summary on eviction, invalidation or
    /// flush, keeping totals exact (MemProfile).
    Fold(WindowSpec),
}

impl IdempotencyClass {
    /// Whether this class permits any suppression at all.
    #[must_use]
    pub fn dedupes(&self) -> bool {
        !matches!(self, IdempotencyClass::None)
    }

    /// The window parameters, when the class participates.
    #[must_use]
    pub fn spec(&self) -> Option<&WindowSpec> {
        match self {
            IdempotencyClass::None => None,
            IdempotencyClass::Window(spec) | IdempotencyClass::Fold(spec) => Some(spec),
        }
    }
}

/// Parameters of a dedup window: what makes two load/store records
/// "the same access", and which events invalidate cleared verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// log2 of the address granule folded into the key. Two records match
    /// only if `addr >> addr_granule_log2` agrees (plus `pc`, `tid`,
    /// `kind` and `size`). The granule must not be coarser than the
    /// granularity of the lifeguard's per-address verdict state: AddrCheck
    /// keys at its 16-byte allocation granule (4), LockSet at the exact
    /// address (0, its Eraser state is per 4-byte word and accesses may
    /// straddle), MemProfile at the 64-byte line its histogram uses (6).
    pub addr_granule_log2: u8,
    /// Event kinds whose arrival flushes the whole window, because they
    /// can change the verdict of an already-cleared access: alloc/free
    /// for allocation state, lock/unlock for held locksets, syscalls for
    /// fold-count visibility under the containment policy.
    pub invalidate_on: EventMask,
    /// Whether a thread interleave (a record from a different thread than
    /// the previous record) flushes the window. Required whenever another
    /// thread's access to the same location can move the lifeguard's
    /// state machine (LockSet); unnecessary when per-address state only
    /// changes through explicit events (AddrCheck: alloc/free).
    pub flush_on_thread_switch: bool,
}

/// Ceiling on the idempotency window's slot count. The window is
/// allocated eagerly (like the live channel queues, which are capped by
/// `MAX_LIVE_CHANNEL_FRAMES` for the same reason), so an astronomical
/// configuration value must clamp instead of attempting a multi-terabyte
/// allocation: 2^16 entries is a few megabytes — already far past the
/// point where a *recently-cleared* window stops resembling hardware.
pub const MAX_WINDOW_ENTRIES: usize = 1 << 16;

/// Counts of what the capture pass did, for `records captured vs. shipped`
/// visibility in run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Records observed at capture, before any filtering.
    pub captured: u64,
    /// Records that entered the log (fold summaries included).
    pub shipped: u64,
    /// Records dropped by the address-range filter.
    pub range_filtered: u64,
    /// Duplicate records suppressed by the idempotency window.
    pub deduped: u64,
    /// [`EventKind::Repeat`] summary records synthesized for fold-class
    /// lifeguards (already included in `shipped`).
    pub folded: u64,
}

/// One tracked access: the first occurrence of its key, plus the
/// duplicates suppressed since (only re-emitted for fold contracts).
#[derive(Debug, Clone, Copy)]
struct Entry {
    rec: EventRecord,
    hits: u64,
}

/// The direct-mapped window of recently-cleared accesses. A conflicting
/// key simply evicts the previous occupant — like the compressor's PC
/// tables, eviction only costs filtering efficiency, never soundness,
/// because an evicted access is merely re-checked on its next occurrence.
#[derive(Debug, Clone)]
struct IdempotencyWindow {
    slots: Vec<Option<Entry>>,
    mask: usize,
    /// Logical mask and liveness to restore on
    /// [`CaptureFilter::tighten_window`]. Equal to the current state for
    /// windows built without a widen reserve.
    base_mask: usize,
    base_live: bool,
    /// Mask covering the whole table — what widening switches to.
    wide_mask: usize,
    /// Whether the window currently participates in capture at all. A
    /// widen-only window (base entries zero) starts dormant and only
    /// filters while degradation holds it widened.
    live: bool,
    spec: WindowSpec,
    fold: bool,
    last_tid: Option<u8>,
}

impl IdempotencyWindow {
    fn new(entries: usize, class: IdempotencyClass) -> Option<Self> {
        Self::with_widen(entries, 0, class)
    }

    fn with_widen(entries: usize, widen_entries: usize, class: IdempotencyClass) -> Option<Self> {
        let spec = *class.spec()?;
        if entries == 0 && widen_entries == 0 {
            return None;
        }
        // Clamp before rounding: the ceiling is itself a power of two,
        // and `next_power_of_two` on an un-clamped huge value would
        // overflow in debug builds.
        let round = |n: usize| n.min(MAX_WINDOW_ENTRIES).next_power_of_two();
        let base_len = if entries == 0 { 0 } else { round(entries) };
        let len = round(widen_entries.max(1)).max(base_len.max(1));
        let base_live = base_len > 0;
        // A dormant base window keeps the base mask equal to the wide
        // one; liveness, not the mask, is what keeps it inert.
        let base_mask = if base_live { base_len - 1 } else { len - 1 };
        Some(IdempotencyWindow {
            slots: vec![None; len],
            mask: base_mask,
            base_mask,
            base_live,
            wide_mask: len - 1,
            live: base_live,
            spec,
            fold: matches!(class, IdempotencyClass::Fold(_)),
            last_tid: None,
        })
    }

    fn key_addr(&self, rec: &EventRecord) -> u64 {
        rec.addr >> self.spec.addr_granule_log2
    }

    fn index(&self, rec: &EventRecord) -> usize {
        let h = rec.pc.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ self.key_addr(rec).wrapping_mul(0xd6e8_feb8_6659_fd93)
            ^ u64::from(rec.tid).wrapping_mul(0xa24b_aed4_963e_e407);
        (h >> 32) as usize & self.mask
    }

    fn matches(entry: &Entry, rec: &EventRecord, granule_log2: u8) -> bool {
        entry.rec.pc == rec.pc
            && entry.rec.tid == rec.tid
            && entry.rec.kind == rec.kind
            && entry.rec.size == rec.size
            && entry.rec.addr >> granule_log2 == rec.addr >> granule_log2
    }

    /// Emits the fold summaries an entry owes (nothing for window-class
    /// contracts, or when no duplicate was suppressed).
    fn settle(fold: bool, entry: Entry, out: &mut Vec<EventRecord>, folded: &mut u64) {
        if !fold || entry.hits == 0 {
            return;
        }
        let width = entry.rec.size;
        let is_store = entry.rec.kind == EventKind::Store;
        let mut left = entry.hits;
        while left > 0 {
            let count = left.min(u64::from(u32::MAX));
            out.push(EventRecord::repeat(
                entry.rec.pc,
                entry.rec.tid,
                entry.rec.addr,
                width,
                is_store,
                count as u32,
            ));
            *folded += 1;
            left -= count;
        }
    }

    /// Drops every entry, emitting owed fold summaries in slot order.
    fn flush(&mut self, out: &mut Vec<EventRecord>, folded: &mut u64) {
        for slot in &mut self.slots {
            if let Some(entry) = slot.take() {
                Self::settle(self.fold, entry, out, folded);
            }
        }
    }
}

/// The single capture-pass predicate every producer runs: the optional
/// address-range filter composed with the per-lifeguard idempotency
/// window. One `capture` call per retired record decides what enters the
/// log; the two filters cannot drift between execution modes because the
/// modes share this code.
///
/// # Examples
///
/// ```
/// use lba_lifeguard::{CaptureFilter, IdempotencyClass, WindowSpec};
/// use lba_record::{EventMask, EventRecord};
///
/// let class = IdempotencyClass::Window(WindowSpec {
///     addr_granule_log2: 4,
///     invalidate_on: EventMask::of(&[lba_record::EventKind::Free]),
///     flush_on_thread_switch: false,
/// });
/// let mut filter = CaptureFilter::new(None, 64, class);
/// let mut out = Vec::new();
/// let load = EventRecord::load(0x1000, 0, None, None, 0x4000_0000, 4);
/// filter.capture(&load, &mut out);
/// assert_eq!(out.len(), 1, "first occurrence ships");
/// filter.capture(&load, &mut out);
/// assert!(out.is_empty(), "duplicate suppressed");
/// assert_eq!(filter.stats().deduped, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CaptureFilter {
    range: Option<AddrRangeFilter>,
    window: Option<IdempotencyWindow>,
    stats: CaptureStats,
}

impl CaptureFilter {
    /// Creates the composed filter. `window_entries` is the requested
    /// window capacity (rounded up to a power of two, clamped to
    /// [`MAX_WINDOW_ENTRIES`]); zero — or an [`IdempotencyClass::None`]
    /// contract — disables dedup entirely, and with no range filter
    /// either, the pass degenerates to shipping every record untouched.
    #[must_use]
    pub fn new(
        range: Option<AddrRangeFilter>,
        window_entries: usize,
        class: IdempotencyClass,
    ) -> Self {
        CaptureFilter {
            range,
            window: IdempotencyWindow::new(window_entries, class),
            stats: CaptureStats::default(),
        }
    }

    /// Whether the pass is a no-op (no range filter, no active window).
    /// Producers check this once and pair it with
    /// [`tally_passthrough`](Self::tally_passthrough) to push records
    /// directly, skipping the scratch-buffer plumbing on the default
    /// (unfiltered) hot path.
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self.range.is_none() && !self.window.as_ref().is_some_and(|w| w.live)
    }

    /// Creates the composed filter with a widen reserve: the window's
    /// table is allocated at `widen_entries` (clamped like everything
    /// else) but runs at `window_entries` until
    /// [`widen_window`](Self::widen_window) switches it over. With
    /// `window_entries == 0` the window starts dormant and only filters
    /// while widened — degradation can switch dedup *on*, not just make
    /// it bigger.
    #[must_use]
    pub fn with_widen(
        range: Option<AddrRangeFilter>,
        window_entries: usize,
        widen_entries: usize,
        class: IdempotencyClass,
    ) -> Self {
        CaptureFilter {
            range,
            window: IdempotencyWindow::with_widen(window_entries, widen_entries, class),
            stats: CaptureStats::default(),
        }
    }

    /// Switches the window to its full (widened) capacity. Sound for any
    /// lifeguard whose policy allows it: the spec is unchanged, so a
    /// wider window only suppresses more duplicates under the same
    /// contract; entries keyed under the old mask merely stop being
    /// found, costing dedup efficiency, never soundness (their pending
    /// fold counts still settle at the next flush, which walks the whole
    /// table). Returns whether anything changed.
    pub fn widen_window(&mut self) -> bool {
        match &mut self.window {
            Some(w) if !w.live || w.mask != w.wide_mask => {
                w.mask = w.wide_mask;
                w.live = true;
                true
            }
            _ => false,
        }
    }

    /// Restores the window to its configured capacity, flushing it first
    /// — the "what must flush on re-tightening" half of the degradation
    /// contract: every pending fold count settles and every cleared
    /// verdict is forgotten, so post-tighten capture behaves as if the
    /// widened interval never existed. `out` is cleared and refilled
    /// with the summaries to ship.
    pub fn tighten_window(&mut self, out: &mut Vec<EventRecord>) {
        out.clear();
        if let Some(w) = &mut self.window {
            w.flush(out, &mut self.stats.folded);
            w.mask = w.base_mask;
            w.live = w.base_live;
            w.last_tid = None;
        }
        self.stats.shipped += out.len() as u64;
    }

    /// The shipping counterpart of [`tighten_window`](Self::tighten_window),
    /// mirroring [`finish_into`](Self::finish_into).
    pub fn tighten_window_into(
        &mut self,
        scratch: &mut Vec<EventRecord>,
        mut ship: impl FnMut(&EventRecord),
    ) {
        self.tighten_window(scratch);
        for rec in scratch.iter() {
            ship(rec);
        }
    }

    /// The fast-path ledger update paired with
    /// [`is_passthrough`](Self::is_passthrough): the caller ships the
    /// record itself; this keeps `captured`/`shipped` exact without
    /// touching a scratch buffer. Equivalent to
    /// [`capture`](Self::capture) returning the record unchanged — which
    /// is what a passthrough filter always does.
    pub fn tally_passthrough(&mut self) {
        self.stats.captured += 1;
        self.stats.shipped += 1;
    }

    /// Runs the capture pass for one retired record. `out` is cleared and
    /// refilled with the records that must enter the log, in shipping
    /// order: any fold summaries this record's arrival flushed out of the
    /// window first, then the record itself unless it was filtered.
    pub fn capture(&mut self, rec: &EventRecord, out: &mut Vec<EventRecord>) {
        out.clear();
        self.stats.captured += 1;
        if let Some(range) = &self.range {
            if !range.passes(rec) {
                self.stats.range_filtered += 1;
                return;
            }
        }
        if let Some(window) = self.window.as_mut().filter(|w| w.live) {
            // Cross-thread interleaving can move per-address state the
            // cleared verdicts depend on (LockSet's Eraser machine).
            if window.spec.flush_on_thread_switch && window.last_tid != Some(rec.tid) {
                if window.last_tid.is_some() {
                    window.flush(out, &mut self.stats.folded);
                }
                window.last_tid = Some(rec.tid);
            }
            // Events that change verdicts wholesale flush everything —
            // *before* they ship, so the lifeguard observes the summaries
            // ahead of the invalidating event (syscall containment).
            if window.spec.invalidate_on.contains(rec.kind) {
                window.flush(out, &mut self.stats.folded);
            }
            if rec.is_memory() {
                let idx = window.index(rec);
                let granule_log2 = window.spec.addr_granule_log2;
                let fold = window.fold;
                let slot = &mut window.slots[idx];
                match slot {
                    Some(entry) if IdempotencyWindow::matches(entry, rec, granule_log2) => {
                        // Any flush this record triggered emptied every
                        // slot, so a duplicate match implies nothing was
                        // emitted ahead of it.
                        debug_assert!(out.is_empty(), "flush and dedup-hit are exclusive");
                        entry.hits += 1;
                        self.stats.deduped += 1;
                        return;
                    }
                    _ => {
                        if let Some(evicted) = slot.take() {
                            IdempotencyWindow::settle(fold, evicted, out, &mut self.stats.folded);
                        }
                        *slot = Some(Entry { rec: *rec, hits: 0 });
                    }
                }
            }
        }
        out.push(*rec);
        self.stats.shipped += out.len() as u64;
    }

    /// Ends the capture stream: flushes the window so fold-class
    /// lifeguards receive every outstanding duplicate count. `out` is
    /// cleared and refilled with the summaries to ship.
    pub fn finish(&mut self, out: &mut Vec<EventRecord>) {
        out.clear();
        if let Some(window) = &mut self.window {
            window.flush(out, &mut self.stats.folded);
        }
        self.stats.shipped += out.len() as u64;
    }

    /// The one capture loop every producer runs: decides `rec`'s fate and
    /// hands each record that must enter the log to `ship`, in order. On
    /// the passthrough fast path this is a ledger tally plus one `ship`
    /// call — no scratch-buffer traffic. Keeping the shipping protocol
    /// here (rather than copy-pasted into each run mode) is what makes
    /// "the modes cannot drift" true.
    pub fn capture_into(
        &mut self,
        rec: &EventRecord,
        scratch: &mut Vec<EventRecord>,
        mut ship: impl FnMut(&EventRecord),
    ) {
        if self.is_passthrough() {
            self.tally_passthrough();
            ship(rec);
        } else {
            self.capture(rec, scratch);
            for rec in scratch.iter() {
                ship(rec);
            }
        }
    }

    /// The end-of-stream counterpart of
    /// [`capture_into`](Self::capture_into): settles outstanding fold
    /// counts into `ship`.
    /// Producers call this once, after the last retired record and before
    /// closing their channel, or fold-class totals lose their tail.
    pub fn finish_into(
        &mut self,
        scratch: &mut Vec<EventRecord>,
        mut ship: impl FnMut(&EventRecord),
    ) {
        self.finish(scratch);
        for rec in scratch.iter() {
            ship(rec);
        }
    }

    /// What the capture pass did so far.
    #[must_use]
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_class(granule: u8, triggers: &[EventKind], thread_switch: bool) -> IdempotencyClass {
        IdempotencyClass::Window(WindowSpec {
            addr_granule_log2: granule,
            invalidate_on: EventMask::of(triggers),
            flush_on_thread_switch: thread_switch,
        })
    }

    fn fold_class(granule: u8, triggers: &[EventKind]) -> IdempotencyClass {
        IdempotencyClass::Fold(WindowSpec {
            addr_granule_log2: granule,
            invalidate_on: EventMask::of(triggers),
            flush_on_thread_switch: false,
        })
    }

    fn load(pc: u64, addr: u64) -> EventRecord {
        EventRecord::load(pc, 0, Some(1), Some(2), addr, 4)
    }

    fn drive(filter: &mut CaptureFilter, records: &[EventRecord]) -> Vec<EventRecord> {
        let mut shipped = Vec::new();
        let mut out = Vec::new();
        for rec in records {
            filter.capture(rec, &mut out);
            shipped.extend_from_slice(&out);
        }
        filter.finish(&mut out);
        shipped.extend_from_slice(&out);
        shipped
    }

    #[test]
    fn duplicates_within_the_window_are_suppressed() {
        let mut f = CaptureFilter::new(None, 16, window_class(0, &[], false));
        let shipped = drive(&mut f, &[load(0x1000, 0x40), load(0x1000, 0x40)]);
        assert_eq!(shipped.len(), 1);
        let stats = f.stats();
        assert_eq!(stats.captured, 2);
        assert_eq!(stats.shipped, 1);
        assert_eq!(stats.deduped, 1);
    }

    #[test]
    fn different_pc_addr_tid_kind_or_size_is_not_a_duplicate() {
        let base = load(0x1000, 0x40);
        let variants = [
            load(0x1008, 0x40),                                       // pc
            load(0x1000, 0x80),                                       // addr
            EventRecord::load(0x1000, 1, Some(1), Some(2), 0x40, 4),  // tid
            EventRecord::store(0x1000, 0, Some(1), Some(2), 0x40, 4), // kind
            EventRecord::load(0x1000, 0, Some(1), Some(2), 0x40, 8),  // size
        ];
        for variant in variants {
            let mut f = CaptureFilter::new(None, 1024, window_class(0, &[], false));
            let shipped = drive(&mut f, &[base, variant]);
            assert_eq!(shipped.len(), 2, "{variant:?} must not be suppressed");
        }
    }

    #[test]
    fn granule_groups_addresses() {
        let mut f = CaptureFilter::new(None, 16, window_class(4, &[], false));
        // Same 16-byte granule: the second is a duplicate despite a
        // different byte offset.
        let shipped = drive(&mut f, &[load(0x1000, 0x40), load(0x1000, 0x4c)]);
        assert_eq!(shipped.len(), 1);
        // Next granule: ships.
        let mut f = CaptureFilter::new(None, 16, window_class(4, &[], false));
        let shipped = drive(&mut f, &[load(0x1000, 0x40), load(0x1000, 0x50)]);
        assert_eq!(shipped.len(), 2);
    }

    #[test]
    fn invalidating_event_reopens_the_window() {
        let mut f = CaptureFilter::new(None, 16, window_class(0, &[EventKind::Free], false));
        let free = EventRecord {
            pc: 0x2000,
            kind: EventKind::Free,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 0x40,
            size: 0,
        };
        let shipped = drive(&mut f, &[load(0x1000, 0x40), free, load(0x1000, 0x40)]);
        assert_eq!(shipped.len(), 3, "the re-check after free must ship");
    }

    #[test]
    fn thread_switch_flushes_when_requested() {
        let t0 = load(0x1000, 0x40);
        let t1 = EventRecord::load(0x1008, 1, Some(1), Some(2), 0x80, 4);
        let mut f = CaptureFilter::new(None, 16, window_class(0, &[], true));
        let shipped = drive(&mut f, &[t0, t1, t0]);
        assert_eq!(shipped.len(), 3, "t0's re-check after t1 ran must ship");
        let mut f = CaptureFilter::new(None, 16, window_class(0, &[], false));
        let shipped = drive(&mut f, &[t0, t1, t0]);
        assert_eq!(shipped.len(), 2, "without the trigger it deduplicates");
    }

    #[test]
    fn fold_contract_emits_exact_summaries() {
        let mut f = CaptureFilter::new(None, 16, fold_class(6, &[]));
        let shipped = drive(
            &mut f,
            &[load(0x1000, 0x40), load(0x1000, 0x44), load(0x1000, 0x78)],
        );
        // One shipped load + one summary covering the two same-line
        // duplicates (granule 6: all three share the 0x40 line).
        assert_eq!(shipped.len(), 2);
        assert_eq!(shipped[0], load(0x1000, 0x40));
        let summary = shipped[1];
        assert_eq!(summary.kind, EventKind::Repeat);
        assert_eq!(summary.repeat_count(), 2);
        assert_eq!(summary.repeat_width(), 4);
        assert!(!summary.repeat_is_store());
        assert_eq!(summary.pc, 0x1000);
        let stats = f.stats();
        assert_eq!(stats.deduped, 2);
        assert_eq!(stats.folded, 1);
        assert_eq!(stats.shipped, 2);
    }

    #[test]
    fn fold_eviction_settles_before_the_evictor_ships() {
        // A one-slot window: the second distinct access evicts the first,
        // whose pending count must surface as a summary ahead of it.
        let mut f = CaptureFilter::new(None, 1, fold_class(0, &[]));
        let a = load(0x1000, 0x40);
        let b = load(0x1008, 0x99);
        let mut out = Vec::new();
        f.capture(&a, &mut out);
        assert_eq!(out.as_slice(), &[a]);
        f.capture(&a, &mut out);
        assert!(out.is_empty());
        f.capture(&b, &mut out);
        assert_eq!(out.len(), 2, "summary for `a`, then `b`");
        assert_eq!(out[0].kind, EventKind::Repeat);
        assert_eq!(out[0].repeat_count(), 1);
        assert_eq!(out[1], b);
    }

    #[test]
    fn none_class_and_zero_window_pass_everything() {
        for mut f in [
            CaptureFilter::new(None, 1024, IdempotencyClass::None),
            CaptureFilter::new(None, 0, window_class(0, &[], false)),
        ] {
            assert!(f.is_passthrough());
            let records = [load(0x1000, 0x40), load(0x1000, 0x40)];
            let shipped = drive(&mut f, &records);
            assert_eq!(shipped.as_slice(), &records);
            assert_eq!(f.stats().deduped, 0);
            assert_eq!(f.stats().captured, 2);
            assert_eq!(f.stats().shipped, 2);
        }
        // A filtering configuration is not a passthrough.
        assert!(!CaptureFilter::new(None, 8, window_class(0, &[], false)).is_passthrough());
    }

    #[test]
    fn tally_passthrough_matches_capture_on_a_noop_filter() {
        // The fast path's ledger must be indistinguishable from running
        // the full pass on a passthrough filter.
        let mut slow = CaptureFilter::new(None, 0, IdempotencyClass::None);
        let mut fast = slow.clone();
        let mut out = Vec::new();
        for i in 0..5u64 {
            slow.capture(&load(0x1000 + i, 0x40), &mut out);
            fast.tally_passthrough();
        }
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn range_filter_composes_in_the_same_pass() {
        let range = AddrRangeFilter::new(vec![(0x40, 0x100)]);
        let mut f = CaptureFilter::new(Some(range), 16, window_class(0, &[], false));
        let shipped = drive(
            &mut f,
            &[
                load(0x1000, 0x40),  // in range: ships
                load(0x1000, 0x200), // out of range: dropped
                load(0x1000, 0x40),  // duplicate: suppressed
            ],
        );
        assert_eq!(shipped.len(), 1);
        let stats = f.stats();
        assert_eq!(stats.range_filtered, 1);
        assert_eq!(stats.deduped, 1);
        assert_eq!(stats.captured, 3);
        assert_eq!(stats.shipped, 1);
    }

    #[test]
    fn non_memory_events_always_ship() {
        let mut f = CaptureFilter::new(None, 16, window_class(0, &[], false));
        let alloc = EventRecord {
            pc: 0x1000,
            kind: EventKind::Alloc,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 0x40,
            size: 64,
        };
        let shipped = drive(&mut f, &[alloc, alloc, alloc]);
        assert_eq!(shipped.len(), 3, "only loads/stores are dedup candidates");
    }

    #[test]
    fn astronomical_window_request_clamps_instead_of_allocating() {
        // The window is allocated eagerly; a huge configured size must
        // clamp to the ceiling, not attempt a terabyte Vec (or overflow
        // next_power_of_two in debug builds).
        let mut f = CaptureFilter::new(None, usize::MAX, window_class(0, &[], false));
        assert!(!f.is_passthrough());
        let shipped = drive(&mut f, &[load(0x1000, 0x40), load(0x1000, 0x40)]);
        assert_eq!(shipped.len(), 1, "the clamped window still dedups");
    }

    #[test]
    fn stats_balance() {
        let mut f = CaptureFilter::new(None, 4, fold_class(0, &[EventKind::Syscall]));
        let mut records = Vec::new();
        for i in 0..200u64 {
            records.push(load(0x1000 + (i % 7) * 8, 0x40 + (i % 5) * 4));
        }
        let shipped = drive(&mut f, &records);
        let stats = f.stats();
        assert_eq!(stats.captured, 200);
        assert_eq!(stats.shipped, shipped.len() as u64);
        assert_eq!(
            stats.shipped,
            stats.captured - stats.range_filtered - stats.deduped + stats.folded
        );
        // Exactness: summaries plus shipped accesses cover every capture.
        let replayed: u64 = shipped
            .iter()
            .map(|r| {
                if r.kind == EventKind::Repeat {
                    u64::from(r.repeat_count())
                } else {
                    1
                }
            })
            .sum();
        assert_eq!(replayed, 200);
    }

    #[test]
    fn widen_only_window_starts_dormant() {
        let mut f = CaptureFilter::with_widen(None, 0, 64, window_class(0, &[], false));
        assert!(f.is_passthrough(), "dormant until widened");
        let mut out = Vec::new();
        f.capture(&load(0x1000, 0x40), &mut out);
        f.capture(&load(0x1000, 0x40), &mut out);
        assert_eq!(out.as_slice(), &[load(0x1000, 0x40)], "no dedup yet");
        assert!(f.widen_window());
        assert!(!f.is_passthrough());
        f.capture(&load(0x1000, 0x40), &mut out);
        f.capture(&load(0x1000, 0x40), &mut out);
        assert!(out.is_empty(), "widened window dedups");
        f.tighten_window(&mut out);
        assert!(f.is_passthrough(), "tighten restores dormancy");
        f.capture(&load(0x1000, 0x40), &mut out);
        assert_eq!(out.len(), 1, "post-tighten capture is full fidelity");
        assert_eq!(f.stats().deduped, 1);
    }

    #[test]
    fn tighten_settles_fold_counts_exactly() {
        let mut f = CaptureFilter::with_widen(None, 0, 16, fold_class(6, &[]));
        assert!(f.widen_window());
        let mut out = Vec::new();
        let mut shipped = Vec::new();
        for _ in 0..5 {
            f.capture(&load(0x1000, 0x40), &mut out);
            shipped.extend_from_slice(&out);
        }
        f.tighten_window(&mut out);
        shipped.extend_from_slice(&out);
        // One access + one summary covering the four suppressed hits.
        assert_eq!(shipped.len(), 2);
        assert_eq!(shipped[1].kind, EventKind::Repeat);
        assert_eq!(shipped[1].repeat_count(), 4);
        let stats = f.stats();
        assert_eq!(
            stats.shipped,
            stats.captured - stats.range_filtered - stats.deduped + stats.folded
        );
    }

    #[test]
    fn widening_a_live_window_keeps_the_ledger_balanced() {
        let mut f = CaptureFilter::with_widen(None, 4, 256, fold_class(0, &[]));
        assert!(!f.is_passthrough());
        let mut out = Vec::new();
        let mut shipped = 0u64;
        for i in 0..300u64 {
            f.capture(&load(0x1000 + (i % 11) * 8, 0x40 + (i % 13) * 4), &mut out);
            shipped += out.len() as u64;
            if i == 100 {
                assert!(f.widen_window());
            }
            if i == 200 {
                f.tighten_window(&mut out);
                shipped += out.len() as u64;
            }
        }
        f.finish(&mut out);
        shipped += out.len() as u64;
        let stats = f.stats();
        assert_eq!(stats.shipped, shipped);
        assert_eq!(
            stats.shipped,
            stats.captured - stats.range_filtered - stats.deduped + stats.folded
        );
    }

    #[test]
    fn widen_without_reserve_is_a_noop() {
        let mut f = CaptureFilter::new(None, 16, window_class(0, &[], false));
        assert!(!f.widen_window(), "no reserve: already at full capacity");
        let mut none = CaptureFilter::new(None, 0, IdempotencyClass::None);
        assert!(!none.widen_window(), "None-class never grows a window");
    }
}
