//! The `Lifeguard` trait and the nlba dispatch engine.

use lba_cache::MemSystem;
use lba_record::{EventMask, EventRecord};

use crate::cost::HandlerCtx;
use crate::degradation::{DegradationPolicy, DegradationRequest};
use crate::finding::Finding;
use crate::idempotency::IdempotencyClass;

/// A monitoring program organised as event handlers (the paper's §2).
///
/// Implementations keep their analysis state (shadow memory, lockset
/// tables, …) internally and charge the cost of their work through the
/// [`HandlerCtx`] they are handed; detected problems are reported the same
/// way. The framework — not the lifeguard — decides which core pays
/// (lifeguard core under LBA, application core under DBI).
pub trait Lifeguard {
    /// Short stable name used in findings and reports (e.g. `"taintcheck"`).
    fn name(&self) -> &'static str;

    /// The event kinds this lifeguard's handlers cover. The dispatch
    /// hardware routes everything else to a no-op handler.
    fn subscriptions(&self) -> EventMask;

    /// Handles one subscribed event.
    fn on_event(&mut self, record: &EventRecord, ctx: &mut HandlerCtx<'_>);

    /// Called once after the last log entry (end-of-program checks such as
    /// AddrCheck's leak scan). The default does nothing.
    fn on_finish(&mut self, ctx: &mut HandlerCtx<'_>) {
        let _ = ctx;
    }

    /// The lifeguard's capture-side soundness contract: under which key,
    /// and until which invalidating events, is re-checking a repeated
    /// load/store guaranteed to reproduce a verdict this lifeguard
    /// already reached? The capture filter suppresses duplicates only
    /// within the declared contract (see
    /// [`IdempotencyClass`]). The default is the conservative
    /// [`IdempotencyClass::None`]: no record of an undeclared lifeguard
    /// is ever dropped.
    fn idempotency(&self) -> IdempotencyClass {
        IdempotencyClass::None
    }

    /// The lifeguard's capture-side degradation contract: which fidelity
    /// reductions may the capture controller apply to this lifeguard's
    /// stream while the transport is under back-pressure (see
    /// [`DegradationPolicy`])? The default is the conservative
    /// [`DegradationPolicy::none`]: an undeclared lifeguard's stream is
    /// never degraded — the controller is not even constructed for it.
    fn degradation(&self) -> DegradationPolicy {
        DegradationPolicy::none()
    }

    /// The analysis-side degradation dial: a lifeguard that has decided —
    /// from what its handlers have seen — that capture fidelity should
    /// change may return a [`DegradationRequest`] here. The dispatch
    /// engine polls this after deliveries ([`DispatchEngine::poll_degradation`])
    /// and the capture controller honours the request only within the
    /// bounds of the lifeguard's own [`DegradationPolicy`]. Take
    /// semantics: a returned request is considered consumed, so
    /// implementations should clear their pending slot. The default never
    /// requests anything.
    fn degradation_request(&mut self) -> Option<DegradationRequest> {
        None
    }
}

/// Cycle model of the dispatch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchConfig {
    /// Cycles per dispatched record: the `nlba` instruction plus the jump
    /// table lookup. The paper notes the lookup index "can be determined
    /// very early" thanks to pipelined, decoupled processing, so this is
    /// small.
    pub dispatch_cycles: u64,
    /// Cycles for a record whose kind the lifeguard did not subscribe to
    /// (the hardware filter falls through to a trivial handler).
    pub unsubscribed_cycles: u64,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            dispatch_cycles: 2,
            unsubscribed_cycles: 1,
        }
    }
}

/// The lifeguard-core dispatch engine: decompression hand-off, jump-table
/// lookup and handler invocation, with cycle accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchEngine {
    config: DispatchConfig,
}

impl DispatchEngine {
    /// Creates an engine with the given cycle model.
    #[must_use]
    pub fn new(config: DispatchConfig) -> Self {
        DispatchEngine { config }
    }

    /// The engine's cycle model.
    #[must_use]
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// Delivers one record to the lifeguard, charging shadow work to
    /// `core` of `mem`. Returns the lifeguard-core cycles consumed.
    pub fn deliver(
        &self,
        lifeguard: &mut dyn Lifeguard,
        record: &EventRecord,
        mem: &mut MemSystem,
        core: usize,
        findings: &mut Vec<Finding>,
    ) -> u64 {
        if !lifeguard.subscriptions().contains(record.kind) {
            return self.config.unsubscribed_cycles;
        }
        let mut ctx = HandlerCtx::new(mem, core, findings);
        lifeguard.on_event(record, &mut ctx);
        self.config.dispatch_cycles + ctx.cycles()
    }

    /// Delivers a whole frame of records in one call, charging shadow work
    /// to `core` of `mem`. Returns the lifeguard-core cycles consumed.
    ///
    /// This is the batch counterpart of [`deliver`](Self::deliver): the
    /// subscription mask is fetched once and unsubscribed kinds are masked
    /// in bulk, and one [`HandlerCtx`] spans the frame instead of being
    /// rebuilt per record. The cycle total is identical to delivering the
    /// records one at a time — handler work is additive and the engine
    /// charges fixed per-record dispatch costs — which the equivalence
    /// proptests pin down.
    pub fn deliver_batch(
        &self,
        lifeguard: &mut dyn Lifeguard,
        records: &[EventRecord],
        mem: &mut MemSystem,
        core: usize,
        findings: &mut Vec<Finding>,
    ) -> u64 {
        let mask = lifeguard.subscriptions();
        let mut fixed = 0u64;
        let mut ctx = HandlerCtx::new(mem, core, findings);
        for record in records {
            if mask.contains(record.kind) {
                lifeguard.on_event(record, &mut ctx);
                fixed += self.config.dispatch_cycles;
            } else {
                fixed += self.config.unsubscribed_cycles;
            }
        }
        fixed + ctx.cycles()
    }

    /// Polls the lifeguard's analysis-side degradation dial
    /// ([`Lifeguard::degradation_request`]). Runners forward the returned
    /// request to the capture controller, which ledgers it and applies it
    /// within the lifeguard's declared [`DegradationPolicy`].
    pub fn poll_degradation(&self, lifeguard: &mut dyn Lifeguard) -> Option<DegradationRequest> {
        lifeguard.degradation_request()
    }

    /// Runs the lifeguard's end-of-log hook, returning its cycle cost.
    pub fn finish(
        &self,
        lifeguard: &mut dyn Lifeguard,
        mem: &mut MemSystem,
        core: usize,
        findings: &mut Vec<Finding>,
    ) -> u64 {
        let mut ctx = HandlerCtx::new(mem, core, findings);
        lifeguard.on_finish(&mut ctx);
        ctx.cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::MemSystemConfig;
    use lba_record::EventKind;

    struct Probe {
        events: Vec<EventKind>,
        finished: bool,
    }

    impl Lifeguard for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn subscriptions(&self) -> EventMask {
            EventMask::of(&[EventKind::Load, EventKind::Alloc])
        }
        fn on_event(&mut self, record: &EventRecord, ctx: &mut HandlerCtx<'_>) {
            self.events.push(record.kind);
            ctx.alu(5);
        }
        fn on_finish(&mut self, ctx: &mut HandlerCtx<'_>) {
            self.finished = true;
            ctx.alu(7);
        }
    }

    #[test]
    fn subscribed_events_invoke_handler() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::default();
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let rec = EventRecord::load(0x1000, 0, Some(1), Some(2), 0x100, 4);
        let cycles = engine.deliver(&mut lg, &rec, &mut mem, 1, &mut findings);
        assert_eq!(cycles, 2 + 5);
        assert_eq!(lg.events, vec![EventKind::Load]);
    }

    #[test]
    fn unsubscribed_events_cost_one_cycle() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::default();
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let rec = EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(3));
        let cycles = engine.deliver(&mut lg, &rec, &mut mem, 1, &mut findings);
        assert_eq!(cycles, 1);
        assert!(lg.events.is_empty(), "handler must not run");
    }

    #[test]
    fn finish_runs_end_hook() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::default();
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let cycles = engine.finish(&mut lg, &mut mem, 1, &mut findings);
        assert!(lg.finished);
        assert_eq!(cycles, 7);
    }

    /// A mixed frame: subscribed loads/allocs interleaved with
    /// unsubscribed ALU records.
    fn mixed_frame() -> Vec<EventRecord> {
        (0..20)
            .map(|i| match i % 3 {
                0 => EventRecord::load(0x1000 + i * 8, 0, Some(1), Some(2), 0x100 + i * 4, 4),
                1 => EventRecord::alu(0x1000 + i * 8, 0, Some(1), Some(2), Some(3)),
                _ => EventRecord {
                    pc: 0x1000 + i * 8,
                    kind: EventKind::Alloc,
                    tid: 0,
                    in1: Some(1),
                    in2: None,
                    out: Some(2),
                    addr: 0x4000_0000 + i * 64,
                    size: 32,
                },
            })
            .collect()
    }

    #[test]
    fn batch_delivery_matches_per_record_sum() {
        let records = mixed_frame();
        let engine = DispatchEngine::default();

        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let per_record: u64 = records
            .iter()
            .map(|r| engine.deliver(&mut lg, r, &mut mem, 1, &mut findings))
            .sum();
        let per_record_events = lg.events.clone();

        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let batched = engine.deliver_batch(&mut lg, &records, &mut mem, 1, &mut findings);

        assert_eq!(batched, per_record, "cycle totals must be identical");
        assert_eq!(lg.events, per_record_events, "handler order must match");
    }

    #[test]
    fn batch_spanning_subscription_boundary_charges_unsubscribed_cycles() {
        // Regression: a frame holding both subscribed and unsubscribed
        // kinds must charge `unsubscribed_cycles` (not `dispatch_cycles`,
        // not zero) for each masked record.
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::new(DispatchConfig {
            dispatch_cycles: 10,
            unsubscribed_cycles: 3,
        });
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        // Two subscribed loads around three unsubscribed ALU records.
        let frame = vec![
            EventRecord::load(0x1000, 0, None, None, 0, 4),
            EventRecord::alu(0x1008, 0, None, None, None),
            EventRecord::alu(0x1010, 0, None, None, None),
            EventRecord::alu(0x1018, 0, None, None, None),
            EventRecord::load(0x1020, 0, None, None, 64, 4),
        ];
        let cycles = engine.deliver_batch(&mut lg, &frame, &mut mem, 1, &mut findings);
        // Each load: 10 dispatch + 5 handler ALU; each masked record: 3.
        assert_eq!(cycles, 2 * (10 + 5) + 3 * 3);
        assert_eq!(lg.events, vec![EventKind::Load, EventKind::Load]);
    }

    #[test]
    fn custom_config_respected() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::new(DispatchConfig {
            dispatch_cycles: 10,
            unsubscribed_cycles: 3,
        });
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let rec = EventRecord::load(0x1000, 0, None, None, 0, 4);
        assert_eq!(
            engine.deliver(&mut lg, &rec, &mut mem, 1, &mut findings),
            15
        );
        let rec = EventRecord::alu(0x1000, 0, None, None, None);
        assert_eq!(engine.deliver(&mut lg, &rec, &mut mem, 1, &mut findings), 3);
    }
}
