//! The `Lifeguard` trait and the nlba dispatch engine.

use lba_cache::MemSystem;
use lba_record::{EventMask, EventRecord};

use crate::cost::HandlerCtx;
use crate::finding::Finding;

/// A monitoring program organised as event handlers (the paper's §2).
///
/// Implementations keep their analysis state (shadow memory, lockset
/// tables, …) internally and charge the cost of their work through the
/// [`HandlerCtx`] they are handed; detected problems are reported the same
/// way. The framework — not the lifeguard — decides which core pays
/// (lifeguard core under LBA, application core under DBI).
pub trait Lifeguard {
    /// Short stable name used in findings and reports (e.g. `"taintcheck"`).
    fn name(&self) -> &'static str;

    /// The event kinds this lifeguard's handlers cover. The dispatch
    /// hardware routes everything else to a no-op handler.
    fn subscriptions(&self) -> EventMask;

    /// Handles one subscribed event.
    fn on_event(&mut self, record: &EventRecord, ctx: &mut HandlerCtx<'_>);

    /// Called once after the last log entry (end-of-program checks such as
    /// AddrCheck's leak scan). The default does nothing.
    fn on_finish(&mut self, ctx: &mut HandlerCtx<'_>) {
        let _ = ctx;
    }
}

/// Cycle model of the dispatch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchConfig {
    /// Cycles per dispatched record: the `nlba` instruction plus the jump
    /// table lookup. The paper notes the lookup index "can be determined
    /// very early" thanks to pipelined, decoupled processing, so this is
    /// small.
    pub dispatch_cycles: u64,
    /// Cycles for a record whose kind the lifeguard did not subscribe to
    /// (the hardware filter falls through to a trivial handler).
    pub unsubscribed_cycles: u64,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            dispatch_cycles: 2,
            unsubscribed_cycles: 1,
        }
    }
}

/// The lifeguard-core dispatch engine: decompression hand-off, jump-table
/// lookup and handler invocation, with cycle accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchEngine {
    config: DispatchConfig,
}

impl DispatchEngine {
    /// Creates an engine with the given cycle model.
    #[must_use]
    pub fn new(config: DispatchConfig) -> Self {
        DispatchEngine { config }
    }

    /// The engine's cycle model.
    #[must_use]
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// Delivers one record to the lifeguard, charging shadow work to
    /// `core` of `mem`. Returns the lifeguard-core cycles consumed.
    pub fn deliver(
        &self,
        lifeguard: &mut dyn Lifeguard,
        record: &EventRecord,
        mem: &mut MemSystem,
        core: usize,
        findings: &mut Vec<Finding>,
    ) -> u64 {
        if !lifeguard.subscriptions().contains(record.kind) {
            return self.config.unsubscribed_cycles;
        }
        let mut ctx = HandlerCtx::new(mem, core, findings);
        lifeguard.on_event(record, &mut ctx);
        self.config.dispatch_cycles + ctx.cycles()
    }

    /// Runs the lifeguard's end-of-log hook, returning its cycle cost.
    pub fn finish(
        &self,
        lifeguard: &mut dyn Lifeguard,
        mem: &mut MemSystem,
        core: usize,
        findings: &mut Vec<Finding>,
    ) -> u64 {
        let mut ctx = HandlerCtx::new(mem, core, findings);
        lifeguard.on_finish(&mut ctx);
        ctx.cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_cache::MemSystemConfig;
    use lba_record::EventKind;

    struct Probe {
        events: Vec<EventKind>,
        finished: bool,
    }

    impl Lifeguard for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn subscriptions(&self) -> EventMask {
            EventMask::of(&[EventKind::Load, EventKind::Alloc])
        }
        fn on_event(&mut self, record: &EventRecord, ctx: &mut HandlerCtx<'_>) {
            self.events.push(record.kind);
            ctx.alu(5);
        }
        fn on_finish(&mut self, ctx: &mut HandlerCtx<'_>) {
            self.finished = true;
            ctx.alu(7);
        }
    }

    #[test]
    fn subscribed_events_invoke_handler() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::default();
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let rec = EventRecord::load(0x1000, 0, Some(1), Some(2), 0x100, 4);
        let cycles = engine.deliver(&mut lg, &rec, &mut mem, 1, &mut findings);
        assert_eq!(cycles, 2 + 5);
        assert_eq!(lg.events, vec![EventKind::Load]);
    }

    #[test]
    fn unsubscribed_events_cost_one_cycle() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::default();
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let rec = EventRecord::alu(0x1000, 0, Some(1), Some(2), Some(3));
        let cycles = engine.deliver(&mut lg, &rec, &mut mem, 1, &mut findings);
        assert_eq!(cycles, 1);
        assert!(lg.events.is_empty(), "handler must not run");
    }

    #[test]
    fn finish_runs_end_hook() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::default();
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let cycles = engine.finish(&mut lg, &mut mem, 1, &mut findings);
        assert!(lg.finished);
        assert_eq!(cycles, 7);
    }

    #[test]
    fn custom_config_respected() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let engine = DispatchEngine::new(DispatchConfig {
            dispatch_cycles: 10,
            unsubscribed_cycles: 3,
        });
        let mut lg = Probe {
            events: Vec::new(),
            finished: false,
        };
        let rec = EventRecord::load(0x1000, 0, None, None, 0, 4);
        assert_eq!(
            engine.deliver(&mut lg, &rec, &mut mem, 1, &mut findings),
            15
        );
        let rec = EventRecord::alu(0x1000, 0, None, None, None);
        assert_eq!(engine.deliver(&mut lg, &rec, &mut mem, 1, &mut findings), 3);
    }
}
