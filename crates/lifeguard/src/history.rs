//! Execution-history indexing: the paper's "how did I get here" analysis.
//!
//! §1: "A key advantage of a log-based approach is that the log captures
//! the dynamic history of a monitored program. Thus it enables lifeguards
//! to use this history to detect sophisticated bugs or answer *'how did I
//! get here'* analysis questions…"
//!
//! [`HistoryIndex`] is that capability as a composable consumer: feed it
//! the record stream (alongside any lifeguard) and it answers, after the
//! fact,
//!
//! * **who last wrote** a given address (the last `K` writer records), and
//! * **how control got here** — the last `K` control transfers of a
//!   thread, a dynamic path fragment ending at the current instruction.

use std::collections::{HashMap, VecDeque};

use lba_record::{EventKind, EventRecord};

/// A remembered write to an address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEvent {
    /// Program counter of the store (or `recv`).
    pub pc: u64,
    /// Thread that performed it.
    pub tid: u8,
    /// First byte written.
    pub addr: u64,
    /// Bytes written.
    pub len: u32,
    /// Position of the record in the log (0-based).
    pub seq: u64,
}

/// A remembered control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlEvent {
    /// The transfer instruction's program counter.
    pub pc: u64,
    /// Its kind (branch, jump, indirect jump, call, return).
    pub kind: EventKind,
    /// The target (0 for a not-taken branch).
    pub target: u64,
    /// Position of the record in the log.
    pub seq: u64,
}

/// Bounded execution-history index over the event log.
///
/// Memory use is `O(addresses-written × depth + threads × depth)`; the
/// depth bounds how far back each question can be answered, mirroring the
/// paper's observation that rewind support needs only bounded extra state.
///
/// # Examples
///
/// ```
/// use lba_lifeguard::history::HistoryIndex;
/// use lba_record::EventRecord;
///
/// let mut history = HistoryIndex::new(4);
/// history.observe(&EventRecord::store(0x1000, 0, Some(1), Some(2), 0x4000_0000, 8));
/// history.observe(&EventRecord::store(0x2000, 0, Some(1), Some(2), 0x4000_0000, 8));
/// let writers = history.last_writers(0x4000_0004);
/// assert_eq!(writers.len(), 2);
/// assert_eq!(writers[0].pc, 0x2000, "most recent first");
/// ```
#[derive(Debug, Clone)]
pub struct HistoryIndex {
    depth: usize,
    seq: u64,
    /// Last writers per 8-byte granule, most recent at the back.
    writers: HashMap<u64, VecDeque<WriteEvent>>,
    /// Recent control transfers per thread.
    control: HashMap<u8, VecDeque<ControlEvent>>,
}

/// Write-history granule size in bytes.
const GRANULE: u64 = 8;

impl HistoryIndex {
    /// Creates an index remembering the last `depth` events per question.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "history depth must be non-zero");
        HistoryIndex {
            depth,
            seq: 0,
            writers: HashMap::new(),
            control: HashMap::new(),
        }
    }

    /// Number of records observed.
    #[must_use]
    pub fn records_seen(&self) -> u64 {
        self.seq
    }

    /// Feeds one log record into the index.
    pub fn observe(&mut self, rec: &EventRecord) {
        let seq = self.seq;
        self.seq += 1;
        match rec.kind {
            EventKind::Store | EventKind::Recv => {
                let write = WriteEvent {
                    pc: rec.pc,
                    tid: rec.tid,
                    addr: rec.addr,
                    len: rec.size.max(1),
                    seq,
                };
                let first = rec.addr / GRANULE;
                let last = (rec.addr + u64::from(write.len) - 1) / GRANULE;
                for granule in first..=last {
                    let ring = self.writers.entry(granule).or_default();
                    if ring.len() == self.depth {
                        ring.pop_front();
                    }
                    ring.push_back(write);
                }
            }
            EventKind::Branch
            | EventKind::Jump
            | EventKind::IndirectJump
            | EventKind::Call
            | EventKind::Return => {
                let event = ControlEvent {
                    pc: rec.pc,
                    kind: rec.kind,
                    // A not-taken branch (size 0) stays on the fall-through
                    // path; record target 0 to make that visible.
                    target: if rec.kind == EventKind::Branch && rec.size == 0 {
                        0
                    } else {
                        rec.addr
                    },
                    seq,
                };
                let ring = self.control.entry(rec.tid).or_default();
                if ring.len() == self.depth {
                    ring.pop_front();
                }
                ring.push_back(event);
            }
            _ => {}
        }
    }

    /// The most recent writers of the granule containing `addr`, newest
    /// first (up to the configured depth).
    #[must_use]
    pub fn last_writers(&self, addr: u64) -> Vec<WriteEvent> {
        self.writers
            .get(&(addr / GRANULE))
            .map(|ring| ring.iter().rev().copied().collect())
            .unwrap_or_default()
    }

    /// The most recent control transfers of `tid`, newest first — the
    /// dynamic path fragment answering "how did I get here".
    #[must_use]
    pub fn path_to_here(&self, tid: u8) -> Vec<ControlEvent> {
        self.control
            .get(&tid)
            .map(|ring| ring.iter().rev().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(pc: u64, addr: u64, len: u32) -> EventRecord {
        EventRecord::store(pc, 0, Some(1), Some(2), addr, len)
    }

    #[test]
    fn last_writers_newest_first_and_bounded() {
        let mut h = HistoryIndex::new(2);
        h.observe(&store(0x1000, 0x100, 8));
        h.observe(&store(0x1008, 0x100, 8));
        h.observe(&store(0x1010, 0x100, 8));
        let writers = h.last_writers(0x100);
        assert_eq!(writers.len(), 2, "depth bounds the ring");
        assert_eq!(writers[0].pc, 0x1010);
        assert_eq!(writers[1].pc, 0x1008);
    }

    #[test]
    fn wide_writes_index_every_granule() {
        let mut h = HistoryIndex::new(4);
        h.observe(&store(0x1000, 0x100, 16)); // granules 0x20 and 0x21
        assert_eq!(h.last_writers(0x104).len(), 1);
        assert_eq!(h.last_writers(0x10c).len(), 1);
        assert!(h.last_writers(0x110).is_empty());
    }

    #[test]
    fn recv_counts_as_a_writer() {
        let mut h = HistoryIndex::new(4);
        h.observe(&EventRecord {
            pc: 0x1000,
            kind: EventKind::Recv,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 0x200,
            size: 8,
        });
        let writers = h.last_writers(0x200);
        assert_eq!(writers.len(), 1);
    }

    #[test]
    fn path_to_here_tracks_control_per_thread() {
        let mut h = HistoryIndex::new(8);
        let jump = |pc: u64, tid: u8, target: u64| EventRecord {
            pc,
            kind: EventKind::Jump,
            tid,
            in1: None,
            in2: None,
            out: None,
            addr: target,
            size: 0,
        };
        h.observe(&jump(0x1000, 0, 0x2000));
        h.observe(&jump(0x3000, 1, 0x4000));
        h.observe(&jump(0x2000, 0, 0x5000));
        let path = h.path_to_here(0);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].pc, 0x2000);
        assert_eq!(path[0].target, 0x5000);
        assert_eq!(h.path_to_here(1).len(), 1);
        assert!(h.path_to_here(2).is_empty());
    }

    #[test]
    fn not_taken_branches_record_zero_target() {
        let mut h = HistoryIndex::new(4);
        h.observe(&EventRecord {
            pc: 0x1000,
            kind: EventKind::Branch,
            tid: 0,
            in1: Some(1),
            in2: Some(2),
            out: None,
            addr: 0x9000,
            size: 0, // not taken
        });
        assert_eq!(h.path_to_here(0)[0].target, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_depth_rejected() {
        let _ = HistoryIndex::new(0);
    }
}
