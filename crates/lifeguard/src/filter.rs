//! Address-range event filtering (§3 future work, implemented).
//!
//! The paper closes by naming "filtering techniques (e.g., address-range
//! based filtering)" as a planned optimisation: when a lifeguard only cares
//! about certain address ranges (AddrCheck cares about the heap), the
//! capture hardware can drop memory events outside those ranges *before*
//! they enter the log, saving compression bandwidth, buffer space and — most
//! importantly — lifeguard-core handler time.

use lba_record::{EventKind, EventRecord};

/// A capture-side filter that drops load/store events whose effective
/// address falls outside every watched range. Non-memory events always
/// pass (allocation, locking and control events carry semantic state the
/// lifeguard cannot miss).
///
/// # Examples
///
/// ```
/// use lba_lifeguard::AddrRangeFilter;
/// use lba_record::EventRecord;
///
/// let filter = AddrRangeFilter::new(vec![(0x4000_0000, 0x5000_0000)]);
/// let heap = EventRecord::load(0x1000, 0, None, None, 0x4000_0010, 4);
/// let stack = EventRecord::load(0x1000, 0, None, None, 0x7fff_0000, 4);
/// assert!(filter.passes(&heap));
/// assert!(!filter.passes(&stack));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrRangeFilter {
    /// Half-open `[start, end)` ranges, kept sorted by start.
    ranges: Vec<(u64, u64)>,
}

impl AddrRangeFilter {
    /// Creates a filter watching the given half-open `[start, end)` ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range is empty or inverted.
    #[must_use]
    pub fn new(mut ranges: Vec<(u64, u64)>) -> Self {
        for &(start, end) in &ranges {
            assert!(
                start < end,
                "filter range {start:#x}..{end:#x} is empty or inverted"
            );
        }
        ranges.sort_unstable();
        AddrRangeFilter { ranges }
    }

    /// The watched ranges, sorted by start address.
    #[must_use]
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Whether `addr` falls inside a watched range.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        // Binary search over sorted disjoint-ish ranges; linear fallback is
        // fine for the handful of ranges lifeguards use.
        self.ranges
            .iter()
            .any(|&(start, end)| (start..end).contains(&addr))
    }

    /// Whether `record` should enter the log.
    #[must_use]
    pub fn passes(&self, record: &EventRecord) -> bool {
        match record.kind {
            EventKind::Load | EventKind::Store => self.contains(record.addr),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_events_filtered_by_address() {
        let f = AddrRangeFilter::new(vec![(100, 200), (300, 400)]);
        assert!(f.contains(100));
        assert!(f.contains(199));
        assert!(!f.contains(200));
        assert!(f.contains(350));
        assert!(!f.contains(250));
        let inside = EventRecord::store(0, 0, None, None, 150, 4);
        let outside = EventRecord::store(0, 0, None, None, 250, 4);
        assert!(f.passes(&inside));
        assert!(!f.passes(&outside));
    }

    #[test]
    fn non_memory_events_always_pass() {
        let f = AddrRangeFilter::new(vec![(100, 200)]);
        let alloc = EventRecord {
            pc: 0,
            kind: EventKind::Alloc,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 999, // outside the range — still passes
            size: 64,
        };
        assert!(f.passes(&alloc));
        assert!(f.passes(&EventRecord::alu(0, 0, None, None, None)));
    }

    #[test]
    fn ranges_are_sorted() {
        let f = AddrRangeFilter::new(vec![(300, 400), (100, 200)]);
        assert_eq!(f.ranges(), &[(100, 200), (300, 400)]);
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn inverted_range_rejected() {
        let _ = AddrRangeFilter::new(vec![(200, 100)]);
    }
}
