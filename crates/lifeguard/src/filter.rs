//! Address-range event filtering (§3 future work, implemented).
//!
//! The paper closes by naming "filtering techniques (e.g., address-range
//! based filtering)" as a planned optimisation: when a lifeguard only cares
//! about certain address ranges (AddrCheck cares about the heap), the
//! capture hardware can drop memory events outside those ranges *before*
//! they enter the log, saving compression bandwidth, buffer space and — most
//! importantly — lifeguard-core handler time.

use lba_record::{EventKind, EventRecord};

/// A capture-side filter that drops load/store events whose effective
/// address falls outside every watched range. Non-memory events always
/// pass (allocation, locking and control events carry semantic state the
/// lifeguard cannot miss).
///
/// # Examples
///
/// ```
/// use lba_lifeguard::AddrRangeFilter;
/// use lba_record::EventRecord;
///
/// let filter = AddrRangeFilter::new(vec![(0x4000_0000, 0x5000_0000)]);
/// let heap = EventRecord::load(0x1000, 0, None, None, 0x4000_0010, 4);
/// let stack = EventRecord::load(0x1000, 0, None, None, 0x7fff_0000, 4);
/// assert!(filter.passes(&heap));
/// assert!(!filter.passes(&stack));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrRangeFilter {
    /// Half-open `[start, end)` ranges, sorted by start with overlapping
    /// and adjacent input ranges coalesced, so they are pairwise disjoint
    /// and binary search is sound.
    ranges: Vec<(u64, u64)>,
}

impl AddrRangeFilter {
    /// Creates a filter watching the given half-open `[start, end)` ranges.
    /// Overlapping or adjacent ranges are merged.
    ///
    /// # Panics
    ///
    /// Panics if any range is empty or inverted.
    #[must_use]
    pub fn new(mut ranges: Vec<(u64, u64)>) -> Self {
        for &(start, end) in &ranges {
            assert!(
                start < end,
                "filter range {start:#x}..{end:#x} is empty or inverted"
            );
        }
        ranges.sort_unstable();
        // Coalesce, so `contains` only ever needs the predecessor range.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (start, end) in ranges {
            match merged.last_mut() {
                Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
                _ => merged.push((start, end)),
            }
        }
        AddrRangeFilter { ranges: merged }
    }

    /// The watched ranges: sorted by start, pairwise disjoint.
    #[must_use]
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Whether `addr` falls inside a watched range — a binary search for
    /// the last range starting at or before `addr`, then one end check
    /// (sound because construction coalesced the ranges).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let i = self.ranges.partition_point(|&(start, _)| start <= addr);
        i > 0 && addr < self.ranges[i - 1].1
    }

    /// Whether `record` should enter the log.
    #[must_use]
    pub fn passes(&self, record: &EventRecord) -> bool {
        match record.kind {
            EventKind::Load | EventKind::Store => self.contains(record.addr),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_events_filtered_by_address() {
        let f = AddrRangeFilter::new(vec![(100, 200), (300, 400)]);
        assert!(f.contains(100));
        assert!(f.contains(199));
        assert!(!f.contains(200));
        assert!(f.contains(350));
        assert!(!f.contains(250));
        let inside = EventRecord::store(0, 0, None, None, 150, 4);
        let outside = EventRecord::store(0, 0, None, None, 250, 4);
        assert!(f.passes(&inside));
        assert!(!f.passes(&outside));
    }

    #[test]
    fn non_memory_events_always_pass() {
        let f = AddrRangeFilter::new(vec![(100, 200)]);
        let alloc = EventRecord {
            pc: 0,
            kind: EventKind::Alloc,
            tid: 0,
            in1: None,
            in2: None,
            out: None,
            addr: 999, // outside the range — still passes
            size: 64,
        };
        assert!(f.passes(&alloc));
        assert!(f.passes(&EventRecord::alu(0, 0, None, None, None)));
    }

    #[test]
    fn ranges_are_sorted() {
        let f = AddrRangeFilter::new(vec![(300, 400), (100, 200)]);
        assert_eq!(f.ranges(), &[(100, 200), (300, 400)]);
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn inverted_range_rejected() {
        let _ = AddrRangeFilter::new(vec![(200, 100)]);
    }

    #[test]
    fn overlapping_ranges_are_coalesced() {
        // Regression for the binary-search rewrite: an address covered by
        // an earlier, longer range must still match after its immediate
        // predecessor range ends.
        let f = AddrRangeFilter::new(vec![(0, 1000), (500, 600), (990, 1200), (2000, 2001)]);
        assert_eq!(f.ranges(), &[(0, 1200), (2000, 2001)]);
        assert!(f.contains(700), "covered only by the first input range");
        assert!(f.contains(1100));
        assert!(!f.contains(1200));
        assert!(f.contains(2000));
        assert!(!f.contains(1999));
    }

    #[test]
    fn binary_search_agrees_with_linear_scan_on_many_ranges() {
        let ranges: Vec<(u64, u64)> = (0..64).map(|i| (i * 100, i * 100 + 50)).collect();
        let f = AddrRangeFilter::new(ranges.clone());
        for addr in 0..6500u64 {
            let linear = ranges
                .iter()
                .any(|&(start, end)| (start..end).contains(&addr));
            assert_eq!(f.contains(addr), linear, "addr {addr}");
        }
    }
}
