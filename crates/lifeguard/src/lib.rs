//! The lifeguard framework: dispatch engine, shadow state and findings.
//!
//! A *lifeguard* (the paper's term) is a monitoring program organised as a
//! collection of event handlers. On LBA hardware each handler ends with an
//! `nlba` (next-LBA-record) instruction; the dispatch engine fetches the
//! next record from the decompression engine, looks the handler up in a
//! jump table and pre-loads event values into registers.
//!
//! This crate models that machinery:
//!
//! * [`Lifeguard`] — the handler-collection trait implemented by
//!   AddrCheck, TaintCheck and LockSet (crate `lba-lifeguards`);
//! * [`DispatchEngine`] — charges the `nlba`/jump-table cost and invokes
//!   the handler; unsubscribed events fall through to a one-cycle no-op
//!   handler, modelling the hardware event filter;
//! * [`HandlerCtx`] — the cost meter handlers tick as they work: plain
//!   ALU work plus shadow-memory reads/writes that go through the lifeguard
//!   core's own L1 and the shared L2 ([`lba_cache::MemSystem`]);
//! * [`ShadowMemory`]/[`ShadowRegs`] — the functional shadow state;
//! * [`Finding`] — a detected problem (the lifeguard's output);
//! * [`AddrRangeFilter`] — the paper's proposed address-range filtering
//!   (§3 "we are working on … filtering techniques");
//! * [`CaptureFilter`]/[`IdempotencyClass`] — capture-side idempotent
//!   duplicate suppression under each lifeguard's declared soundness
//!   contract ([`Lifeguard::idempotency`]), composed with the range
//!   filter into one capture pass.
//!
//! # Examples
//!
//! A minimal lifeguard that counts stores:
//!
//! ```
//! use lba_cache::{MemSystem, MemSystemConfig};
//! use lba_lifeguard::{DispatchEngine, Finding, HandlerCtx, Lifeguard};
//! use lba_record::{EventKind, EventMask, EventRecord};
//!
//! struct StoreCounter {
//!     stores: u64,
//! }
//!
//! impl Lifeguard for StoreCounter {
//!     fn name(&self) -> &'static str {
//!         "store-counter"
//!     }
//!     fn subscriptions(&self) -> EventMask {
//!         EventMask::of(&[EventKind::Store])
//!     }
//!     fn on_event(&mut self, record: &EventRecord, ctx: &mut HandlerCtx<'_>) {
//!         self.stores += 1;
//!         ctx.alu(1);
//!     }
//! }
//!
//! let mut mem = MemSystem::new(MemSystemConfig::dual_core());
//! let mut findings = Vec::new();
//! let engine = DispatchEngine::default();
//! let mut lifeguard = StoreCounter { stores: 0 };
//! let rec = EventRecord::store(0x1000, 0, Some(1), Some(2), 0x4000_0000, 8);
//! let cycles = engine.deliver(&mut lifeguard, &rec, &mut mem, 1, &mut findings);
//! assert!(cycles >= 3, "dispatch + handler work");
//! assert_eq!(lifeguard.stores, 1);
//! ```

mod cost;
mod degradation;
mod dispatch;
mod epoch;
mod filter;
mod finding;
pub mod history;
mod idempotency;
mod shadow;

pub use cost::HandlerCtx;
pub use degradation::{
    AlwaysSettled, DegradationPolicy, DegradationRequest, DegradationStats, DegradedInterval,
    RegionClassifier, RegionSampler, SamplingSpec, MAX_RECORDED_INTERVALS,
};
pub use dispatch::{DispatchConfig, DispatchEngine, Lifeguard};
pub use epoch::{EpochLifeguard, EpochSummarizer, EpochSummary};
pub use filter::AddrRangeFilter;
pub use finding::{Finding, FindingKind};
pub use idempotency::{
    CaptureFilter, CaptureStats, IdempotencyClass, WindowSpec, MAX_WINDOW_ENTRIES,
};
pub use shadow::{ShadowMemory, ShadowRegs};
