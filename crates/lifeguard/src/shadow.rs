//! Functional shadow state: shadow memory and shadow registers.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_CELLS: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_CELLS as u64) - 1;

/// Sparse per-address shadow state of cell type `T`.
///
/// One cell shadows one *granule* of application memory; the granule size
/// is the lifeguard's choice (AddrCheck and TaintCheck shadow bytes,
/// LockSet shadows 4-byte words) — callers index by granule number.
/// Untouched cells read as `T::default()`.
///
/// This is the functional half of shadow state; the *cost* of shadow
/// accesses is charged separately through
/// [`HandlerCtx`](crate::HandlerCtx), mirroring how the paper separates
/// lifeguard correctness from lifeguard performance.
///
/// # Examples
///
/// ```
/// use lba_lifeguard::ShadowMemory;
///
/// let mut shadow: ShadowMemory<u8> = ShadowMemory::new();
/// assert_eq!(shadow.get(0x4000_0000), 0);
/// shadow.set(0x4000_0000, 1);
/// assert_eq!(shadow.get(0x4000_0000), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShadowMemory<T> {
    pages: HashMap<u64, Vec<T>>,
}

impl<T: Copy + Default + PartialEq> ShadowMemory<T> {
    /// Creates an empty shadow memory.
    #[must_use]
    pub fn new() -> Self {
        ShadowMemory {
            pages: HashMap::new(),
        }
    }

    /// The shadow cell for granule `index`.
    #[must_use]
    pub fn get(&self, index: u64) -> T {
        match self.pages.get(&(index >> PAGE_SHIFT)) {
            Some(page) => page[(index & PAGE_MASK) as usize],
            None => T::default(),
        }
    }

    /// Sets the shadow cell for granule `index`.
    pub fn set(&mut self, index: u64, value: T) {
        let page = self
            .pages
            .entry(index >> PAGE_SHIFT)
            .or_insert_with(|| vec![T::default(); PAGE_CELLS]);
        page[(index & PAGE_MASK) as usize] = value;
    }

    /// Sets `len` consecutive cells starting at `start`.
    pub fn set_range(&mut self, start: u64, len: u64, value: T) {
        for i in 0..len {
            self.set(start + i, value);
        }
    }

    /// Whether all `len` cells starting at `start` equal `value`.
    #[must_use]
    pub fn range_is(&self, start: u64, len: u64, value: T) -> bool {
        (0..len).all(|i| self.get(start + i) == value)
    }

    /// Number of resident shadow pages (memory-footprint introspection).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

impl<T: Copy + Default + PartialEq> Default for ShadowMemory<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread shadow register file of cell type `T`.
///
/// # Examples
///
/// ```
/// use lba_lifeguard::ShadowRegs;
///
/// let mut regs: ShadowRegs<bool> = ShadowRegs::new();
/// regs.set(0, 3, true);
/// assert!(regs.get(0, 3));
/// assert!(!regs.get(1, 3), "threads have independent shadow registers");
/// ```
#[derive(Debug, Clone)]
pub struct ShadowRegs<T> {
    threads: Vec<[T; 16]>,
}

impl<T: Copy + Default> ShadowRegs<T> {
    /// Creates an empty shadow register file.
    #[must_use]
    pub fn new() -> Self {
        ShadowRegs {
            threads: Vec::new(),
        }
    }

    fn ensure(&mut self, tid: u8) {
        let idx = tid as usize;
        if self.threads.len() <= idx {
            self.threads.resize_with(idx + 1, || [T::default(); 16]);
        }
    }

    /// The shadow value of register `reg` of thread `tid`.
    #[must_use]
    pub fn get(&self, tid: u8, reg: u8) -> T {
        self.threads
            .get(tid as usize)
            .map_or_else(T::default, |regs| regs[(reg & 0xf) as usize])
    }

    /// Sets the shadow value of register `reg` of thread `tid`.
    pub fn set(&mut self, tid: u8, reg: u8, value: T) {
        self.ensure(tid);
        self.threads[tid as usize][(reg & 0xf) as usize] = value;
    }
}

impl<T: Copy + Default> Default for ShadowRegs<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cells_read_default() {
        let s: ShadowMemory<u32> = ShadowMemory::new();
        assert_eq!(s.get(12345), 0);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        s.set(7, 3);
        s.set(1 << 20, 9);
        assert_eq!(s.get(7), 3);
        assert_eq!(s.get(1 << 20), 9);
        assert_eq!(s.get(8), 0);
    }

    #[test]
    fn range_operations() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        s.set_range(100, 50, 1);
        assert!(s.range_is(100, 50, 1));
        assert!(!s.range_is(99, 2, 1));
        assert!(!s.range_is(149, 2, 1));
    }

    #[test]
    fn range_spans_pages() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        let start = (PAGE_CELLS as u64) - 5;
        s.set_range(start, 10, 2);
        assert!(s.range_is(start, 10, 2));
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn shadow_regs_per_thread() {
        let mut r: ShadowRegs<u8> = ShadowRegs::new();
        r.set(0, 1, 10);
        r.set(3, 1, 30);
        assert_eq!(r.get(0, 1), 10);
        assert_eq!(r.get(3, 1), 30);
        assert_eq!(r.get(1, 1), 0);
        assert_eq!(r.get(200, 5), 0, "unseen thread reads default");
    }
}
