//! Functional shadow state: shadow memory and shadow registers.

use lba_mem::PageDirectory;

const PAGE_SHIFT: u32 = 12;
const PAGE_CELLS: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_CELLS as u64) - 1;

/// Sparse per-address shadow state of cell type `T`, organised as a
/// two-level direct-mapped page table.
///
/// One cell shadows one *granule* of application memory; the granule size
/// is the lifeguard's choice (AddrCheck and TaintCheck shadow bytes,
/// LockSet shadows 4-byte words) — callers index by granule number.
/// Untouched cells read as `T::default()`.
///
/// Level 1 is a [`PageDirectory`] (direct-mapped, tag-checked slots with
/// a one-entry last-page cache — a software metadata-TLB); level 2 is a
/// flat 4096-cell page in an arena. The common case — consecutive
/// accesses landing in one shadow page — costs one compare and one
/// indexed load, no hashing anywhere.
///
/// Range operations work page-at-a-time: [`set_range`](Self::set_range)
/// fills each covered page with `slice::fill`, and
/// [`range_is`](Self::range_is) compares whole resident pages (an absent
/// page trivially matches `T::default()`). Writing `T::default()` over an
/// absent page does not allocate it.
///
/// This is the functional half of shadow state; the *cost* of shadow
/// accesses is charged separately through
/// [`HandlerCtx`](crate::HandlerCtx), mirroring how the paper separates
/// lifeguard correctness from lifeguard performance.
///
/// # Examples
///
/// ```
/// use lba_lifeguard::ShadowMemory;
///
/// let mut shadow: ShadowMemory<u8> = ShadowMemory::new();
/// assert_eq!(shadow.get(0x4000_0000), 0);
/// shadow.set(0x4000_0000, 1);
/// assert_eq!(shadow.get(0x4000_0000), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShadowMemory<T> {
    dir: PageDirectory,
    /// Page arena; directory entries index into it and never move.
    pages: Vec<Box<[T]>>,
    /// Page number of each arena slot (for [`pages`](Self::pages)).
    numbers: Vec<u64>,
    /// Non-default cell count per arena slot — the
    /// [`range_any_nonzero`](Self::range_any_nonzero) fast path answers
    /// full-page chunks from this counter without touching the page.
    nonzero: Vec<u32>,
}

impl<T: Copy + Default + PartialEq> ShadowMemory<T> {
    /// Creates an empty shadow memory.
    #[must_use]
    pub fn new() -> Self {
        ShadowMemory {
            dir: PageDirectory::new(),
            pages: Vec::new(),
            numbers: Vec::new(),
            nonzero: Vec::new(),
        }
    }

    /// The resident page holding `index`.
    #[inline]
    fn page_of(&self, index: u64) -> Option<&[T]> {
        let idx = self.dir.get(index >> PAGE_SHIFT)?;
        Some(&self.pages[idx as usize])
    }

    /// The arena slot of the page holding `index`, created when absent.
    fn slot_of_mut(&mut self, index: u64) -> usize {
        let idx = match self.dir.get(index >> PAGE_SHIFT) {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.pages.len()).expect("fewer than 2^32 shadow pages");
                self.pages
                    .push(vec![T::default(); PAGE_CELLS].into_boxed_slice());
                self.numbers.push(index >> PAGE_SHIFT);
                self.nonzero.push(0);
                self.dir.insert(index >> PAGE_SHIFT, idx);
                idx
            }
        };
        idx as usize
    }

    /// The shadow cell for granule `index`.
    #[must_use]
    #[inline]
    pub fn get(&self, index: u64) -> T {
        match self.page_of(index) {
            Some(page) => page[(index & PAGE_MASK) as usize],
            None => T::default(),
        }
    }

    /// Sets the shadow cell for granule `index`.
    #[inline]
    pub fn set(&mut self, index: u64, value: T) {
        let slot = self.slot_of_mut(index);
        let cell = &mut self.pages[slot][(index & PAGE_MASK) as usize];
        let was = *cell != T::default();
        let is = value != T::default();
        *cell = value;
        self.nonzero[slot] = self.nonzero[slot] - u32::from(was) + u32::from(is);
    }

    /// Sets `len` consecutive cells starting at `start`, page-at-a-time
    /// (`slice::fill` per covered page). Writing `T::default()` skips
    /// pages that are not resident — they already read as default.
    ///
    /// Indices wrap around the granule space, matching per-cell `set`
    /// semantics under wrapping arithmetic.
    pub fn set_range(&mut self, start: u64, len: u64, value: T) {
        let is_default = value == T::default();
        let mut index = start;
        let mut remaining = len;
        while remaining > 0 {
            let offset = (index & PAGE_MASK) as usize;
            let chunk = ((PAGE_CELLS - offset) as u64).min(remaining);
            let slot = if is_default {
                // Only touch pages that exist; absent pages stay absent.
                self.dir.get(index >> PAGE_SHIFT).map(|idx| idx as usize)
            } else {
                Some(self.slot_of_mut(index))
            };
            if let Some(slot) = slot {
                let cells = &mut self.pages[slot][offset..offset + chunk as usize];
                let was = cells.iter().filter(|cell| **cell != T::default()).count() as u32;
                cells.fill(value);
                let now = if is_default { 0 } else { chunk as u32 };
                self.nonzero[slot] = self.nonzero[slot] - was + now;
            }
            index = index.wrapping_add(chunk);
            remaining -= chunk;
        }
    }

    /// Whether all `len` cells starting at `start` equal `value`,
    /// page-at-a-time: an absent page matches exactly when `value` is
    /// `T::default()`; a resident page is compared as a slice.
    #[must_use]
    pub fn range_is(&self, start: u64, len: u64, value: T) -> bool {
        let is_default = value == T::default();
        let mut index = start;
        let mut remaining = len;
        while remaining > 0 {
            let offset = (index & PAGE_MASK) as usize;
            let chunk = ((PAGE_CELLS - offset) as u64).min(remaining);
            match self.page_of(index) {
                Some(page) => {
                    if !page[offset..offset + chunk as usize]
                        .iter()
                        .all(|cell| *cell == value)
                    {
                        return false;
                    }
                }
                None => {
                    if !is_default {
                        return false;
                    }
                }
            }
            index = index.wrapping_add(chunk);
            remaining -= chunk;
        }
        true
    }

    /// Whether any of the `len` cells starting at `start` differs from
    /// `T::default()` — the hot "any byte tainted?" probe, answered from
    /// the per-page non-default counters instead of a byte scan: an
    /// absent page or a zero-count page is skipped outright, a fully
    /// covered page with a non-zero count answers `true` without touching
    /// its cells, and only partially covered pages are actually scanned.
    /// Equivalent to `!range_is(start, len, T::default())`, which stays
    /// as the slice-compare baseline (see the transport bench's
    /// `shadow_range` group for the contrast).
    #[must_use]
    pub fn range_any_nonzero(&self, start: u64, len: u64) -> bool {
        let mut index = start;
        let mut remaining = len;
        while remaining > 0 {
            let offset = (index & PAGE_MASK) as usize;
            let chunk = ((PAGE_CELLS - offset) as u64).min(remaining);
            if let Some(idx) = self.dir.get(index >> PAGE_SHIFT) {
                let count = self.nonzero[idx as usize];
                if count > 0 {
                    if chunk == PAGE_CELLS as u64 {
                        return true;
                    }
                    if self.pages[idx as usize][offset..offset + chunk as usize]
                        .iter()
                        .any(|cell| *cell != T::default())
                    {
                        return true;
                    }
                }
            }
            index = index.wrapping_add(chunk);
            remaining -= chunk;
        }
        false
    }

    /// Iterates the resident pages as `(first granule index, cells)`
    /// pairs, in allocation order (deterministic for a deterministic
    /// write sequence). The epoch-parallel stitch walks a summary's
    /// touched shadow ranges through this.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[T])> + '_ {
        self.numbers
            .iter()
            .zip(self.pages.iter())
            .map(|(number, page)| (number << PAGE_SHIFT, &page[..]))
    }

    /// Number of resident shadow pages (memory-footprint introspection).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

impl<T: Copy + Default + PartialEq> Default for ShadowMemory<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread shadow register file of cell type `T`.
///
/// # Examples
///
/// ```
/// use lba_lifeguard::ShadowRegs;
///
/// let mut regs: ShadowRegs<bool> = ShadowRegs::new();
/// regs.set(0, 3, true);
/// assert!(regs.get(0, 3));
/// assert!(!regs.get(1, 3), "threads have independent shadow registers");
/// ```
#[derive(Debug, Clone)]
pub struct ShadowRegs<T> {
    threads: Vec<[T; 16]>,
}

impl<T: Copy + Default> ShadowRegs<T> {
    /// Creates an empty shadow register file.
    #[must_use]
    pub fn new() -> Self {
        ShadowRegs {
            threads: Vec::new(),
        }
    }

    fn ensure(&mut self, tid: u8) {
        let idx = tid as usize;
        if self.threads.len() <= idx {
            self.threads.resize_with(idx + 1, || [T::default(); 16]);
        }
    }

    /// The shadow value of register `reg` of thread `tid`.
    #[must_use]
    pub fn get(&self, tid: u8, reg: u8) -> T {
        self.threads
            .get(tid as usize)
            .map_or_else(T::default, |regs| regs[(reg & 0xf) as usize])
    }

    /// Sets the shadow value of register `reg` of thread `tid`.
    pub fn set(&mut self, tid: u8, reg: u8, value: T) {
        self.ensure(tid);
        self.threads[tid as usize][(reg & 0xf) as usize] = value;
    }
}

impl<T: Copy + Default> Default for ShadowRegs<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cells_read_default() {
        let s: ShadowMemory<u32> = ShadowMemory::new();
        assert_eq!(s.get(12345), 0);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        s.set(7, 3);
        s.set(1 << 20, 9);
        assert_eq!(s.get(7), 3);
        assert_eq!(s.get(1 << 20), 9);
        assert_eq!(s.get(8), 0);
    }

    #[test]
    fn range_operations() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        s.set_range(100, 50, 1);
        assert!(s.range_is(100, 50, 1));
        assert!(!s.range_is(99, 2, 1));
        assert!(!s.range_is(149, 2, 1));
    }

    #[test]
    fn range_spans_pages() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        let start = (PAGE_CELLS as u64) - 5;
        s.set_range(start, 10, 2);
        assert!(s.range_is(start, 10, 2));
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn default_set_range_does_not_allocate_absent_pages() {
        // Satellite regression: writing defaults over an absent page used
        // to allocate 4 KiB just to store zeros.
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        s.set_range(0, 10 * PAGE_CELLS as u64, 0);
        assert_eq!(s.resident_pages(), 0, "defaults over absent pages are free");
        assert!(s.range_is(0, 10 * PAGE_CELLS as u64, 0));
        // But defaults over a *resident* page must still clear it.
        s.set(5, 9);
        assert_eq!(s.resident_pages(), 1);
        s.set_range(0, 16, 0);
        assert_eq!(s.get(5), 0);
    }

    #[test]
    fn colliding_page_numbers_keep_distinct_state() {
        // Page numbers congruent modulo every power-of-two directory size
        // exercise the linear-probe fallback of the direct-mapped level.
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        let stride = 1u64 << 40; // same low bits for every directory size
        for i in 0..50u64 {
            s.set(i * stride, i as u32 + 1);
        }
        for i in 0..50u64 {
            assert_eq!(s.get(i * stride), i as u32 + 1, "page {i}");
        }
        assert_eq!(s.resident_pages(), 50);
    }

    #[test]
    fn directory_growth_preserves_all_pages() {
        // Many distinct pages force several directory doublings.
        let mut s: ShadowMemory<u16> = ShadowMemory::new();
        for i in 0..500u64 {
            s.set(i * PAGE_CELLS as u64 + (i % 7), (i + 1) as u16);
        }
        for i in 0..500u64 {
            assert_eq!(s.get(i * PAGE_CELLS as u64 + (i % 7)), (i + 1) as u16);
        }
        assert_eq!(s.resident_pages(), 500);
    }

    #[test]
    fn sparse_64bit_indices_work() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        for &index in &[0u64, u64::MAX, u64::MAX / 2, 1 << 52, (1 << 52) + 1] {
            s.set(index, 7);
            assert_eq!(s.get(index), 7, "index {index:#x}");
        }
    }

    #[test]
    fn last_page_cache_tracks_switches() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        let a = 0u64;
        let b = 10 * PAGE_CELLS as u64;
        s.set(a, 1);
        s.set(b, 2);
        // Alternate between the two pages: every access must still resolve
        // to the right one regardless of what the one-entry cache holds.
        for _ in 0..4 {
            assert_eq!(s.get(a), 1);
            assert_eq!(s.get(b), 2);
        }
    }

    #[test]
    fn range_ops_wrap_instead_of_overflowing() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        let start = u64::MAX - 2;
        s.set_range(start, 6, 3); // wraps into page 0
        assert_eq!(s.get(u64::MAX), 3);
        assert_eq!(s.get(0), 3);
        assert_eq!(s.get(2), 3);
        assert_eq!(s.get(3), 0);
        assert!(s.range_is(start, 6, 3));
    }

    #[test]
    fn range_is_rejects_partial_matches_across_pages() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        let start = PAGE_CELLS as u64 - 2;
        s.set_range(start, 4, 1);
        s.set(start + 1, 2); // poke a hole mid-range, first page
        assert!(!s.range_is(start, 4, 1));
        s.set(start + 1, 1);
        assert!(s.range_is(start, 4, 1));
        s.set(start + 3, 2); // hole in the second page
        assert!(!s.range_is(start, 4, 1));
    }

    #[test]
    fn range_any_nonzero_matches_range_is() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        assert!(!s.range_any_nonzero(0, 100 * PAGE_CELLS as u64));
        s.set(3 * PAGE_CELLS as u64 + 7, 1);
        // Probe windows around the single non-default cell, spanning
        // absent pages, zero-count pages, and partial chunks.
        for (start, len) in [
            (0u64, 3 * PAGE_CELLS as u64),
            (0, 4 * PAGE_CELLS as u64),
            (3 * PAGE_CELLS as u64, 8),
            (3 * PAGE_CELLS as u64 + 8, 100),
            (3 * PAGE_CELLS as u64 + 6, 2),
            (0, 100 * PAGE_CELLS as u64),
        ] {
            assert_eq!(
                s.range_any_nonzero(start, len),
                !s.range_is(start, len, 0),
                "window {start}+{len}"
            );
        }
        // Clearing through set_range keeps the counter honest.
        s.set_range(3 * PAGE_CELLS as u64, PAGE_CELLS as u64, 0);
        assert!(!s.range_any_nonzero(0, 100 * PAGE_CELLS as u64));
        // A fully non-default page answers through the counter alone.
        s.set_range(PAGE_CELLS as u64, PAGE_CELLS as u64, 2);
        assert!(s.range_any_nonzero(PAGE_CELLS as u64, PAGE_CELLS as u64));
        assert!(s.range_any_nonzero(0, 2 * PAGE_CELLS as u64));
    }

    #[test]
    fn counters_survive_mixed_writes() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        s.set(10, 1);
        s.set(10, 2); // non-default over non-default: count stays 1
        s.set(11, 1);
        s.set(10, 0); // back to default: count drops
        assert!(s.range_any_nonzero(0, 16));
        s.set(11, 0);
        assert!(!s.range_any_nonzero(0, PAGE_CELLS as u64));
        s.set_range(0, 8, 3);
        s.set_range(4, 8, 3); // overlapping fill: counted once per cell
        assert!(s.range_any_nonzero(0, 12));
        s.set_range(0, 12, 0);
        assert!(!s.range_any_nonzero(0, PAGE_CELLS as u64));
    }

    #[test]
    fn pages_iterates_resident_pages_with_bases() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        s.set(5, 1);
        s.set(3 * PAGE_CELLS as u64 + 9, 2);
        let pages: Vec<(u64, Vec<u8>)> = s
            .pages()
            .map(|(base, cells)| (base, cells.to_vec()))
            .collect();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].0, 0);
        assert_eq!(pages[0].1[5], 1);
        assert_eq!(pages[1].0, 3 * PAGE_CELLS as u64);
        assert_eq!(pages[1].1[9], 2);
    }

    #[test]
    fn shadow_regs_per_thread() {
        let mut r: ShadowRegs<u8> = ShadowRegs::new();
        r.set(0, 1, 10);
        r.set(3, 1, 30);
        assert_eq!(r.get(0, 1), 10);
        assert_eq!(r.get(3, 1), 30);
        assert_eq!(r.get(1, 1), 0);
        assert_eq!(r.get(200, 5), 0, "unseen thread reads default");
    }
}
