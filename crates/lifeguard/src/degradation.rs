//! Contract-governed graceful degradation of capture under load.
//!
//! The capture side is statically configured everywhere else in the
//! pipeline; under a load spike the only remaining options are stalling
//! the application core or dropping events with no accounting. This
//! module adds the third option: *declared* degradation. Following the
//! same discipline as [`IdempotencyClass`](crate::IdempotencyClass), each
//! lifeguard publishes a [`DegradationPolicy`] naming exactly which
//! fidelity reductions it tolerates — dedup-window widening, demoting
//! long-settled address regions to 1-in-N sampled capture, dropping
//! profile-only event kinds — and the capture controller in `lba-core`
//! may apply *only* those, only while the transport's load signal is past
//! its engage threshold, and must undo them (flushing what the policy
//! says must flush) the moment load falls, a finding lands, or a syscall
//! phase-change arrives.
//!
//! A lifeguard that tolerates nothing (TaintCheck) declares
//! [`DegradationPolicy::none`] and the controller provably never touches
//! its stream: the controller is not even constructed for an all-`none`
//! policy, so the degraded and undegraded pipelines are the same code.
//!
//! Soundness of *sampling* is delegated to a per-lifeguard
//! [`RegionClassifier`]: the policy ships a constructor for a small
//! capture-side oracle that watches the record stream and answers, per
//! access, "is this verdict already settled?" — e.g. AddrCheck's
//! classifier mirrors allocation state from the `alloc`/`free` records it
//! sees, so an access to a currently-allocated granule (or outside the
//! heap) provably cannot produce a finding and may be sampled out once
//! its region has proven hot. The classifier sees every record *before*
//! any degradation decision, so its state never lags the stream it
//! filters.

use lba_record::{EventMask, EventRecord};

/// A capture-side oracle deciding, per access, whether dropping the
/// record can change any finding — the soundness half of a
/// [`SamplingSpec`]. Implementations live next to their lifeguards (the
/// policy carries a constructor), because only the lifeguard knows which
/// of its verdicts are settled by which stream prefix.
pub trait RegionClassifier: std::fmt::Debug + Send {
    /// Observes one record of the capture stream (every record, shipped
    /// or not, in stream order) to keep the oracle's state current.
    fn observe(&mut self, rec: &EventRecord);

    /// Whether the verdict for this load/store is already settled — i.e.
    /// dropping the record provably cannot add, remove or alter a
    /// finding. Called only for memory accesses.
    fn verdict_settled(&self, rec: &EventRecord) -> bool;
}

/// A classifier that settles every access — sound only for lifeguards
/// with no findings to lose (MemProfile, whose profile degrades to a
/// sampled estimate while its finding set stays trivially exact).
#[derive(Debug, Default)]
pub struct AlwaysSettled;

impl RegionClassifier for AlwaysSettled {
    fn observe(&mut self, _rec: &EventRecord) {}

    fn verdict_settled(&self, _rec: &EventRecord) -> bool {
        true
    }
}

/// Demotion of long-settled address regions to 1-in-N sampled capture.
#[derive(Debug, Clone, Copy)]
pub struct SamplingSpec {
    /// log2 of the region granule the hot-counter tracks. Must not be
    /// coarser than the granularity at which the classifier's
    /// "settled" answer holds (AddrCheck: its 16-byte allocation
    /// granule).
    pub region_granule_log2: u8,
    /// Settled accesses a region must accumulate (since the last
    /// repromotion) before it is demoted to sampled capture — the
    /// "long-clean" criterion.
    pub clean_threshold: u32,
    /// Once demoted, ship 1 record in this many; the rest are counted as
    /// sampled-out. Values below 2 disable demotion.
    pub sample_rate: u32,
    /// Event kinds whose arrival repromotes *every* region to full
    /// capture (AddrCheck: `alloc`/`free` move allocation state).
    /// Findings and syscalls always repromote, policy regardless.
    pub repromote_on: EventMask,
    /// Builds the capture-side soundness oracle (see
    /// [`RegionClassifier`]).
    pub make_classifier: fn() -> Box<dyn RegionClassifier>,
}

/// A lifeguard's declared tolerance for capture-side degradation under
/// back-pressure — its soundness contract with the
/// `CaptureController`, in the same spirit as
/// [`IdempotencyClass`](crate::IdempotencyClass).
#[derive(Debug, Clone, Copy)]
pub struct DegradationPolicy {
    /// Whether the dedup window may widen (or switch on, if the run was
    /// configured without one) while degraded. Always sound for any
    /// lifeguard that declares a window at all: a wider window only
    /// suppresses *more* duplicates under the same
    /// [`WindowSpec`](crate::WindowSpec), and re-tightening flushes it.
    pub widen_window: bool,
    /// Event kinds capture may drop outright while degraded. Must be
    /// kinds the lifeguard's verdicts never read — unsubscribed,
    /// profile-only kinds, which the dispatch engine masks to a no-op
    /// handler anyway — and must exclude anything the
    /// [`WindowSpec`](crate::WindowSpec) invalidates on, so the window's
    /// flush triggers still reach it.
    pub droppable: EventMask,
    /// Region demotion to sampled capture, with its soundness oracle.
    /// `None` means the lifeguard tolerates no sampling (LockSet: a
    /// sampled-out access could be a fresh word's first touch, whose
    /// Virgin → Exclusive initialisation later race checks depend on).
    pub sampling: Option<SamplingSpec>,
    /// Whether this policy promises that degraded-run findings are
    /// identical to undegraded-run findings. Every shipped policy
    /// promises it (MemProfile has no findings; its *profile* is what
    /// degrades); the flag exists so the test grid knows which
    /// lifeguards to hold to byte-identical findings.
    pub findings_sound: bool,
}

impl DegradationPolicy {
    /// The policy that tolerates nothing: the controller is never
    /// constructed, and the stream is provably untouched (TaintCheck).
    #[must_use]
    pub fn none() -> Self {
        DegradationPolicy {
            widen_window: false,
            droppable: EventMask::EMPTY,
            sampling: None,
            findings_sound: true,
        }
    }

    /// Whether this policy permits no degradation at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        !self.widen_window && self.droppable.is_empty() && self.sampling.is_none()
    }
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy::none()
    }
}

/// A lifeguard-initiated capture-fidelity request, surfaced through the
/// dispatch engine back to the capture controller.
///
/// The controller's own trigger is the *transport's* load signal; this is
/// the complementary, analysis-side dial: a lifeguard that can tell its
/// current workload is uninteresting (or suddenly critical) may ask the
/// producer to degrade — or restore — capture. Requests stay bounded by
/// the same [`DegradationPolicy`] contract as load-triggered degradation:
/// a lifeguard whose policy is [`DegradationPolicy::none`] has no
/// controller, so its requests are provably without effect. Every request
/// the controller consumes is counted in
/// [`DegradationStats::lifeguard_requests`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationRequest {
    /// Engage degraded capture (within the declared policy).
    Engage,
    /// Snap capture back to full fidelity.
    Disengage,
}

/// One engage→disengage span of degraded capture, in units of records
/// the controller observed — every retired record, shipped or dropped,
/// so the interval bounds index the *pre-degradation* stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedInterval {
    /// Controller record count at which degradation engaged (the first
    /// record index subject to it).
    pub from_record: u64,
    /// Controller record count at which capture snapped back to full
    /// fidelity (exclusive; equals the final count if the run ended
    /// degraded).
    pub to_record: u64,
    /// Records sampled out inside this interval.
    pub sampled_out: u64,
    /// Droppable-kind records dropped inside this interval.
    pub kind_dropped: u64,
    /// Which degradations the policy let this interval apply.
    pub widened: bool,
    /// Whether region sampling was armed in this interval.
    pub sampled: bool,
    /// Whether kind-dropping was armed in this interval.
    pub dropped_kinds: bool,
}

/// Cap on individually-recorded intervals: hysteresis bounds flapping,
/// but a pathological load profile must not grow an unbounded `Vec` in a
/// stats struct. Totals keep counting past the cap.
pub const MAX_RECORDED_INTERVALS: usize = 4096;

/// What the capture controller did over one run — the degradation
/// counterpart of [`CaptureStats`](crate::CaptureStats), surfaced through
/// `LogStats` in every report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Every degraded interval, in engage order (capped at
    /// [`MAX_RECORDED_INTERVALS`]; `engagements` keeps the true count).
    pub intervals: Vec<DegradedInterval>,
    /// Times degradation engaged.
    pub engagements: u64,
    /// Times capture snapped back to full fidelity because of a finding
    /// or a syscall (a subset of disengagements).
    pub snapbacks: u64,
    /// Records dropped by region sampling (would have shipped otherwise).
    pub sampled_out: u64,
    /// Droppable-kind records dropped.
    pub kind_dropped: u64,
    /// Times the dedup window widened (once per engaged interval that
    /// applied widening).
    pub window_widenings: u64,
    /// Records that passed capture while degradation was engaged
    /// (shipped or not).
    pub degraded_records: u64,
    /// Lifeguard-initiated [`DegradationRequest`]s the controller
    /// consumed (whether or not each one changed the dial — a request to
    /// engage while already engaged still counts).
    pub lifeguard_requests: u64,
}

impl DegradationStats {
    /// Whether the controller ever engaged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.engagements == 0
    }

    /// Total records the degraded intervals removed from the wire.
    #[must_use]
    pub fn removed(&self) -> u64 {
        self.sampled_out + self.kind_dropped
    }
}

/// The generic half of region demotion: a direct-mapped table of
/// per-region hot counters, generation-cleared on repromotion. The
/// lifeguard-specific half (soundness) lives in the
/// [`RegionClassifier`] the policy supplies; this table only answers
/// "has this region been settled often enough, and is this record the
/// 1-in-N survivor?".
#[derive(Debug)]
pub struct RegionSampler {
    spec: SamplingSpec,
    slots: Vec<SamplerSlot>,
    generation: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct SamplerSlot {
    region: u64,
    generation: u32,
    settled: u32,
    rotation: u32,
}

/// Slot count of the sampler table. Direct-mapped like the idempotency
/// window: a colliding region evicts the previous occupant, which only
/// resets its progress toward demotion — never soundness.
const SAMPLER_SLOTS: usize = 1 << 12;

impl RegionSampler {
    /// Builds the sampler for one spec. Returns `None` when the spec's
    /// rate cannot drop anything.
    #[must_use]
    pub fn new(spec: SamplingSpec) -> Option<Self> {
        if spec.sample_rate < 2 {
            return None;
        }
        Some(RegionSampler {
            spec,
            slots: vec![SamplerSlot::default(); SAMPLER_SLOTS],
            generation: 1,
        })
    }

    /// Repromotes every region to full capture (lazily, via generation).
    pub fn repromote_all(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }

    /// Whether `kind`'s arrival must repromote everything.
    #[must_use]
    pub fn repromotes(&self, rec: &EventRecord) -> bool {
        self.spec.repromote_on.contains(rec.kind)
    }

    /// Decides one settled access: `true` means drop (sampled out). Only
    /// called for records whose classifier already answered
    /// `verdict_settled`. An access spanning two regions never drops —
    /// the demotion state of one region says nothing about the other.
    pub fn sample_out(&mut self, rec: &EventRecord) -> bool {
        let g = self.spec.region_granule_log2;
        let first = rec.addr >> g;
        let last = (rec.addr + u64::from(rec.size.max(1)) - 1) >> g;
        if first != last {
            return false;
        }
        let idx = (first.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (SAMPLER_SLOTS - 1);
        let slot = &mut self.slots[idx];
        if slot.region != first || slot.generation != self.generation {
            *slot = SamplerSlot {
                region: first,
                generation: self.generation,
                settled: 1,
                rotation: 0,
            };
            return false;
        }
        if slot.settled < self.spec.clean_threshold {
            slot.settled += 1;
            return false;
        }
        // Demoted: ship the 1-in-N survivor, drop the rest.
        slot.rotation = (slot.rotation + 1) % self.spec.sample_rate;
        slot.rotation != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_record::EventKind;

    fn spec(threshold: u32, rate: u32) -> SamplingSpec {
        SamplingSpec {
            region_granule_log2: 4,
            clean_threshold: threshold,
            sample_rate: rate,
            repromote_on: EventMask::of(&[EventKind::Alloc, EventKind::Free]),
            make_classifier: || Box::new(AlwaysSettled),
        }
    }

    fn load(addr: u64) -> EventRecord {
        EventRecord::load(0x1000, 0, Some(1), Some(2), addr, 4)
    }

    #[test]
    fn none_policy_is_none() {
        assert!(DegradationPolicy::none().is_none());
        let mut p = DegradationPolicy::none();
        p.widen_window = true;
        assert!(!p.is_none());
    }

    #[test]
    fn sampler_demotes_only_past_the_threshold() {
        let mut s = RegionSampler::new(spec(3, 4)).unwrap();
        // Three settled observations to reach the threshold: all ship.
        for _ in 0..3 {
            assert!(!s.sample_out(&load(0x40)));
        }
        // Demoted: of the next 8, exactly 2 survive (rotation hits 0
        // every 4th).
        let shipped = (0..8).filter(|_| !s.sample_out(&load(0x40))).count();
        assert_eq!(shipped, 2);
    }

    #[test]
    fn repromotion_resets_demotion() {
        let mut s = RegionSampler::new(spec(2, 2)).unwrap();
        for _ in 0..6 {
            s.sample_out(&load(0x40));
        }
        s.repromote_all();
        assert!(!s.sample_out(&load(0x40)), "first access after repromote");
        assert!(!s.sample_out(&load(0x40)), "still under threshold");
        assert!(s.sample_out(&load(0x40)), "demoted again past it");
    }

    #[test]
    fn straddling_accesses_never_drop() {
        let mut s = RegionSampler::new(spec(0, 2)).unwrap();
        let wide = EventRecord::load(0x1000, 0, None, None, 0x4c, 8);
        for _ in 0..16 {
            assert!(!s.sample_out(&wide), "16-byte-granule straddle ships");
        }
    }

    #[test]
    fn rate_below_two_disables_sampling() {
        assert!(RegionSampler::new(spec(0, 1)).is_none());
        assert!(RegionSampler::new(spec(0, 0)).is_none());
    }

    #[test]
    fn stats_removed_sums_drops() {
        let stats = DegradationStats {
            sampled_out: 7,
            kind_dropped: 5,
            engagements: 1,
            ..DegradationStats::default()
        };
        assert!(!stats.is_empty());
        assert_eq!(stats.removed(), 12);
    }
}
