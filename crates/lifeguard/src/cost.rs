//! The handler cost meter.

use lba_cache::MemSystem;

use crate::finding::Finding;

/// Execution context passed to every lifeguard handler.
///
/// Handlers *derive* their cycle cost from the work they actually perform:
/// each call to [`HandlerCtx::alu`] charges plain single-cycle instructions,
/// and each shadow-memory access goes through the monitoring core's cache
/// hierarchy (its own L1D plus the shared L2), so shadow locality and cache
/// pollution emerge from the simulation instead of being per-benchmark
/// constants (DESIGN.md §5).
///
/// Under LBA the context is bound to the lifeguard core; under the DBI
/// baseline it is bound to the application core, which is precisely the
/// paper's "compete for cycles and cache space" effect.
#[derive(Debug)]
pub struct HandlerCtx<'a> {
    mem: &'a mut MemSystem,
    core: usize,
    findings: &'a mut Vec<Finding>,
    cycles: u64,
    /// Multiplier applied to shadow/ALU work, in percent (100 = 1.0x).
    /// The DBI engine uses >100 to model register pressure and the lack of
    /// hardware-assisted dispatch in software instrumentation.
    work_factor_pct: u64,
    pending_work: u64,
}

impl<'a> HandlerCtx<'a> {
    /// Creates a context charging work to `core` of `mem` at factor 1.0.
    #[must_use]
    pub fn new(mem: &'a mut MemSystem, core: usize, findings: &'a mut Vec<Finding>) -> Self {
        Self::with_work_factor(mem, core, findings, 100)
    }

    /// Creates a context with a work multiplier in percent (DBI baseline).
    ///
    /// # Panics
    ///
    /// Panics if `work_factor_pct` is zero.
    #[must_use]
    pub fn with_work_factor(
        mem: &'a mut MemSystem,
        core: usize,
        findings: &'a mut Vec<Finding>,
        work_factor_pct: u64,
    ) -> Self {
        assert!(work_factor_pct > 0, "work factor must be non-zero");
        HandlerCtx {
            mem,
            core,
            findings,
            cycles: 0,
            work_factor_pct,
            pending_work: 0,
        }
    }

    /// Charges `n` single-cycle instructions of handler work.
    pub fn alu(&mut self, n: u64) {
        self.pending_work += n;
    }

    /// Reads `width` bytes of shadow state at `shadow_addr` through the
    /// monitoring core's caches (1 cycle + any miss penalty).
    pub fn shadow_read(&mut self, shadow_addr: u64, width: u32) {
        self.pending_work += 1;
        self.cycles += self.mem.data_access(self.core, shadow_addr, width, false);
    }

    /// Writes `width` bytes of shadow state at `shadow_addr`.
    pub fn shadow_write(&mut self, shadow_addr: u64, width: u32) {
        self.pending_work += 1;
        self.cycles += self.mem.data_access(self.core, shadow_addr, width, true);
    }

    /// Reports a detected problem.
    pub fn report(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Total cycles charged so far (work factor applied to instruction
    /// work; cache penalties are charged at face value).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles + self.pending_work * self.work_factor_pct / 100
    }

    /// Number of findings reported through any context sharing this sink.
    #[must_use]
    pub fn findings_len(&self) -> usize {
        self.findings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::FindingKind;
    use lba_cache::MemSystemConfig;

    fn finding() -> Finding {
        Finding {
            lifeguard: "test",
            kind: FindingKind::Leak,
            pc: 0,
            tid: 0,
            addr: 0,
            message: String::new(),
        }
    }

    #[test]
    fn alu_work_accumulates() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let mut ctx = HandlerCtx::new(&mut mem, 1, &mut findings);
        ctx.alu(3);
        ctx.alu(2);
        assert_eq!(ctx.cycles(), 5);
    }

    #[test]
    fn shadow_access_includes_cache_penalty() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let mut ctx = HandlerCtx::new(&mut mem, 1, &mut findings);
        ctx.shadow_read(0x1_0000_0000, 1);
        let cold = ctx.cycles();
        assert!(cold > 1, "cold shadow read pays a miss: {cold}");
        ctx.shadow_read(0x1_0000_0000, 1);
        assert_eq!(ctx.cycles(), cold + 1, "warm shadow read costs one cycle");
    }

    #[test]
    fn work_factor_scales_instruction_work_only() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        // Warm the line via a unit-factor context first.
        {
            let mut findings = Vec::new();
            let mut ctx = HandlerCtx::new(&mut mem, 0, &mut findings);
            ctx.shadow_read(0x2_0000_0000, 1);
        }
        let mut findings = Vec::new();
        let mut ctx = HandlerCtx::with_work_factor(&mut mem, 0, &mut findings, 200);
        ctx.alu(4);
        ctx.shadow_read(0x2_0000_0000, 1); // warm: 1 instruction, no penalty
        assert_eq!(ctx.cycles(), (4 + 1) * 2);
    }

    #[test]
    fn findings_reach_the_sink() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        {
            let mut ctx = HandlerCtx::new(&mut mem, 1, &mut findings);
            ctx.report(finding());
            assert_eq!(ctx.findings_len(), 1);
        }
        assert_eq!(findings.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_work_factor_rejected() {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let mut findings = Vec::new();
        let _ = HandlerCtx::with_work_factor(&mut mem, 0, &mut findings, 0);
    }
}
