//! Epoch-parallel lifeguard machinery: symbolic per-epoch summaries.
//!
//! Address-interleaved sharding (`shard_of`) is unsound for lifeguards
//! whose state forms a sequential dependence chain through every record —
//! TaintCheck's register taint is the canonical case. The follow-up LBA
//! literature parallelises those by cutting the log into *epochs* at
//! syscall/flush boundaries, having N workers compute a symbolic
//! *transfer function* per epoch (out-state over unknown in-state, plus
//! findings whose guards reference unknown inputs), and stitching the
//! summaries sequentially on a merge thread — resolving each summary
//! against the concrete in-state so the result is byte-identical to the
//! sequential run.
//!
//! These traits are the generic half of that design; any order-sensitive
//! lifeguard can opt in:
//!
//! * [`EpochSummary`] — the transfer function a worker emits per epoch;
//! * [`EpochSummarizer`] — the worker-side lifeguard that computes
//!   summaries instead of concrete state (it *is* a [`Lifeguard`], so the
//!   unmodified dispatch engine drives it and charges the same handler
//!   costs as the concrete lifeguard it mirrors);
//! * [`EpochLifeguard`] — the concrete lifeguard that owns the master
//!   state on the merge thread and absorbs summaries in epoch order.
//!
//! Soundness hinges on the summarizer expressing every out-value and
//! every finding guard over *epoch-entry* state only; see the
//! `lba-lifeguards` crate docs for TaintCheck's instantiation and the
//! compose-then-concretize argument.

use crate::cost::HandlerCtx;
use crate::dispatch::Lifeguard;

/// A symbolic transfer-function summary of one epoch: everything the
/// merge thread needs to advance the master state across the epoch and
/// reproduce its findings, expressed over the (unknown at summary time)
/// epoch-entry state.
pub trait EpochSummary: Send + 'static {
    /// Records folded into this summary (per-epoch diagnostics).
    fn records(&self) -> u64;
}

/// The worker-side half of an epoch-parallel lifeguard: consumes one
/// epoch's records through the ordinary [`Lifeguard`] dispatch path —
/// charging the same handler costs as the concrete lifeguard — while
/// building a symbolic [`EpochSummary`] instead of concrete state.
pub trait EpochSummarizer: Lifeguard + Send {
    /// The summary this summarizer produces.
    type Summary: EpochSummary;

    /// Seals the current epoch: returns its summary and resets the
    /// summarizer to the identity transfer function, ready for this
    /// worker's next epoch.
    fn finish_epoch(&mut self) -> Self::Summary;

    /// Whether any records have been folded in since the last
    /// [`finish_epoch`](Self::finish_epoch) — the tail of a stream ships
    /// unmarked (plain flush), so the driver finalises a dangling open
    /// epoch exactly when this is true.
    fn is_open(&self) -> bool;
}

/// A lifeguard that supports epoch-parallel execution: it can spawn
/// worker-side summarizers and absorb their summaries, in epoch order,
/// into its own (master) state on the merge thread.
pub trait EpochLifeguard: Lifeguard {
    /// The worker-side summarizer type.
    type Summarizer: EpochSummarizer;

    /// A fresh summarizer with identity state, for one worker thread.
    fn summarizer(&self) -> Self::Summarizer;

    /// Absorbs one epoch's summary: resolves its symbolic out-state and
    /// conditional findings against the master's concrete state (the
    /// epoch-entry state, since summaries arrive in epoch order), applies
    /// the writes, and reports the findings that fire — byte-identical,
    /// by construction, to having run the epoch's records sequentially.
    /// Stitch work is charged to `ctx` like any handler.
    fn absorb(
        &mut self,
        summary: <Self::Summarizer as EpochSummarizer>::Summary,
        ctx: &mut HandlerCtx<'_>,
    );
}
