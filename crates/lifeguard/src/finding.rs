//! Lifeguard findings: the problems a monitor detects.

use std::fmt;

/// Classification of a detected problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FindingKind {
    /// Access to memory that is not currently allocated (AddrCheck).
    UnallocatedAccess,
    /// `free` of an already-freed block (AddrCheck).
    DoubleFree,
    /// `free` of an address that is not a block start (AddrCheck).
    InvalidFree,
    /// A block still allocated at program exit (AddrCheck).
    Leak,
    /// An indirect jump/call through a tainted target (TaintCheck).
    TaintedJump,
    /// A syscall argument register carrying tainted data (TaintCheck).
    TaintedSyscallArg,
    /// A shared location accessed with an empty candidate lockset (LockSet).
    DataRace,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FindingKind::UnallocatedAccess => "unallocated-access",
            FindingKind::DoubleFree => "double-free",
            FindingKind::InvalidFree => "invalid-free",
            FindingKind::Leak => "leak",
            FindingKind::TaintedJump => "tainted-jump",
            FindingKind::TaintedSyscallArg => "tainted-syscall-arg",
            FindingKind::DataRace => "data-race",
        };
        f.write_str(name)
    }
}

/// One detected problem, with enough context to act on it.
///
/// The log-based design means findings trail the triggering instruction;
/// the syscall-stall policy (core crate) bounds that lag at each syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Name of the reporting lifeguard (e.g. `"addrcheck"`).
    pub lifeguard: &'static str,
    /// Problem classification.
    pub kind: FindingKind,
    /// Program counter of the offending instruction.
    pub pc: u64,
    /// Thread that executed it.
    pub tid: u8,
    /// Data address involved (0 when not applicable).
    pub addr: u64,
    /// Human-readable diagnosis.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at pc={:#x} tid={} addr={:#x}: {}",
            self.lifeguard, self.kind, self.pc, self.tid, self.addr, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_context() {
        let f = Finding {
            lifeguard: "addrcheck",
            kind: FindingKind::DoubleFree,
            pc: 0x1040,
            tid: 2,
            addr: 0x4000_0010,
            message: "block freed twice".into(),
        };
        let s = f.to_string();
        assert!(s.contains("addrcheck"));
        assert!(s.contains("double-free"));
        assert!(s.contains("0x1040"));
        assert!(s.contains("tid=2"));
        assert!(s.contains("block freed twice"));
    }

    #[test]
    fn kinds_have_distinct_names() {
        let kinds = [
            FindingKind::UnallocatedAccess,
            FindingKind::DoubleFree,
            FindingKind::InvalidFree,
            FindingKind::Leak,
            FindingKind::TaintedJump,
            FindingKind::TaintedSyscallArg,
            FindingKind::DataRace,
        ];
        let names: std::collections::HashSet<String> =
            kinds.iter().map(|k| k.to_string()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
