//! Deterministic timed log-buffer model, accounted in frames.

use std::collections::VecDeque;
use std::fmt;

use lba_compress::{Frame, FrameConfig, FrameDecoder, FrameEncoder, FRAME_LINE_BYTES};
use lba_record::EventRecord;

use crate::channel::{
    ChannelStats, LoadSample, LogChannel, PoppedFrame, PoppedRecord, PushOutcome,
};
use crate::sink::{ChannelTee, FrameSink, FrameSource, SealedFrame, SinkError};

/// A sealed log frame annotated with its production time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedFrame {
    /// The frame's wire image (header + payload + padding).
    pub bytes: Vec<u8>,
    /// Records carried.
    pub records: u32,
    /// Producer-core cycle at which the frame became available.
    pub ready_at: u64,
}

impl TimedFrame {
    /// Wire bits this frame occupies in the buffer.
    #[must_use]
    pub fn wire_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }
}

/// Error returned by [`LogBufferModel::try_push`] when the buffer cannot
/// accept the frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferFullError {
    /// The frame that was rejected, handed back to the caller.
    pub frame: TimedFrame,
    /// Bits currently free.
    pub free_bits: u64,
}

impl fmt::Display for BufferFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log buffer full: need {} bits, {} free",
            self.frame.wire_bits(),
            self.free_bits
        )
    }
}

impl std::error::Error for BufferFullError {}

/// Occupancy statistics for a [`LogBufferModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames pushed over the buffer's lifetime.
    pub frames: u64,
    /// Total wire bits pushed.
    pub wire_bits: u64,
    /// High-water mark of occupancy, in bits.
    pub high_water_bits: u64,
}

/// The bounded log buffer connecting the two cores, with timestamped
/// frames for exact back-pressure simulation.
///
/// Capacity is a *byte* budget: the paper sizes the buffer as a memory
/// region in the cache hierarchy. Occupancy is accounted in whole frames —
/// the transport unit is a cache-line multiple, not a record.
///
/// # Examples
///
/// ```
/// use lba_transport::{LogBufferModel, TimedFrame};
///
/// let mut buf = LogBufferModel::new(256); // 256-byte budget: four lines
/// let frame = TimedFrame { bytes: vec![0; 64], records: 10, ready_at: 100 };
/// assert!(buf.try_push(frame).is_ok());
/// let frame = buf.pop().expect("one frame queued");
/// assert_eq!(frame.ready_at, 100);
/// ```
#[derive(Debug, Clone)]
pub struct LogBufferModel {
    capacity_bits: u64,
    queue: VecDeque<TimedFrame>,
    occupied_bits: u64,
    stats: TransportStats,
}

impl LogBufferModel {
    /// Creates a buffer with a capacity of `capacity_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    #[must_use]
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "log buffer capacity must be non-zero");
        LogBufferModel {
            capacity_bits: capacity_bytes * 8,
            queue: VecDeque::new(),
            occupied_bits: 0,
            stats: TransportStats::default(),
        }
    }

    /// Capacity in bits.
    #[must_use]
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Occupied bits.
    #[must_use]
    pub fn occupied_bits(&self) -> u64 {
        self.occupied_bits
    }

    /// Whether a frame of `bits` fits right now.
    ///
    /// Oversized frames (larger than the whole buffer) are admitted when
    /// the buffer is empty, so a single huge frame cannot wedge the
    /// pipeline.
    #[must_use]
    pub fn fits(&self, bits: u64) -> bool {
        self.occupied_bits + bits <= self.capacity_bits || self.queue.is_empty()
    }

    /// Number of queued frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Pushes a sealed frame.
    ///
    /// # Errors
    ///
    /// Returns [`BufferFullError`] (carrying the frame back) when it does
    /// not fit; the caller must drain frames and retry, charging the
    /// producer core the stall time.
    pub fn try_push(&mut self, frame: TimedFrame) -> Result<(), BufferFullError> {
        let bits = frame.wire_bits();
        if !self.fits(bits) {
            return Err(BufferFullError {
                frame,
                // Saturating: an admitted oversized frame can leave the
                // buffer over-full.
                free_bits: self.capacity_bits.saturating_sub(self.occupied_bits),
            });
        }
        self.occupied_bits += bits;
        self.stats.frames += 1;
        self.stats.wire_bits += bits;
        self.stats.high_water_bits = self.stats.high_water_bits.max(self.occupied_bits);
        self.queue.push_back(frame);
        Ok(())
    }

    /// Removes and returns the oldest frame, freeing its bits.
    pub fn pop(&mut self) -> Option<TimedFrame> {
        let frame = self.queue.pop_front()?;
        self.occupied_bits -= frame.wire_bits();
        Some(frame)
    }

    /// Peeks at the oldest frame without removing it.
    #[must_use]
    pub fn front(&self) -> Option<&TimedFrame> {
        self.queue.front()
    }
}

/// The deterministic [`LogChannel`]: a real [`FrameEncoder`] feeding a
/// [`LogBufferModel`], with frames decoded back to records on the consumer
/// side by a [`FrameDecoder`].
///
/// The co-simulation drives this channel; because the encoder and decoder
/// are the genuine codec, the modeled path exercises the same wire format
/// as the live path, and `verify` cross-checks every decoded record against
/// the pushed original (with memory bounded by the frames in flight).
///
/// # Consume modes
///
/// The paper's decompressor is a *hardware* engine on the lifeguard core —
/// its cost is part of the dispatch cycle model, not host work. The
/// default constructor ([`new`](Self::new)) nevertheless software-decodes
/// every popped frame, which is the pre-batching behaviour and the
/// throughput-benchmark baseline. [`zero_copy`](Self::zero_copy) skips the
/// redundant host decode: sealed frames carry their records alongside the
/// wire bytes, so consuming hands back the originals while the wire
/// accounting (and back-pressure timing) still comes from the genuinely
/// encoded frames. Losslessness stays enforced by `verify` mode, the live
/// channel (which always decodes for real), and the round-trip suites.
#[derive(Debug)]
pub struct ModeledFrameChannel {
    encoder: FrameEncoder,
    decoder: FrameDecoder,
    buffer: LogBufferModel,
    /// Sealed frames awaiting space, oldest first.
    parked: VecDeque<Frame>,
    /// Records of the frame currently being consumed.
    open: VecDeque<EventRecord>,
    open_ready_at: u64,
    /// Whether the open frame carried the epoch-end mark.
    open_epoch_end: bool,
    /// Wire bits of the open frame: its buffer space stays occupied until
    /// the consumer takes its last record (the dispatch engine reads the
    /// frame's lines out of the buffer as it processes them).
    open_held_bits: u64,
    /// Originals awaiting verification (only populated when `verify`).
    originals: VecDeque<EventRecord>,
    verify: bool,
    scratch: Vec<EventRecord>,
    /// Decode buffer for [`pop_frame`](LogChannel::pop_frame): frames are
    /// decoded straight into it and lent out as a slice, so the batch path
    /// never copies records through the `open` queue.
    batch: Vec<EventRecord>,
    /// Zero-copy consume mode (see the type docs).
    zero_copy: bool,
    /// Zero-copy: records of the frame currently being staged (not yet
    /// sealed by the encoder).
    staging: Vec<EventRecord>,
    /// Zero-copy: sealed frames' record batches in seal order, which is
    /// also pop order (parked frames preserve FIFO).
    ready: VecDeque<Vec<EventRecord>>,
    /// Zero-copy: spent record batches recycled to avoid per-frame allocs.
    batch_pool: Vec<Vec<EventRecord>>,
    /// Optional mirror of every sealed frame into a [`FrameSink`] (the
    /// flight recorder); see [`tee_into`](Self::tee_into).
    tee: ChannelTee,
}

impl ModeledFrameChannel {
    /// Creates a channel with a `capacity_bytes` buffer budget that
    /// software-decodes every popped frame (the benchmark-baseline mode;
    /// see the type docs).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is smaller than one cache-line frame
    /// ([`FRAME_LINE_BYTES`]) — callers should reject such configurations
    /// with a proper error first.
    #[must_use]
    pub fn new(capacity_bytes: u64, config: FrameConfig, verify: bool) -> Self {
        Self::build(capacity_bytes, config, verify, false)
    }

    /// Creates a channel in zero-copy consume mode: popped frames hand
    /// back the pushed records, skipping the redundant host decode while
    /// shipping the identical wire bytes (see the type docs). With
    /// `verify` set, every frame is additionally decoded with the real
    /// codec and cross-checked.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is smaller than one cache-line frame.
    #[must_use]
    pub fn zero_copy(capacity_bytes: u64, config: FrameConfig, verify: bool) -> Self {
        Self::build(capacity_bytes, config, verify, true)
    }

    fn build(capacity_bytes: u64, config: FrameConfig, verify: bool, zero_copy: bool) -> Self {
        assert!(
            capacity_bytes >= FRAME_LINE_BYTES as u64,
            "log buffer of {capacity_bytes} B cannot hold a single {FRAME_LINE_BYTES} B frame"
        );
        ModeledFrameChannel {
            encoder: FrameEncoder::new(config),
            decoder: FrameDecoder::new(config),
            buffer: LogBufferModel::new(capacity_bytes),
            parked: VecDeque::new(),
            open: VecDeque::new(),
            open_ready_at: 0,
            open_epoch_end: false,
            open_held_bits: 0,
            originals: VecDeque::new(),
            verify,
            scratch: Vec::new(),
            batch: Vec::new(),
            zero_copy,
            staging: Vec::new(),
            ready: VecDeque::new(),
            batch_pool: Vec::new(),
            tee: ChannelTee::default(),
        }
    }

    /// Mirrors every subsequently sealed frame into `sink` — the
    /// flight-recorder hook. The mirror happens at the moment of sealing
    /// (before admission), so the recorded stream is the exact wire
    /// traffic in seal order, back-pressure parking included. A failing
    /// sink never disturbs the channel: the first error is latched, the
    /// sink dropped, and the error surfaces from
    /// [`take_tee`](Self::take_tee).
    pub fn tee_into(&mut self, sink: Box<dyn FrameSink + Send>) {
        self.tee.install(sink);
    }

    /// Takes the tee sink back (for finishing), or reports the first
    /// mirror error if the sink failed mid-run.
    ///
    /// # Errors
    ///
    /// The first error a mirror write hit.
    pub fn take_tee(&mut self) -> Result<Option<Box<dyn FrameSink + Send>>, SinkError> {
        self.tee.take()
    }

    /// The underlying buffer, for occupancy inspection.
    #[must_use]
    pub fn buffer(&self) -> &LogBufferModel {
        &self.buffer
    }

    /// Whether a frame of `wire_bits` fits, counting the open frame's
    /// still-held space. The oversized escape hatch only applies when the
    /// channel is completely drained.
    fn frame_fits(&self, wire_bits: u64) -> bool {
        self.open_held_bits + self.buffer.occupied_bits() + wire_bits <= self.buffer.capacity_bits()
            || (self.buffer.is_empty() && self.open.is_empty())
    }

    /// Cross-checks freshly decoded records against the pushed originals
    /// (only called when `verify` is set).
    fn verify_decoded(originals: &mut VecDeque<EventRecord>, decoded: &[EventRecord]) {
        for decoded in decoded {
            let original = originals
                .pop_front()
                .expect("more decoded records than were pushed");
            assert_eq!(
                *decoded, original,
                "frame round-trip mismatch: decoded {decoded:?}, pushed {original:?}"
            );
        }
    }

    /// Zero-copy bookkeeping at frame seal: the staged records become the
    /// sealed frame's batch (pop order equals seal order, parked or not).
    fn seal_staging(&mut self) {
        if !self.zero_copy {
            return;
        }
        let empty = self.batch_pool.pop().unwrap_or_default();
        let batch = std::mem::replace(&mut self.staging, empty);
        self.ready.push_back(batch);
    }

    /// Produces the records of a just-popped frame as an owned batch:
    /// zero-copy mode hands back the pushed originals (decoding only to
    /// cross-check under `verify`); decode mode runs the real decoder.
    fn take_frame_records(&mut self, frame: &TimedFrame) -> Vec<EventRecord> {
        if self.zero_copy {
            let records = self
                .ready
                .pop_front()
                .expect("a popped frame has a staged record batch");
            assert_eq!(
                records.len(),
                frame.records as usize,
                "staged batch must match the frame's record count"
            );
            if self.verify {
                self.scratch.clear();
                self.decoder
                    .decode_frame(&frame.bytes, &mut self.scratch)
                    .unwrap_or_else(|e| panic!("modeled frame failed to decode: {e}"));
                assert_eq!(
                    self.scratch, records,
                    "frame round-trip mismatch between decoded and pushed records"
                );
            }
            records
        } else {
            let mut records = self.batch_pool.pop().unwrap_or_default();
            records.clear();
            self.decoder
                .decode_frame(&frame.bytes, &mut records)
                .unwrap_or_else(|e| panic!("modeled frame failed to decode: {e}"));
            if self.verify {
                Self::verify_decoded(&mut self.originals, &records);
            }
            records
        }
    }

    /// Returns a spent record batch to the pool for reuse.
    fn recycle(&mut self, mut batch: Vec<EventRecord>) {
        if self.batch_pool.len() < 4 {
            batch.clear();
            self.batch_pool.push(batch);
        }
    }

    /// Like [`push_record`](LogChannel::push_record), but seals the open
    /// frame immediately — with the epoch-end mark in its wire header —
    /// when `end_epoch` is set, so frames never straddle epoch boundaries
    /// (see [`EpochRouter`](crate::EpochRouter)). With `end_epoch` false
    /// this is exactly `push_record`.
    pub fn push_record_epoch(
        &mut self,
        record: &EventRecord,
        now: u64,
        end_epoch: bool,
    ) -> PushOutcome {
        if self.verify && !self.zero_copy {
            self.originals.push_back(*record);
        }
        if self.zero_copy {
            self.staging.push(*record);
        }
        match self.encoder.push_epoch(record, end_epoch) {
            Some(frame) => {
                self.seal_staging();
                self.tee.mirror(&SealedFrame {
                    bytes: &frame.bytes,
                    records: frame.records,
                    sealed_at: now,
                });
                self.admit_or_park(frame, now)
            }
            None => PushOutcome::Buffered,
        }
    }

    fn admit_or_park(&mut self, frame: Frame, now: u64) -> PushOutcome {
        let wire_bits = frame.wire_bits();
        if !self.parked.is_empty() {
            // Preserve frame order behind earlier parked frames.
            self.parked.push_back(frame);
            return PushOutcome::BackPressure { wire_bits };
        }
        if !self.frame_fits(wire_bits) {
            self.parked.push_back(frame);
            return PushOutcome::BackPressure { wire_bits };
        }
        let timed = TimedFrame {
            bytes: frame.bytes,
            records: frame.records,
            ready_at: now,
        };
        self.buffer.try_push(timed).expect("frame_fits was checked");
        PushOutcome::Sealed { wire_bits }
    }
}

impl LogChannel for ModeledFrameChannel {
    fn push_record(&mut self, record: &EventRecord, now: u64) -> PushOutcome {
        self.push_record_epoch(record, now, false)
    }

    fn flush(&mut self, now: u64) -> PushOutcome {
        match self.encoder.flush() {
            Some(frame) => {
                self.seal_staging();
                self.tee.mirror(&SealedFrame {
                    bytes: &frame.bytes,
                    records: frame.records,
                    sealed_at: now,
                });
                self.admit_or_park(frame, now)
            }
            None => PushOutcome::Buffered,
        }
    }

    fn pop_record(&mut self) -> Option<PoppedRecord> {
        loop {
            if let Some(record) = self.open.pop_front() {
                if self.open.is_empty() {
                    // Last record consumed: the frame's lines are free.
                    self.open_held_bits = 0;
                }
                return Some(PoppedRecord {
                    record,
                    ready_at: self.open_ready_at,
                });
            }
            let frame = self.buffer.pop()?;
            self.open_held_bits = frame.wire_bits();
            self.open_epoch_end = Frame::header_epoch_end(&frame.bytes);
            let records = self.take_frame_records(&frame);
            self.open.extend(records.iter().copied());
            self.recycle(records);
            self.open_ready_at = frame.ready_at;
        }
    }

    fn pop_frame(&mut self) -> Option<PoppedFrame<'_>> {
        if !self.open.is_empty() {
            // Remainder of a frame partially consumed through pop_record:
            // hand it out whole and release the frame's lines.
            self.batch.clear();
            self.batch.extend(self.open.drain(..));
            self.open_held_bits = 0;
            return Some(PoppedFrame {
                records: &self.batch,
                ready_at: self.open_ready_at,
                epoch_end: self.open_epoch_end,
            });
        }
        let frame = self.buffer.pop()?;
        // The whole frame is consumed in one step, so its lines free now —
        // the same release point the per-record path reaches when the
        // frame's last record is popped.
        let epoch_end = Frame::header_epoch_end(&frame.bytes);
        let records = self.take_frame_records(&frame);
        let spent = std::mem::replace(&mut self.batch, records);
        self.recycle(spent);
        Some(PoppedFrame {
            records: &self.batch,
            ready_at: frame.ready_at,
            epoch_end,
        })
    }

    fn has_parked(&self) -> bool {
        !self.parked.is_empty()
    }

    fn drained(&self) -> bool {
        self.parked.is_empty() && self.buffer.is_empty() && self.open.is_empty()
    }

    fn retry_parked(&mut self, now: u64) -> Option<u64> {
        let frame = self.parked.front()?;
        if !self.frame_fits(frame.wire_bits()) {
            return None;
        }
        let frame = self.parked.pop_front().expect("checked above");
        let wire_bits = frame.wire_bits();
        let timed = TimedFrame {
            bytes: frame.bytes,
            records: frame.records,
            ready_at: now,
        };
        self.buffer.try_push(timed).expect("fits was checked");
        Some(wire_bits)
    }

    fn stats(&self) -> ChannelStats {
        let enc = self.encoder.stats();
        ChannelStats {
            records: enc.records,
            frames: enc.frames,
            payload_bits: enc.payload_bits,
            wire_bits: enc.wire_bits,
            high_water_bits: self.buffer.stats().high_water_bits,
        }
    }

    fn load_sample(&self) -> LoadSample {
        // Parked frames count as in-flight: they are sealed wire traffic
        // the consumer has not absorbed, and the clearest overload signal
        // (occupancy reads over 1000 permille while anything is parked).
        let parked_bits: u64 = self.parked.iter().map(Frame::wire_bits).sum();
        LoadSample {
            inflight: self.open_held_bits + self.buffer.occupied_bits() + parked_bits,
            capacity: self.buffer.capacity_bits(),
        }
    }

    fn mark_degraded(&mut self, on: bool) {
        self.encoder.set_degraded(on);
    }
}

/// The consumer half as a raw frame drain: sealed wire images in seal
/// order, admitted frames first, then parked ones. A raw drain bypasses
/// the record-level bookkeeping — do not interleave with
/// [`pop_record`](LogChannel::pop_record) /
/// [`pop_frame`](LogChannel::pop_frame).
impl FrameSource for ModeledFrameChannel {
    fn next_frame_bytes(&mut self) -> Result<Option<Vec<u8>>, SinkError> {
        let bytes = if let Some(timed) = self.buffer.pop() {
            Some(timed.bytes)
        } else {
            self.parked.pop_front().map(|frame| frame.bytes)
        };
        if bytes.is_some() && self.zero_copy {
            // Keep the staged record batches aligned with the frames.
            self.ready.pop_front();
        }
        Ok(bytes)
    }
}

/// Builds one modeled channel for a producer→consumer edge of a topology:
/// zero-copy consume mode when the run dispatches whole frames (the
/// hardware decompressor's work is modeled, not re-run in host software),
/// software-decode mode for the per-record baseline. Both ship identical
/// wire bytes; `verify` decodes and cross-checks either way.
///
/// # Panics
///
/// Panics if `capacity_bytes` is smaller than one cache-line frame
/// ([`FRAME_LINE_BYTES`]) — callers should reject such configurations
/// with a proper error first.
#[must_use]
pub fn modeled_channel(
    capacity_bytes: u64,
    config: FrameConfig,
    batch_dispatch: bool,
    verify: bool,
) -> ModeledFrameChannel {
    if batch_dispatch {
        ModeledFrameChannel::zero_copy(capacity_bytes, config, verify)
    } else {
        ModeledFrameChannel::new(capacity_bytes, config, verify)
    }
}

/// Builds the per-consumer channel set for a fanned-out modeled topology
/// (one independent framed stream per shard or epoch worker), each with
/// the same byte budget and codec settings — the modeled counterpart of
/// [`live::shard_frame_channels`](crate::live::shard_frame_channels).
///
/// # Panics
///
/// As [`modeled_channel`], per channel.
#[must_use]
pub fn modeled_channel_set(
    consumers: usize,
    capacity_bytes: u64,
    config: FrameConfig,
    batch_dispatch: bool,
) -> Vec<ModeledFrameChannel> {
    (0..consumers)
        .map(|_| modeled_channel(capacity_bytes, config, batch_dispatch, false))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(bytes: usize, ready_at: u64) -> TimedFrame {
        TimedFrame {
            bytes: vec![0; bytes],
            records: 1,
            ready_at,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut buf = LogBufferModel::new(1024);
        for i in 0..10 {
            let mut f = frame(64, i);
            f.records = i as u32;
            buf.try_push(f).unwrap();
        }
        for i in 0..10 {
            let f = buf.pop().unwrap();
            assert_eq!(f.records, i as u32);
            assert_eq!(f.ready_at, i);
        }
        assert!(buf.pop().is_none());
    }

    #[test]
    fn occupancy_tracks_wire_bits() {
        let mut buf = LogBufferModel::new(128); // two lines
        buf.try_push(frame(64, 0)).unwrap();
        assert_eq!(buf.occupied_bits(), 512);
        buf.try_push(frame(64, 1)).unwrap();
        let err = buf.try_push(frame(64, 2)).unwrap_err();
        assert_eq!(err.free_bits, 0);
        assert_eq!(err.frame.ready_at, 2, "rejected frame is handed back");
        buf.pop().unwrap();
        assert_eq!(buf.occupied_bits(), 512);
        buf.try_push(frame(64, 2)).unwrap();
    }

    #[test]
    fn oversized_frame_admitted_when_empty() {
        let mut buf = LogBufferModel::new(64);
        assert!(
            buf.try_push(frame(192, 0)).is_ok(),
            "oversized frame must not wedge"
        );
        assert!(
            buf.try_push(frame(64, 0)).is_err(),
            "but the buffer is now over-full"
        );
        buf.pop().unwrap();
        assert!(buf.try_push(frame(64, 0)).is_ok());
    }

    #[test]
    fn high_water_mark_recorded() {
        let mut buf = LogBufferModel::new(256);
        buf.try_push(frame(64, 0)).unwrap();
        buf.try_push(frame(128, 0)).unwrap();
        buf.pop().unwrap();
        assert_eq!(buf.stats().high_water_bits, 192 * 8);
        assert_eq!(buf.stats().frames, 2);
        assert_eq!(buf.stats().wire_bits, 192 * 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = LogBufferModel::new(0);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut buf = LogBufferModel::new(256);
        buf.try_push(frame(64, 3)).unwrap();
        assert_eq!(buf.front().unwrap().ready_at, 3);
        assert_eq!(buf.len(), 1);
    }

    mod channel {
        use super::*;

        fn rec(i: u64) -> EventRecord {
            EventRecord::load(0x1000, 0, Some(1), None, 0x4000_0000 + i * 8, 8)
        }

        fn config(records_per_frame: usize) -> FrameConfig {
            FrameConfig {
                records_per_frame,
                compress: true,
            }
        }

        #[test]
        fn push_pop_round_trips_with_frame_timestamps() {
            let mut ch = ModeledFrameChannel::new(1 << 16, config(4), true);
            for i in 0..10 {
                ch.push_record(&rec(i), 100 + i);
            }
            assert!(matches!(ch.flush(200), PushOutcome::Sealed { .. }));
            let mut seen = 0u64;
            while let Some(popped) = ch.pop_record() {
                assert_eq!(popped.record, rec(seen));
                // Records 0..3 sealed when record 3 was pushed (t=103), etc.
                let expected_ready = match seen {
                    0..=3 => 103,
                    4..=7 => 107,
                    _ => 200,
                };
                assert_eq!(popped.ready_at, expected_ready, "record {seen}");
                seen += 1;
            }
            assert_eq!(seen, 10);
            let stats = ch.stats();
            assert_eq!(stats.records, 10);
            assert_eq!(stats.frames, 3);
            assert!(stats.wire_bits >= stats.payload_bits);
        }

        #[test]
        fn back_pressure_parks_and_retries_in_order() {
            // One-line budget: the second frame must park.
            let mut ch = ModeledFrameChannel::new(64, config(2), false);
            ch.push_record(&rec(0), 0);
            assert!(matches!(
                ch.push_record(&rec(1), 1),
                PushOutcome::Sealed { .. }
            ));
            ch.push_record(&rec(2), 2);
            let outcome = ch.push_record(&rec(3), 3);
            assert!(matches!(outcome, PushOutcome::BackPressure { .. }));
            assert!(ch.has_parked());
            assert!(ch.retry_parked(4).is_none(), "no space freed yet");
            // The frame's space stays occupied until its *last* record is
            // consumed, so draining one record is not enough.
            assert_eq!(ch.pop_record().unwrap().record, rec(0));
            assert!(
                ch.retry_parked(4).is_none(),
                "open frame still holds its lines"
            );
            assert_eq!(ch.pop_record().unwrap().record, rec(1));
            assert!(ch.retry_parked(4).is_some());
            assert!(!ch.has_parked());
            assert_eq!(ch.pop_record().unwrap().record, rec(2));
            assert_eq!(ch.pop_record().unwrap().record, rec(3));
            assert!(ch.pop_record().is_none());
        }

        #[test]
        fn raw_mode_round_trips() {
            let mut ch = ModeledFrameChannel::new(
                1 << 16,
                FrameConfig {
                    records_per_frame: 3,
                    compress: false,
                },
                true,
            );
            for i in 0..7 {
                ch.push_record(&rec(i), i);
            }
            ch.flush(7);
            let mut n = 0;
            while ch.pop_record().is_some() {
                n += 1;
            }
            assert_eq!(n, 7);
        }

        #[test]
        #[should_panic(expected = "cannot hold a single")]
        fn sub_line_budget_rejected() {
            let _ = ModeledFrameChannel::new(1, config(4), false);
        }

        #[test]
        fn epoch_marks_survive_the_modeled_channel() {
            // Boundary after records 2 and 6; frames of 3 records, so the
            // epoch seals cut frames early and the marks must pop back out.
            for zero_copy in [false, true] {
                let mut ch = if zero_copy {
                    ModeledFrameChannel::zero_copy(1 << 16, config(3), true)
                } else {
                    ModeledFrameChannel::new(1 << 16, config(3), true)
                };
                for i in 0..10 {
                    let end = i == 2 || i == 6;
                    ch.push_record_epoch(&rec(i), i, end);
                }
                ch.flush(20);
                let mut marks = Vec::new();
                let mut total = 0;
                while let Some(frame) = ch.pop_frame() {
                    total += frame.records.len();
                    marks.push(frame.epoch_end);
                }
                assert_eq!(total, 10);
                // Frames: [0,1,2]*, [3,4,5], [6]*, [7,8,9] (capacity seal,
                // unmarked).
                assert_eq!(marks, [true, false, true, false]);
            }
        }
    }
}
