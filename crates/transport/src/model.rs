//! Deterministic timed log-buffer model.

use std::collections::VecDeque;
use std::fmt;

use lba_record::EventRecord;

/// A log entry annotated with its compressed size and production time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEntry {
    /// The event record.
    pub record: EventRecord,
    /// Compressed size in bits (occupancy accounting).
    pub bits: u64,
    /// Application-core cycle at which the entry became available.
    pub ready_at: u64,
}

/// Error returned by [`LogBufferModel::try_push`] when the buffer cannot
/// accept the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferFullError {
    /// Bits that were requested.
    pub bits: u64,
    /// Bits currently free.
    pub free_bits: u64,
}

impl fmt::Display for BufferFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log buffer full: need {} bits, {} free", self.bits, self.free_bits)
    }
}

impl std::error::Error for BufferFullError {}

/// Occupancy statistics for a [`LogBufferModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Entries pushed over the buffer's lifetime.
    pub entries: u64,
    /// Total bits pushed.
    pub bits: u64,
    /// High-water mark of occupancy, in bits.
    pub high_water_bits: u64,
}

/// The bounded log buffer connecting the two cores, with timestamped
/// entries for exact back-pressure simulation.
///
/// Capacity is a *byte* budget: the paper sizes the buffer as a memory
/// region in the cache hierarchy, and compressed records are variable
/// length, so occupancy is tracked in bits.
#[derive(Debug, Clone)]
pub struct LogBufferModel {
    capacity_bits: u64,
    queue: VecDeque<TimedEntry>,
    occupied_bits: u64,
    stats: TransportStats,
}

impl LogBufferModel {
    /// Creates a buffer with a capacity of `capacity_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    #[must_use]
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "log buffer capacity must be non-zero");
        LogBufferModel {
            capacity_bits: capacity_bytes * 8,
            queue: VecDeque::new(),
            occupied_bits: 0,
            stats: TransportStats::default(),
        }
    }

    /// Capacity in bits.
    #[must_use]
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Occupied bits.
    #[must_use]
    pub fn occupied_bits(&self) -> u64 {
        self.occupied_bits
    }

    /// Whether an entry of `bits` fits right now.
    ///
    /// Oversized entries (larger than the whole buffer) are admitted when
    /// the buffer is empty, so a single huge record cannot wedge the
    /// pipeline.
    #[must_use]
    pub fn fits(&self, bits: u64) -> bool {
        self.occupied_bits + bits <= self.capacity_bits || self.queue.is_empty()
    }

    /// Number of queued entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Pushes an entry produced at application-cycle `ready_at`.
    ///
    /// # Errors
    ///
    /// Returns [`BufferFullError`] when the entry does not fit; the caller
    /// (co-simulation) must drain entries and retry, charging the
    /// application core the stall time.
    pub fn try_push(
        &mut self,
        record: EventRecord,
        bits: u64,
        ready_at: u64,
    ) -> Result<(), BufferFullError> {
        if !self.fits(bits) {
            return Err(BufferFullError {
                bits,
                // Saturating: an admitted oversized entry can leave the
                // buffer over-full.
                free_bits: self.capacity_bits.saturating_sub(self.occupied_bits),
            });
        }
        self.queue.push_back(TimedEntry { record, bits, ready_at });
        self.occupied_bits += bits;
        self.stats.entries += 1;
        self.stats.bits += bits;
        self.stats.high_water_bits = self.stats.high_water_bits.max(self.occupied_bits);
        Ok(())
    }

    /// Removes and returns the oldest entry.
    pub fn pop(&mut self) -> Option<TimedEntry> {
        let entry = self.queue.pop_front()?;
        self.occupied_bits -= entry.bits;
        Some(entry)
    }

    /// Peeks at the oldest entry without removing it.
    #[must_use]
    pub fn front(&self) -> Option<&TimedEntry> {
        self.queue.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u64) -> EventRecord {
        EventRecord::alu(pc, 0, None, None, None)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut buf = LogBufferModel::new(1024);
        for i in 0..10 {
            buf.try_push(rec(i), 8, i).unwrap();
        }
        for i in 0..10 {
            let e = buf.pop().unwrap();
            assert_eq!(e.record.pc, i);
            assert_eq!(e.ready_at, i);
        }
        assert!(buf.pop().is_none());
    }

    #[test]
    fn occupancy_tracks_bits() {
        let mut buf = LogBufferModel::new(4); // 32 bits
        buf.try_push(rec(0), 20, 0).unwrap();
        assert_eq!(buf.occupied_bits(), 20);
        let err = buf.try_push(rec(1), 20, 1).unwrap_err();
        assert_eq!(err.free_bits, 12);
        buf.pop().unwrap();
        assert_eq!(buf.occupied_bits(), 0);
        buf.try_push(rec(1), 20, 1).unwrap();
    }

    #[test]
    fn oversized_entry_admitted_when_empty() {
        let mut buf = LogBufferModel::new(1); // 8 bits
        assert!(buf.try_push(rec(0), 64, 0).is_ok(), "oversized entry must not wedge");
        assert!(buf.try_push(rec(1), 1, 0).is_err(), "but the buffer is now over-full");
        buf.pop().unwrap();
        assert!(buf.try_push(rec(1), 1, 0).is_ok());
    }

    #[test]
    fn high_water_mark_recorded() {
        let mut buf = LogBufferModel::new(16);
        buf.try_push(rec(0), 40, 0).unwrap();
        buf.try_push(rec(1), 40, 0).unwrap();
        buf.pop().unwrap();
        assert_eq!(buf.stats().high_water_bits, 80);
        assert_eq!(buf.stats().entries, 2);
        assert_eq!(buf.stats().bits, 80);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = LogBufferModel::new(0);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut buf = LogBufferModel::new(64);
        buf.try_push(rec(7), 8, 3).unwrap();
        assert_eq!(buf.front().unwrap().record.pc, 7);
        assert_eq!(buf.len(), 1);
    }
}
