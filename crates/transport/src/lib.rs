//! Log transport between the application core and the lifeguard core.
//!
//! The paper transports the compressed log through the cache hierarchy; the
//! two cores are deliberately *not* synchronised and coordinate only through
//! the log buffer. This crate provides both views of that mechanism:
//!
//! * [`LogBufferModel`] — the deterministic timing model used by the
//!   co-simulation: a bounded byte-budget queue whose entries carry their
//!   production timestamps, giving exact back-pressure (producer stalls on
//!   full) and lag (consumer waits on empty) behaviour.
//! * [`live`] — a real single-producer/single-consumer channel (crossbeam)
//!   for the functional "live monitoring" mode, where application and
//!   lifeguard genuinely run on different OS threads.
//!
//! # Examples
//!
//! ```
//! use lba_record::EventRecord;
//! use lba_transport::LogBufferModel;
//!
//! let mut buf = LogBufferModel::new(64); // 64-byte buffer
//! let rec = EventRecord::alu(0x1000, 0, None, None, Some(1));
//! assert!(buf.try_push(rec, 40, 100).is_ok()); // 40 bits at t=100
//! let entry = buf.pop().expect("one entry queued");
//! assert_eq!(entry.ready_at, 100);
//! ```

pub mod live;
mod model;

pub use model::{BufferFullError, LogBufferModel, TimedEntry, TransportStats};
