//! Log transport between the application core and the lifeguard core.
//!
//! The paper transports the *compressed* log through the cache hierarchy;
//! the two cores are deliberately not synchronised and coordinate only
//! through the log buffer. Since the wire unit is a cache line, transport
//! here moves **frames** — cache-line-multiple byte buffers produced by
//! `lba_compress::FrameEncoder` — not individual records. The
//! [`LogChannel`] trait is the single contract both execution models drive:
//!
//! * [`ModeledFrameChannel`] — the deterministic timing model used by the
//!   co-simulation: a real encoder/decoder pair around [`LogBufferModel`],
//!   a bounded byte-budget frame queue whose entries carry their production
//!   timestamps, giving exact back-pressure (producer stalls on full) and
//!   lag (consumer waits on empty) behaviour.
//! * [`live::LiveFrameChannel`] — a real single-producer/single-consumer
//!   channel for the "live monitoring" mode, where application and
//!   lifeguard genuinely run on different OS threads and each frame is one
//!   queue operation (amortised over `records_per_frame` records).
//!
//! Consumption is frame-granular by default: [`LogChannel::pop_frame`]
//! lends a whole decoded frame out as one slice with a single `ready_at`
//! stamp, and the dispatch engine delivers it as a batch. The per-record
//! [`LogChannel::pop_record`] path is kept callable as the benchmark
//! baseline.
//!
//! # Examples
//!
//! ```
//! use lba_compress::FrameConfig;
//! use lba_record::EventRecord;
//! use lba_transport::{LogChannel, ModeledFrameChannel, PushOutcome};
//!
//! let mut ch = ModeledFrameChannel::new(4096, FrameConfig::default(), false);
//! let rec = EventRecord::alu(0x1000, 0, None, None, Some(1));
//! assert_eq!(ch.push_record(&rec, 100), PushOutcome::Buffered);
//! assert!(matches!(ch.flush(120), PushOutcome::Sealed { .. }));
//! let popped = ch.pop_record().expect("one record queued");
//! assert_eq!(popped.ready_at, 120); // visible when its frame shipped
//! ```

mod channel;
pub mod fault;
pub mod live;
mod model;
pub mod sink;
pub mod socket;

pub use channel::{
    shard_of, ChannelStats, EpochRoute, EpochRouter, LoadSample, LogChannel, PoppedFrame,
    PoppedRecord, PushOutcome,
};
pub use fault::{FaultInjector, FaultProfile, FaultSink, RetrySink};
pub use live::LiveFrameChannel;
pub use model::{
    modeled_channel, modeled_channel_set, BufferFullError, LogBufferModel, ModeledFrameChannel,
    TimedFrame, TransportStats,
};
pub use sink::{
    ChannelTee, FrameSink, FrameSource, SealedFrame, SinkError, StreamSink, StreamSource, TeeSink,
    VecSink,
};
pub use socket::{socket_pair, SocketError, SocketSender, SocketSink, SocketSource, WireStream};
