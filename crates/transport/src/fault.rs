//! Deterministic fault injection over the transport seam.
//!
//! The adaptive capture controller exists to survive transport overload —
//! so its tests, benchmarks and regression suites need overload *on
//! demand*, reproducibly. This module injects three fault families at the
//! two seams the transport already exposes:
//!
//! * [`FaultInjector`] wraps any [`LogChannel`] and stalls the consumer on
//!   a deterministic schedule (every `stall_period` pops, the next
//!   `stall_burst` pops yield nothing), modelling a lifeguard core that
//!   falls behind. The injection is *liveness-preserving*: while the
//!   producer has a parked frame the channel is already under real
//!   back-pressure and the run loop must drain to make progress, so the
//!   injector passes those pops through untouched.
//! * [`FrameReceiver::set_drag`](crate::live::FrameReceiver::set_drag) is
//!   the live-thread analogue: the consumer burns spin cycles per frame,
//!   so the queue genuinely fills and the producer's
//!   [`LoadSample`] climbs.
//! * [`FaultSink`] wraps any [`FrameSink`] with seeded transient write
//!   failures (a probability per frame, in failure bursts of a configured
//!   length); [`RetrySink`] composes on top with bounded retry and spin
//!   backoff, which is how the flight recorder rides out transient sink
//!   faults without losing frames.
//!
//! Everything is seeded and deterministic — the same [`FaultProfile`]
//! produces the same fault schedule, so a failure found under injection
//! replays exactly.

use lba_record::EventRecord;

use crate::channel::{
    ChannelStats, LoadSample, LogChannel, PoppedFrame, PoppedRecord, PushOutcome,
};
use crate::sink::{FrameSink, SealedFrame, SinkError};

/// A deterministic fault schedule, shared by the channel and sink
/// injectors so one profile describes one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    /// Seed for the injector's private RNG (sink failures only — the
    /// consumer-stall schedule is periodic, not random, so throughput
    /// comparisons see identical drain patterns).
    pub seed: u64,
    /// Modeled consumer stall: after every `stall_period` successful
    /// pops, the next [`stall_burst`](Self::stall_burst) pops yield
    /// nothing. Zero disables the stall schedule.
    pub stall_period: u32,
    /// Consecutive pops refused per stall episode.
    pub stall_burst: u32,
    /// Live consumer drag: spin iterations burned per received frame
    /// (applied via [`FrameReceiver::set_drag`]; carried here so one
    /// profile configures both execution models). Zero disables.
    ///
    /// [`FrameReceiver::set_drag`]: crate::live::FrameReceiver::set_drag
    pub drain_drag: u32,
    /// Per-frame probability (in permille) that a sink write fails
    /// transiently. Zero disables sink faults.
    pub sink_fail_permille: u32,
    /// Consecutive failures per triggered sink-fault episode — the
    /// injected failure's "duration", which bounded retry must outlast.
    pub sink_fail_burst: u32,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: 0x5eed_f417,
            stall_period: 0,
            stall_burst: 0,
            drain_drag: 0,
            sink_fail_permille: 0,
            sink_fail_burst: 0,
        }
    }
}

impl FaultProfile {
    /// The canonical slow-drain profile the degradation benchmarks and
    /// regression tests inject: every 8 pops the consumer refuses the
    /// next 24 (a 3:1 overload), and live consumers drag 2000 spins per
    /// frame.
    #[must_use]
    pub fn slow_drain(seed: u64) -> Self {
        FaultProfile {
            seed,
            stall_period: 8,
            stall_burst: 24,
            drain_drag: 2000,
            sink_fail_permille: 0,
            sink_fail_burst: 0,
        }
    }

    /// A flaky-sink profile: roughly one frame in ten hits a transient
    /// write failure lasting `burst` attempts.
    #[must_use]
    pub fn flaky_sink(seed: u64, burst: u32) -> Self {
        FaultProfile {
            seed,
            sink_fail_permille: 100,
            sink_fail_burst: burst,
            ..FaultProfile::default()
        }
    }

    /// Whether the profile injects any fault at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.stall_period == 0 && self.drain_drag == 0 && self.sink_fail_permille == 0
    }
}

/// SplitMix64 — a tiny deterministic generator; statistical quality is
/// irrelevant here, reproducibility is everything.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn permille(&mut self) -> u32 {
        (self.next() % 1000) as u32
    }
}

/// A [`LogChannel`] wrapper that injects deterministic consumer stalls
/// (see the module docs). Push-side calls pass straight through — faults
/// model a slow *drain*, never a lossy capture.
#[derive(Debug)]
pub struct FaultInjector<C> {
    inner: C,
    profile: FaultProfile,
    /// Successful pops since the last stall episode.
    pops: u64,
    /// Pops still to refuse in the current stall episode.
    stall_left: u32,
    /// Total pops refused — the experiment's injected-fault ledger.
    stalled_pops: u64,
}

impl<C: LogChannel> FaultInjector<C> {
    /// Wraps `inner` under `profile`'s stall schedule.
    #[must_use]
    pub fn new(inner: C, profile: FaultProfile) -> Self {
        FaultInjector {
            inner,
            profile,
            pops: 0,
            stall_left: 0,
            stalled_pops: 0,
        }
    }

    /// The wrapped channel.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The wrapped channel, mutably — for channel-specific calls
    /// (tee installation, widen-aware helpers) the trait does not carry.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// Unwraps the injector.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Total pops the injector refused.
    #[must_use]
    pub fn stalled_pops(&self) -> u64 {
        self.stalled_pops
    }

    /// Whether this pop should be refused. Never stalls while a frame is
    /// parked: the producer is already blocked on real back-pressure and
    /// the run loop drains through pops — refusing them would deadlock
    /// the co-simulation instead of slowing it.
    fn stall_gate(&mut self) -> bool {
        if self.profile.stall_period == 0 || self.inner.has_parked() {
            return false;
        }
        if self.stall_left > 0 {
            self.stall_left -= 1;
            self.stalled_pops += 1;
            return true;
        }
        self.pops += 1;
        if self
            .pops
            .is_multiple_of(u64::from(self.profile.stall_period))
        {
            // The period-th successful pop arms the episode: the *next*
            // `stall_burst` pops are refused.
            self.stall_left = self.profile.stall_burst;
        }
        false
    }
}

impl<C: LogChannel> LogChannel for FaultInjector<C> {
    fn push_record(&mut self, record: &EventRecord, now: u64) -> PushOutcome {
        self.inner.push_record(record, now)
    }

    fn flush(&mut self, now: u64) -> PushOutcome {
        self.inner.flush(now)
    }

    fn pop_record(&mut self) -> Option<PoppedRecord> {
        if self.stall_gate() {
            return None;
        }
        self.inner.pop_record()
    }

    fn pop_frame(&mut self) -> Option<PoppedFrame<'_>> {
        if self.stall_gate() {
            return None;
        }
        self.inner.pop_frame()
    }

    fn has_parked(&self) -> bool {
        self.inner.has_parked()
    }

    fn drained(&self) -> bool {
        self.inner.drained()
    }

    fn retry_parked(&mut self, now: u64) -> Option<u64> {
        self.inner.retry_parked(now)
    }

    fn stats(&self) -> ChannelStats {
        self.inner.stats()
    }

    fn load_sample(&self) -> LoadSample {
        self.inner.load_sample()
    }

    fn mark_degraded(&mut self, on: bool) {
        self.inner.mark_degraded(on);
    }
}

/// A [`FrameSink`] wrapper that injects seeded transient write failures.
#[derive(Debug)]
pub struct FaultSink<S> {
    inner: S,
    rng: SplitMix,
    fail_permille: u32,
    fail_burst: u32,
    /// Failures still to serve in the current episode.
    burst_left: u32,
    /// Total injected failures.
    injected: u64,
}

impl<S: FrameSink> FaultSink<S> {
    /// Wraps `inner` under `profile`'s sink-failure schedule.
    #[must_use]
    pub fn new(inner: S, profile: &FaultProfile) -> Self {
        FaultSink {
            inner,
            rng: SplitMix(profile.seed),
            fail_permille: profile.sink_fail_permille,
            fail_burst: profile.sink_fail_burst.max(1),
            burst_left: 0,
            injected: 0,
        }
    }

    /// Total write failures injected so far.
    #[must_use]
    pub fn injected_failures(&self) -> u64 {
        self.injected
    }

    /// Unwraps the sink.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: FrameSink> FrameSink for FaultSink<S> {
    fn put_frame(&mut self, frame: &SealedFrame<'_>) -> Result<(), SinkError> {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.injected += 1;
            return Err("injected transient sink failure (continuing burst)".into());
        }
        if self.fail_permille > 0 && self.rng.permille() < self.fail_permille {
            self.burst_left = self.fail_burst - 1;
            self.injected += 1;
            return Err("injected transient sink failure".into());
        }
        self.inner.put_frame(frame)
    }

    fn finish_sink(&mut self) -> Result<(), SinkError> {
        self.inner.finish_sink()
    }
}

/// Bounded retry with spin backoff over any [`FrameSink`] — the flight
/// recorder's defence against transient sink failures. A frame is retried
/// up to `max_retries` times (with an escalating pause between attempts);
/// only a failure outlasting every retry propagates, at which point the
/// channel tee latches it and stops mirroring as before.
#[derive(Debug)]
pub struct RetrySink<S> {
    inner: S,
    max_retries: u32,
    /// Retries actually spent (successful recoveries included).
    retries: u64,
}

impl<S: FrameSink> RetrySink<S> {
    /// Wraps `inner`, retrying each failed frame up to `max_retries`
    /// times.
    #[must_use]
    pub fn new(inner: S, max_retries: u32) -> Self {
        RetrySink {
            inner,
            max_retries,
            retries: 0,
        }
    }

    /// Retries spent over the sink's lifetime.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Unwraps the sink.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: FrameSink> FrameSink for RetrySink<S> {
    fn put_frame(&mut self, frame: &SealedFrame<'_>) -> Result<(), SinkError> {
        let mut last = match self.inner.put_frame(frame) {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        for attempt in 0..self.max_retries {
            // Escalating pause: transient faults (another thread holding
            // the disk, a queue hiccup) usually clear within microseconds.
            for _ in 0..(1u32 << attempt.min(10)) {
                std::hint::spin_loop();
            }
            self.retries += 1;
            match self.inner.put_frame(frame) {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn finish_sink(&mut self) -> Result<(), SinkError> {
        self.inner.finish_sink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModeledFrameChannel;
    use crate::sink::VecSink;
    use lba_compress::FrameConfig;

    fn rec(i: u64) -> EventRecord {
        EventRecord::load(0x1000, 0, Some(1), None, 0x4000_0000 + i * 8, 8)
    }

    fn config(records_per_frame: usize) -> FrameConfig {
        FrameConfig {
            records_per_frame,
            compress: true,
        }
    }

    #[test]
    fn stall_schedule_is_periodic_and_deterministic() {
        let profile = FaultProfile {
            stall_period: 4,
            stall_burst: 2,
            ..FaultProfile::default()
        };
        let run = || {
            let inner = ModeledFrameChannel::new(1 << 16, config(2), false);
            let mut ch = FaultInjector::new(inner, profile);
            for i in 0..32 {
                ch.push_record(&rec(i), i);
            }
            ch.flush(100);
            let mut pattern = Vec::new();
            let mut seen = 0;
            while seen < 32 {
                match ch.pop_record() {
                    Some(_) => {
                        seen += 1;
                        pattern.push(true);
                    }
                    None => pattern.push(false),
                }
            }
            (pattern, ch.stalled_pops())
        };
        let (a, stalled_a) = run();
        let (b, stalled_b) = run();
        assert_eq!(a, b, "same profile, same schedule");
        assert_eq!(stalled_a, stalled_b);
        assert!(stalled_a > 0, "the schedule must actually fire");
        // Every 4 successful pops are followed by 2 refusals.
        assert_eq!(&a[0..6], &[true, true, true, true, false, false]);
    }

    #[test]
    fn stalls_never_fire_while_frames_are_parked() {
        // One-line budget: the second sealed frame parks, and the run
        // loop's drain pops must all succeed or co-simulation deadlocks.
        let profile = FaultProfile {
            stall_period: 1,
            stall_burst: 1000,
            ..FaultProfile::default()
        };
        let inner = ModeledFrameChannel::new(64, config(2), false);
        let mut ch = FaultInjector::new(inner, profile);
        for i in 0..4 {
            ch.push_record(&rec(i), i);
        }
        assert!(ch.has_parked(), "second frame must park");
        assert!(
            ch.pop_record().is_some(),
            "drain pops pass through while parked"
        );
        assert!(ch.pop_record().is_some());
        assert!(ch.retry_parked(10).is_some());
        assert!(!ch.has_parked());
        // No longer parked: the first pop succeeds (arming the episode),
        // then the schedule fires again.
        assert!(ch.pop_record().is_some());
        assert!(ch.pop_record().is_none(), "stall resumes once unparked");
    }

    #[test]
    fn quiet_profile_is_transparent() {
        let inner = ModeledFrameChannel::new(1 << 16, config(4), true);
        let mut ch = FaultInjector::new(inner, FaultProfile::default());
        assert!(FaultProfile::default().is_quiet());
        for i in 0..16 {
            ch.push_record(&rec(i), i);
        }
        ch.flush(20);
        let mut seen = 0;
        while ch.pop_record().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 16);
        assert_eq!(ch.stalled_pops(), 0);
    }

    #[test]
    fn retry_outlasts_bounded_sink_fault_bursts() {
        let profile = FaultProfile {
            seed: 7,
            sink_fail_permille: 100,
            sink_fail_burst: 3,
            ..FaultProfile::default()
        };
        let fault = FaultSink::new(VecSink::default(), &profile);
        // Retry budget generously exceeds the burst length (retries can
        // land on a freshly rolled episode and must outlast that too).
        let mut sink = RetrySink::new(fault, 12);
        let image = vec![0u8; 64];
        for i in 0..200u64 {
            sink.put_frame(&SealedFrame {
                bytes: &image,
                records: 4,
                sealed_at: i,
            })
            .expect("bounded retry must outlast the burst");
        }
        sink.finish_sink().unwrap();
        assert!(sink.retries() > 0, "faults must actually have fired");
        let fault = sink.into_inner();
        assert!(fault.injected_failures() > 0);
        let inner = fault.into_inner();
        assert_eq!(inner.frames.len(), 200, "no frame lost");
        assert!(inner.finished);
    }

    #[test]
    fn retry_exhaustion_propagates_the_error() {
        let profile = FaultProfile {
            seed: 7,
            sink_fail_permille: 1000, // every frame faults
            sink_fail_burst: 10,
            ..FaultProfile::default()
        };
        let fault = FaultSink::new(VecSink::default(), &profile);
        let mut sink = RetrySink::new(fault, 2); // burst outlasts retries
        let image = vec![0u8; 64];
        let err = sink
            .put_frame(&SealedFrame {
                bytes: &image,
                records: 1,
                sealed_at: 0,
            })
            .unwrap_err();
        assert!(err.to_string().contains("injected"));
    }

    #[test]
    fn sink_fault_schedule_is_seed_deterministic() {
        let run = |seed: u64| {
            let profile = FaultProfile {
                seed,
                sink_fail_permille: 250,
                sink_fail_burst: 1,
                ..FaultProfile::default()
            };
            let mut sink = FaultSink::new(VecSink::default(), &profile);
            let image = vec![0u8; 64];
            let results: Vec<bool> = (0..64u64)
                .map(|i| {
                    sink.put_frame(&SealedFrame {
                        bytes: &image,
                        records: 1,
                        sealed_at: i,
                    })
                    .is_ok()
                })
                .collect();
            results
        };
        assert_eq!(run(42), run(42), "same seed, same failures");
        assert_ne!(run(42), run(43), "different seed, different failures");
    }
}
