//! Socket transport: sealed frames over a Unix-domain (TCP-ready) wire.
//!
//! The in-process transports ship frames between threads; this module
//! ships them between *processes* (and, by construction, between hosts):
//! the production topology where one monitored application fans frame
//! streams out to a pool of lifeguard workers. It plugs into the existing
//! [`FrameSink`]/[`FrameSource`] seam, so everything upstream of the wire
//! (encoder, capture controller, flight-recorder tee) and everything
//! downstream (decoder, dispatch, lifeguards) is unchanged.
//!
//! # Wire protocol
//!
//! A connection is one frame stream, framed exactly like the durable
//! `lbas/1` segment format (`lba_record::stream`) so torn wires and torn
//! recordings corrupt — and salvage — identically:
//!
//! ```text
//! hello (24 B): b"lbas/1\n\0" | codec version u32 | stream id u32 |
//!               credit window u32 | reserved u32        (producer→consumer)
//! frame record: 0x01 | seal timestamp u64 | record count u32 |
//!               payload length u32 | FNV-1a checksum u32 | payload
//! end record:   0x02 | total frame count u64
//! credit:       one 0x06 byte per drained frame         (consumer→producer)
//! ```
//!
//! All integers are little-endian. The wire is a plain byte stream over
//! any full-duplex socket — the [`WireStream`] trait is implemented for
//! both [`UnixStream`] and [`std::net::TcpStream`], so moving a worker to
//! another host is a connect call, not a protocol change.
//!
//! # Credit window: `buffer_bytes` semantics survive the wire
//!
//! The in-process channels bound in-flight frames by queue capacity, which
//! is how `LogConfig::buffer_bytes` back-pressure reaches the producer. A
//! kernel socket buffer would hide that bound, so the wire carries an
//! explicit **credit window**: the producer may have at most `window`
//! un-acknowledged frames outstanding; the consumer returns one credit per
//! frame it drains; a producer out of credits parks, exactly like a push
//! against a full queue. [`SocketSink::load_sample`] reports
//! outstanding-frames/window, so [`crate::LoadSample`]-driven adaptive
//! degradation keeps working end-to-end across the socket. A consumer that
//! stops returning credits is detected by the same stall-timeout discipline
//! as the live channel: the sink latches [`SocketSink::stalled`] instead
//! of spinning forever.
//!
//! # Examples
//!
//! ```
//! use lba_compress::FrameConfig;
//! use lba_record::EventRecord;
//! use lba_transport::socket::{socket_pair, SocketSender};
//! use lba_transport::FrameSource;
//!
//! let (sink, mut source) = socket_pair(0, 8).unwrap();
//! let mut tx = SocketSender::new(sink, FrameConfig::default());
//! for i in 0..100 {
//!     tx.push(&EventRecord::alu(0x1000 + i * 8, 0, None, None, None));
//! }
//! let stats = tx.finish().unwrap();
//! let mut frames = 0;
//! while let Some(_bytes) = source.next_frame_bytes().unwrap() {
//!     frames += 1;
//! }
//! assert_eq!(stats.frames, frames);
//! assert_eq!(source.stats().records, 100);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use lba_compress::{Frame, FrameConfig, FrameEncoder};
use lba_record::{payload_checksum, EventRecord};

use crate::channel::{ChannelStats, LoadSample};
use crate::sink::{ChannelTee, FrameSink, FrameSource, SealedFrame, SinkError};

/// The 8-byte stream identifier opening every connection — the same ident
/// the durable segment format uses, so `head -c8` tells you what is
/// talking on either wire.
const IDENT: [u8; 8] = *b"lbas/1\n\0";

/// Size of the connection hello (ident + codec version + stream id +
/// credit window + reserved word).
pub const SOCKET_HELLO_BYTES: usize = 24;

/// Record tags, shared with the segment format.
const TAG_FRAME: u8 = 0x01;
const TAG_END: u8 = 0x02;
/// The credit byte the consumer returns per drained frame (ASCII ACK).
const CREDIT: u8 = 0x06;

/// Fixed part of a frame record (tag + timestamp + record count + payload
/// length + checksum).
const FRAME_HEADER_BYTES: usize = 1 + 8 + 4 + 4 + 4;

/// How long a credit wait blocks per read before re-checking the stall
/// clock — the socket analogue of the live channel's spin-then-yield.
const CREDIT_POLL: Duration = Duration::from_millis(5);

/// A full-duplex byte stream the socket transport can run over.
///
/// Implemented for [`UnixStream`] (the in-machine deployment) and
/// [`std::net::TcpStream`] (the multi-host one) — both expose the same
/// read-timeout and non-blocking controls, which the credit protocol
/// needs. Nothing in the transport names a socket family beyond this
/// trait, which is what makes the protocol TCP-ready by construction.
pub trait WireStream: Read + Write + Send {
    /// Bounds how long a blocking read may wait; `None` restores blocking.
    ///
    /// # Errors
    ///
    /// The underlying socket option call's error.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Switches the stream between blocking and non-blocking reads.
    ///
    /// # Errors
    ///
    /// The underlying socket option call's error.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// A human-readable name for the peer, used in error messages.
    fn endpoint(&self) -> String;
}

impl WireStream for UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixStream::set_nonblocking(self, nonblocking)
    }
    fn endpoint(&self) -> String {
        match self.peer_addr() {
            Ok(addr) => match addr.as_pathname() {
                Some(path) => format!("uds:{}", path.display()),
                None => "uds:<unnamed>".to_string(),
            },
            Err(_) => "uds:<disconnected>".to_string(),
        }
    }
}

impl WireStream for std::net::TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        std::net::TcpStream::set_read_timeout(self, timeout)
    }
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        std::net::TcpStream::set_nonblocking(self, nonblocking)
    }
    fn endpoint(&self) -> String {
        match self.peer_addr() {
            Ok(addr) => format!("tcp:{addr}"),
            Err(_) => "tcp:<disconnected>".to_string(),
        }
    }
}

/// Everything that can go wrong on the socket wire. Every variant names
/// the endpoint involved and, where it matters, how many frames made it
/// across first — the same descriptive discipline as
/// [`lba_record::StreamError`].
#[derive(Debug)]
pub enum SocketError {
    /// An underlying socket operation failed.
    Io {
        /// Peer the operation addressed.
        endpoint: String,
        /// The OS error.
        source: io::Error,
    },
    /// The connection does not open with the `lbas/` identifier.
    NotAStream {
        /// Offending peer.
        endpoint: String,
    },
    /// The peer speaks an `lbas/` protocol version this side does not
    /// understand.
    UnknownVersion {
        /// Offending peer.
        endpoint: String,
        /// The version string found after `lbas/`.
        version: String,
    },
    /// The connection tore mid-record — the peer died or the wire dropped
    /// before the stream's End record.
    Torn {
        /// Peer whose stream tore.
        endpoint: String,
        /// Complete frames received before the tear (the salvageable
        /// prefix — the credit protocol guarantees these were whole).
        frames: u64,
    },
    /// The wire's bytes are internally inconsistent (bad tag, checksum
    /// mismatch, End-count disagreement).
    Corrupt {
        /// Offending peer.
        endpoint: String,
        /// Frame index at which the inconsistency was found.
        frame: u64,
        /// What exactly disagreed.
        detail: String,
    },
    /// The consumer stopped returning credits: the producer waited out
    /// the stall timeout with the window exhausted.
    Stalled {
        /// Peer that stopped draining.
        endpoint: String,
        /// The timeout that elapsed.
        timeout: Duration,
    },
}

impl fmt::Display for SocketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocketError::Io { endpoint, source } => {
                write!(f, "socket I/O error on {endpoint}: {source}")
            }
            SocketError::NotAStream { endpoint } => {
                write!(
                    f,
                    "{endpoint} did not open with the lbas/ identifier: not an LBA frame stream"
                )
            }
            SocketError::UnknownVersion { endpoint, version } => {
                write!(
                    f,
                    "{endpoint} speaks lbas/{version}; this side understands lbas/1"
                )
            }
            SocketError::Torn { endpoint, frames } => {
                write!(
                    f,
                    "connection to {endpoint} tore mid-stream after {frames} complete \
                     frame(s), before the End record (peer died or wire dropped)"
                )
            }
            SocketError::Corrupt {
                endpoint,
                frame,
                detail,
            } => {
                write!(
                    f,
                    "stream from {endpoint} is corrupt at frame {frame}: {detail}"
                )
            }
            SocketError::Stalled { endpoint, timeout } => {
                write!(
                    f,
                    "consumer {endpoint} returned no credit for {timeout:?} with the \
                     window exhausted: lifeguard worker stalled"
                )
            }
        }
    }
}

impl std::error::Error for SocketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SocketError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SocketError {
    fn io(endpoint: &str, source: io::Error) -> Self {
        SocketError::Io {
            endpoint: endpoint.to_string(),
            source,
        }
    }
}

/// Producer half of the socket transport: ships sealed frames over the
/// wire under the credit window. Implements [`FrameSink`], so it drops
/// into every seam a flight-recorder sink fits — including the live
/// channel's tee.
pub struct SocketSink<W: WireStream = UnixStream> {
    stream: W,
    endpoint: String,
    /// Maximum un-acknowledged frames in flight.
    window: u32,
    /// Frames shipped and credits received over the connection's life.
    sent: u64,
    acked: u64,
    /// Wire bits of each outstanding frame, oldest first — credits are
    /// FIFO, so popping the front converts a credit back into bits.
    outstanding_bits: VecDeque<u64>,
    inflight_bits: u64,
    stats: ChannelStats,
    /// How long a credit wait may block before the consumer is declared
    /// stalled; `None` waits forever.
    stall_timeout: Option<Duration>,
    /// Latched once a credit wait exceeded `stall_timeout`. Every later
    /// frame is discarded immediately, mirroring the live channel's
    /// [`crate::live::FrameSender`]: the run is reporting a fatal stall,
    /// so there is no consumer left worth waiting for.
    stalled: bool,
    /// Latched when the peer disappears (EOF on the credit channel or a
    /// broken-pipe write); later frames are discarded silently.
    consumer_gone: bool,
    finished: bool,
}

impl<W: WireStream> SocketSink<W> {
    /// Opens the producer side over `stream`: writes the connection hello
    /// (stream id, codec version, credit window) and returns the sink.
    ///
    /// `window` is the credit window in frames — derive it from the same
    /// budget as the live channel's queue capacity
    /// (`LogConfig::live_channel_frames`) and `buffer_bytes` back-pressure
    /// semantics survive the wire.
    ///
    /// # Errors
    ///
    /// [`SocketError::Io`] when the hello cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — a zero window could never ship.
    pub fn connect(
        stream: W,
        stream_id: u32,
        codec_version: u32,
        window: u32,
    ) -> Result<Self, SocketError> {
        assert!(window > 0, "socket credit window must be non-zero");
        let endpoint = stream.endpoint();
        let mut sink = SocketSink {
            stream,
            endpoint,
            window,
            sent: 0,
            acked: 0,
            outstanding_bits: VecDeque::new(),
            inflight_bits: 0,
            stats: ChannelStats::default(),
            stall_timeout: None,
            stalled: false,
            consumer_gone: false,
            finished: false,
        };
        let mut hello = [0u8; SOCKET_HELLO_BYTES];
        hello[0..8].copy_from_slice(&IDENT);
        hello[8..12].copy_from_slice(&codec_version.to_le_bytes());
        hello[12..16].copy_from_slice(&stream_id.to_le_bytes());
        hello[16..20].copy_from_slice(&window.to_le_bytes());
        sink.write_wire(&hello)?;
        Ok(sink)
    }

    /// Bounds how long a credit wait may block before the consumer is
    /// declared stalled (see [`stalled`](Self::stalled)). `None` restores
    /// the unbounded wait.
    pub fn set_stall_timeout(&mut self, timeout: Option<Duration>) {
        self.stall_timeout = timeout;
    }

    /// Whether a credit wait exceeded the stall timeout. Once set, the
    /// sink discards every further frame; the driver surfaces the
    /// condition as a run error, exactly like the live channel.
    #[must_use]
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// The producer-visible transport load: un-acknowledged frames against
    /// the credit window — the socket analogue of queued-frames/capacity,
    /// which is what keeps [`crate::LoadSample`]-driven adaptive
    /// degradation working across the wire.
    #[must_use]
    pub fn load_sample(&self) -> LoadSample {
        LoadSample {
            inflight: self.sent - self.acked,
            capacity: u64::from(self.window),
        }
    }

    /// Producer-side statistics over shipped frames, in the same shape as
    /// the in-process channels' so `LogStats` reads uniformly.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// The peer's name, as used in this sink's error messages.
    #[must_use]
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    fn write_wire(&mut self, bytes: &[u8]) -> Result<(), SocketError> {
        match self.stream.write_all(bytes) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {
                self.consumer_gone = true;
                Err(SocketError::Torn {
                    endpoint: self.endpoint.clone(),
                    frames: self.sent,
                })
            }
            Err(e) => Err(SocketError::io(&self.endpoint, e)),
        }
    }

    /// Consumes one credit per byte read. EOF means the peer is gone.
    fn absorb_credits(&mut self, buf: &[u8], n: usize) {
        for &b in &buf[..n] {
            debug_assert_eq!(b, CREDIT, "unexpected byte on the credit channel");
            self.acked += 1;
            if let Some(bits) = self.outstanding_bits.pop_front() {
                self.inflight_bits -= bits;
            }
        }
    }

    /// Drains any credits already on the wire without blocking, keeping
    /// the occupancy sample fresh — the ship path calls this before every
    /// frame, and a run loop may call it between ships so
    /// [`load_sample`](Self::load_sample) tracks the consumer's drain.
    ///
    /// # Errors
    ///
    /// [`SocketError::Io`] when the credit channel breaks.
    pub fn poll_credits(&mut self) -> Result<(), SocketError> {
        self.stream
            .set_nonblocking(true)
            .map_err(|e| SocketError::io(&self.endpoint, e))?;
        let mut buf = [0u8; 64];
        let outcome = loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.consumer_gone = true;
                    break Ok(());
                }
                Ok(n) => self.absorb_credits(&buf, n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) => break Err(SocketError::io(&self.endpoint, e)),
            }
        };
        self.stream
            .set_nonblocking(false)
            .map_err(|e| SocketError::io(&self.endpoint, e))?;
        outcome
    }

    /// Parks until at least one credit is free, honouring the stall
    /// timeout. Returns `false` when the frame should be discarded
    /// (consumer gone, or stall latched).
    fn wait_for_credit(&mut self) -> Result<bool, SocketError> {
        // The stall clock starts at the first exhausted-window check, so
        // the fast path never reads the OS clock.
        let mut stall_start: Option<Instant> = None;
        while self.sent - self.acked >= u64::from(self.window) {
            if self.consumer_gone {
                return Ok(false);
            }
            if let Some(limit) = self.stall_timeout {
                let start = stall_start.get_or_insert_with(Instant::now);
                if start.elapsed() >= limit {
                    self.stalled = true;
                    return Ok(false);
                }
            }
            self.stream
                .set_read_timeout(Some(CREDIT_POLL))
                .map_err(|e| SocketError::io(&self.endpoint, e))?;
            let mut buf = [0u8; 64];
            match self.stream.read(&mut buf) {
                Ok(0) => self.consumer_gone = true,
                Ok(n) => self.absorb_credits(&buf, n),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => {
                    let err = SocketError::io(&self.endpoint, e);
                    self.stream.set_read_timeout(None).ok();
                    return Err(err);
                }
            }
            self.stream
                .set_read_timeout(None)
                .map_err(|e| SocketError::io(&self.endpoint, e))?;
        }
        Ok(true)
    }

    /// Ships one sealed frame under the credit window.
    fn ship(&mut self, frame: &SealedFrame<'_>) -> Result<(), SocketError> {
        if self.stalled || self.consumer_gone || self.finished {
            // Mirror the live channel: once the consumer is written off,
            // discard instead of re-paying the timeout per frame (the
            // Drop-driven flush included). The first tear already
            // surfaced as an error.
            return Ok(());
        }
        self.poll_credits()?;
        if !self.wait_for_credit()? {
            if self.consumer_gone {
                return Err(SocketError::Torn {
                    endpoint: self.endpoint.clone(),
                    frames: self.sent,
                });
            }
            return Ok(()); // stall latched; driver reads `stalled()`
        }
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[0] = TAG_FRAME;
        header[1..9].copy_from_slice(&frame.sealed_at.to_le_bytes());
        header[9..13].copy_from_slice(&frame.records.to_le_bytes());
        #[allow(clippy::cast_possible_truncation)]
        header[13..17].copy_from_slice(&(frame.bytes.len() as u32).to_le_bytes());
        header[17..21].copy_from_slice(&payload_checksum(frame.bytes).to_le_bytes());
        self.write_wire(&header)?;
        self.write_wire(frame.bytes)?;
        let wire_bits = frame.wire_bits();
        self.sent += 1;
        self.outstanding_bits.push_back(wire_bits);
        self.inflight_bits += wire_bits;
        self.stats.records += u64::from(frame.records);
        self.stats.frames += 1;
        self.stats.wire_bits += wire_bits;
        self.stats.high_water_bits = self.stats.high_water_bits.max(self.inflight_bits);
        Ok(())
    }
}

impl<W: WireStream> FrameSink for SocketSink<W> {
    fn put_frame(&mut self, frame: &SealedFrame<'_>) -> Result<(), SinkError> {
        self.ship(frame).map_err(Into::into)
    }

    /// Writes the End record and flushes the wire. The connection stays
    /// open for late credits; dropping the sink closes it.
    fn finish_sink(&mut self) -> Result<(), SinkError> {
        if self.finished || self.consumer_gone {
            return Ok(());
        }
        let mut end = [0u8; 9];
        end[0] = TAG_END;
        end[1..9].copy_from_slice(&self.sent.to_le_bytes());
        self.write_wire(&end)?;
        self.stream
            .flush()
            .map_err(|e| SocketError::io(&self.endpoint, e))?;
        self.finished = true;
        Ok(())
    }
}

/// Consumer half of the socket transport: validates the hello, drains
/// frame records, and returns one credit per frame — a [`FrameSource`]
/// that a decoder/dispatch/lifeguard stack drives exactly like a replayed
/// recording.
#[derive(Debug)]
pub struct SocketSource<W: WireStream = UnixStream> {
    stream: W,
    endpoint: String,
    codec_version: u32,
    stream_id: u32,
    window: u32,
    /// Complete frames drained so far.
    frames: u64,
    stats: ChannelStats,
    finished: bool,
    /// `SalvagePrefix` analogue: when set, a torn wire ends the stream
    /// cleanly after its last complete frame instead of erroring, and the
    /// tear is reported via [`torn_tail`](Self::torn_tail).
    salvage: bool,
    torn_tail: Option<SocketError>,
}

impl<W: WireStream> SocketSource<W> {
    /// Opens the consumer side over `stream`: reads and validates the
    /// connection hello.
    ///
    /// # Errors
    ///
    /// [`SocketError::NotAStream`] when the peer does not open with the
    /// `lbas/` identifier, [`SocketError::UnknownVersion`] for a protocol
    /// version this side does not speak, [`SocketError::Io`] when the
    /// hello cannot be read.
    pub fn accept(stream: W) -> Result<Self, SocketError> {
        let endpoint = stream.endpoint();
        let mut source = SocketSource {
            stream,
            endpoint,
            codec_version: 0,
            stream_id: 0,
            window: 0,
            frames: 0,
            stats: ChannelStats::default(),
            finished: false,
            salvage: false,
            torn_tail: None,
        };
        let mut hello = [0u8; SOCKET_HELLO_BYTES];
        source.read_wire(&mut hello)?;
        if hello[0..5] != IDENT[0..5] {
            return Err(SocketError::NotAStream {
                endpoint: source.endpoint,
            });
        }
        let version_end = hello[5..8]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(8, |p| 5 + p);
        let version = String::from_utf8_lossy(&hello[5..version_end]).into_owned();
        if version != "1" {
            return Err(SocketError::UnknownVersion {
                endpoint: source.endpoint,
                version,
            });
        }
        source.codec_version = u32::from_le_bytes(hello[8..12].try_into().expect("4 bytes"));
        source.stream_id = u32::from_le_bytes(hello[12..16].try_into().expect("4 bytes"));
        source.window = u32::from_le_bytes(hello[16..20].try_into().expect("4 bytes"));
        Ok(source)
    }

    /// The codec version the producer announced in the hello — check it
    /// against the running decoder's, as replay does.
    #[must_use]
    pub fn codec_version(&self) -> u32 {
        self.codec_version
    }

    /// The stream id the producer announced (the shard index in the
    /// remote-workers topology).
    #[must_use]
    pub fn stream_id(&self) -> u32 {
        self.stream_id
    }

    /// The credit window the producer announced.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Consumer-side statistics over drained frames.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Salvage mode: a torn wire ends the stream after its last complete
    /// frame instead of erroring — the socket analogue of replay's
    /// `SalvagePrefix`. The credit protocol guarantees every frame served
    /// before the tear arrived whole (length + checksum verified), so the
    /// prefix is sound. The tear itself is kept in
    /// [`torn_tail`](Self::torn_tail).
    pub fn set_salvage(&mut self, on: bool) {
        self.salvage = on;
    }

    /// The tear a salvaged stream ended on, if any.
    #[must_use]
    pub fn torn_tail(&self) -> Option<&SocketError> {
        self.torn_tail.as_ref()
    }

    /// The peer's name, as used in this source's error messages.
    #[must_use]
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    fn read_wire(&mut self, buf: &mut [u8]) -> Result<(), SocketError> {
        match self.stream.read_exact(buf) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(SocketError::Torn {
                endpoint: self.endpoint.clone(),
                frames: self.frames,
            }),
            Err(e) => Err(SocketError::io(&self.endpoint, e)),
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> SocketError {
        SocketError::Corrupt {
            endpoint: self.endpoint.clone(),
            frame: self.frames,
            detail: detail.into(),
        }
    }

    fn next_wire_frame(&mut self) -> Result<Option<Vec<u8>>, SocketError> {
        if self.finished {
            return Ok(None);
        }
        let mut tag = [0u8; 1];
        self.read_wire(&mut tag)?;
        match tag[0] {
            TAG_FRAME => {
                let mut header = [0u8; FRAME_HEADER_BYTES - 1];
                self.read_wire(&mut header)?;
                let records = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
                let len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
                let sum = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
                let mut payload = vec![0u8; len];
                self.read_wire(&mut payload)?;
                if payload_checksum(&payload) != sum {
                    return Err(self.corrupt("frame payload checksum mismatch"));
                }
                self.frames += 1;
                self.stats.records += u64::from(records);
                self.stats.frames += 1;
                self.stats.wire_bits += payload.len() as u64 * 8;
                // Return the credit *after* the frame is whole: a credit
                // promises the producer this slot of the window is truly
                // free, which is what makes the salvaged prefix sound.
                if let Err(e) = self.stream.write_all(&[CREDIT]) {
                    // A producer that already left does not need credits.
                    if e.kind() != io::ErrorKind::BrokenPipe {
                        return Err(SocketError::io(&self.endpoint, e));
                    }
                }
                Ok(Some(payload))
            }
            TAG_END => {
                let mut count = [0u8; 8];
                self.read_wire(&mut count)?;
                let count = u64::from_le_bytes(count);
                if count != self.frames {
                    return Err(self.corrupt(format!(
                        "End record says {count} frames, wire carried {}",
                        self.frames
                    )));
                }
                self.finished = true;
                Ok(None)
            }
            other => Err(self.corrupt(format!("unknown record tag {other:#04x}"))),
        }
    }
}

impl<W: WireStream> FrameSource for SocketSource<W> {
    fn next_frame_bytes(&mut self) -> Result<Option<Vec<u8>>, SinkError> {
        match self.next_wire_frame() {
            Ok(frame) => Ok(frame),
            Err(err @ SocketError::Torn { .. }) if self.salvage => {
                self.finished = true;
                self.torn_tail = Some(err);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }
}

/// A connected producer/consumer pair over an anonymous Unix-domain
/// socket pair — the in-machine deployment, and the shape every remote
/// worker uses (a listener-accepted stream drops into the same types).
///
/// `stream_id` names the shard; `window` is the credit window in frames.
/// The codec version announced is `lba_compress::CODEC_VERSION`.
///
/// # Errors
///
/// [`SocketError::Io`] when the socket pair cannot be created, plus any
/// hello exchange error.
pub fn socket_pair(
    stream_id: u32,
    window: u32,
) -> Result<(SocketSink<UnixStream>, SocketSource<UnixStream>), SocketError> {
    let (a, b) = UnixStream::pair().map_err(|e| SocketError::io("uds:<socketpair>", e))?;
    let sink = SocketSink::connect(a, stream_id, lba_compress::CODEC_VERSION, window)?;
    let source = SocketSource::accept(b)?;
    Ok((sink, source))
}

/// Record-level producer over a [`SocketSink`]: owns the compressor, so
/// its sealed frames are byte-identical to the in-process live channel's
/// — the same [`FrameEncoder`] over the same record stream. The API
/// mirrors [`crate::live::FrameSender`], which is what lets the
/// remote-workers run mode reuse the sharded producer link unchanged.
pub struct SocketSender<W: WireStream = UnixStream> {
    encoder: FrameEncoder,
    sink: SocketSink<W>,
    /// Optional mirror of every shipped frame into a [`FrameSink`] (the
    /// flight recorder), exactly like the live channel's tee.
    tee: ChannelTee,
    /// First wire error, latched: the push path cannot surface errors
    /// (it mirrors the infallible channel push), so the driver collects
    /// it via [`take_error`](Self::take_error) after the run.
    error: Option<SocketError>,
}

impl<W: WireStream> SocketSender<W> {
    /// Wraps `sink` with a fresh encoder.
    #[must_use]
    pub fn new(sink: SocketSink<W>, config: FrameConfig) -> Self {
        SocketSender {
            encoder: FrameEncoder::new(config),
            sink,
            tee: ChannelTee::default(),
            error: None,
        }
    }

    /// Mirrors every subsequently shipped frame into `sink` — the
    /// flight-recorder hook, identical to the live channel's.
    pub fn tee_into(&mut self, sink: Box<dyn FrameSink + Send>) {
        self.tee.install(sink);
    }

    /// Takes the tee sink back (for finishing), or reports the first
    /// mirror error if the sink failed mid-run.
    ///
    /// # Errors
    ///
    /// The first error a mirror write hit.
    pub fn take_tee(&mut self) -> Result<Option<Box<dyn FrameSink + Send>>, SinkError> {
        self.tee.take()
    }

    /// See [`SocketSink::set_stall_timeout`].
    pub fn set_stall_timeout(&mut self, timeout: Option<Duration>) {
        self.sink.set_stall_timeout(timeout);
    }

    /// See [`SocketSink::stalled`].
    #[must_use]
    pub fn stalled(&self) -> bool {
        self.sink.stalled()
    }

    /// See [`SocketSink::load_sample`].
    #[must_use]
    pub fn load_sample(&self) -> LoadSample {
        self.sink.load_sample()
    }

    /// See [`SocketSink::poll_credits`]; a broken credit channel is
    /// latched like a push-path error.
    pub fn poll_credits(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.sink.poll_credits() {
                self.error = Some(e);
            }
        }
    }

    /// Sets or clears the degraded-capture mark on subsequently sealed
    /// frames; callers flush first so the mark is frame-accurate.
    pub fn set_degraded(&mut self, on: bool) {
        self.encoder.set_degraded(on);
    }

    /// Appends one record; when it completes a frame, ships the frame
    /// over the wire under the credit window.
    pub fn push(&mut self, record: &EventRecord) {
        if let Some(frame) = self.encoder.push(record) {
            self.ship(&frame);
        }
    }

    /// Like [`push`](Self::push) with the epoch-end mark (see
    /// [`crate::live::FrameSender::push_epoch`]).
    pub fn push_epoch(&mut self, record: &EventRecord, end_epoch: bool) {
        if let Some(frame) = self.encoder.push_epoch(record, end_epoch) {
            self.ship(&frame);
        }
    }

    /// Seals and ships the open partial frame — call at syscalls for
    /// containment.
    pub fn flush(&mut self) {
        if let Some(frame) = self.encoder.flush() {
            self.ship(&frame);
        }
    }

    /// Producer-side statistics over shipped frames.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.sink.stats()
    }

    /// The first wire error the push path hit, if any.
    pub fn take_error(&mut self) -> Option<SocketError> {
        self.error.take()
    }

    fn ship(&mut self, frame: &Frame) {
        let sealed = SealedFrame {
            bytes: &frame.bytes,
            records: frame.records,
            sealed_at: 0,
        };
        self.tee.mirror(&sealed);
        if self.error.is_some() {
            return; // wire already torn; drop frames like a gone consumer
        }
        // The socket sink tracks payload bits itself only at frame
        // granularity; fold the encoder's exact payload accounting in so
        // `LogStats` compression ratios match the in-process channels.
        if let Err(e) = self.sink.ship(&sealed) {
            self.error = Some(e);
            return;
        }
        self.sink.stats.payload_bits += frame.payload_bits;
    }

    /// Finishes the stream: flushes the partial frame, writes the End
    /// record, and returns the final producer-side statistics.
    ///
    /// # Errors
    ///
    /// The first wire error the connection hit, including one latched by
    /// an earlier push.
    pub fn finish(mut self) -> Result<ChannelStats, SocketError> {
        self.flush();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink
            .finish_sink()
            .map_err(|e| match e.downcast::<SocketError>() {
                Ok(sock) => *sock,
                Err(other) => SocketError::Io {
                    endpoint: self.sink.endpoint.clone(),
                    source: io::Error::other(other.to_string()),
                },
            })?;
        Ok(self.sink.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_compress::{FrameDecoder, CODEC_VERSION};
    use std::thread;

    fn record(i: u64) -> EventRecord {
        EventRecord::load(0x1000 + i * 8, 0, None, Some(1), 0x10_0000 + i * 8, 8)
    }

    #[test]
    fn frames_round_trip_bit_identically_over_the_wire() {
        let config = FrameConfig::default();
        let (sink, mut source) = socket_pair(3, 8).unwrap();
        assert_eq!(source.stream_id(), 3);
        assert_eq!(source.codec_version(), CODEC_VERSION);
        assert_eq!(source.window(), 8);

        let mut tx = SocketSender::new(sink, config);
        let mut reference = FrameEncoder::new(config);
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for i in 0..1000 {
            tx.push(&record(i));
            if let Some(frame) = reference.push(&record(i)) {
                expected.push(frame.bytes);
            }
        }
        let consumer = thread::spawn(move || {
            let mut frames = Vec::new();
            while let Some(bytes) = source.next_frame_bytes().unwrap() {
                frames.push(bytes);
            }
            (frames, source.stats())
        });
        let stats = tx.finish().unwrap();
        if let Some(frame) = reference.flush() {
            expected.push(frame.bytes);
        }
        let (frames, rx_stats) = consumer.join().unwrap();
        assert_eq!(frames, expected, "socket wire must be byte-identical");
        assert_eq!(stats.records, 1000);
        assert_eq!(rx_stats.records, 1000);
        assert_eq!(stats.wire_bits, rx_stats.wire_bits);
        assert_eq!(stats.frames, frames.len() as u64);

        // And the frames decode back to the records.
        let mut decoder = FrameDecoder::new(config);
        let mut records = Vec::new();
        for bytes in &frames {
            decoder.decode_frame(bytes, &mut records).unwrap();
        }
        assert_eq!(records.len(), 1000);
        assert_eq!(records[7], record(7));
    }

    #[test]
    fn credit_window_bounds_inflight_and_stall_latches_instead_of_hanging() {
        let config = FrameConfig {
            records_per_frame: 4,
            ..FrameConfig::default()
        };
        let (mut sink, _source) = socket_pair(0, 2).unwrap();
        sink.set_stall_timeout(Some(Duration::from_millis(50)));
        let mut tx = SocketSender::new(sink, config);
        // The consumer never drains, so never returns a credit: the first
        // two frames ship on the window, the third must park and then
        // latch the stall instead of hanging.
        let start = Instant::now();
        for i in 0..64 {
            tx.push(&record(i));
        }
        assert!(tx.stalled(), "exhausted window with no credits must latch");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stall must latch once, not re-pay the timeout per frame"
        );
        let sample = tx.load_sample();
        assert_eq!(
            (sample.inflight, sample.capacity),
            (2, 2),
            "occupancy must report the window exhausted"
        );
        let stats = tx.stats();
        assert_eq!(stats.frames, 2, "only windowed frames may ship");
    }

    #[test]
    fn consumer_disconnect_is_a_descriptive_error_not_a_hang() {
        let config = FrameConfig {
            records_per_frame: 4,
            ..FrameConfig::default()
        };
        let (sink, source) = socket_pair(0, 2).unwrap();
        let mut tx = SocketSender::new(sink, config);
        drop(source); // worker dies mid-run
        let start = Instant::now();
        for i in 0..64 {
            tx.push(&record(i));
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a dead consumer must not hang the producer"
        );
        let err = tx.finish().unwrap_err();
        assert!(matches!(err, SocketError::Torn { .. }), "got: {err}");
        let msg = err.to_string();
        assert!(msg.contains("tore mid-stream"), "got: {msg}");
    }

    #[test]
    fn torn_wire_surfaces_descriptively_and_salvages_the_complete_prefix() {
        let config = FrameConfig {
            records_per_frame: 4,
            ..FrameConfig::default()
        };
        // Strict: the consumer reports the tear with the salvageable count.
        let (sink, mut source) = socket_pair(0, 16).unwrap();
        let mut tx = SocketSender::new(sink, config);
        for i in 0..12 {
            tx.push(&record(i)); // 3 complete frames
        }
        // Tear the wire mid-frame: a frame header with no payload behind it.
        let mut half = [0u8; FRAME_HEADER_BYTES];
        half[0] = TAG_FRAME;
        half[13..17].copy_from_slice(&512u32.to_le_bytes());
        tx.sink.write_wire(&half).unwrap();
        drop(tx); // producer dies without the End record
        for _ in 0..3 {
            assert!(source.next_frame_bytes().unwrap().is_some());
        }
        let err = source.next_frame_bytes().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("after 3 complete frame(s)"),
            "tear must name the salvageable prefix: {msg}"
        );

        // Salvage: the same tear ends the stream cleanly after the prefix.
        let (sink, mut source) = socket_pair(0, 16).unwrap();
        source.set_salvage(true);
        let mut tx = SocketSender::new(sink, config);
        for i in 0..12 {
            tx.push(&record(i));
        }
        let mut half = [0u8; FRAME_HEADER_BYTES];
        half[0] = TAG_FRAME;
        half[13..17].copy_from_slice(&512u32.to_le_bytes());
        tx.sink.write_wire(&half).unwrap();
        drop(tx);
        let mut salvaged = 0;
        while let Some(_bytes) = source.next_frame_bytes().unwrap() {
            salvaged += 1;
        }
        assert_eq!(salvaged, 3, "every complete frame salvages");
        let tail = source.torn_tail().expect("tear recorded");
        assert!(matches!(tail, SocketError::Torn { frames: 3, .. }));
    }

    #[test]
    fn corrupt_payload_and_end_count_are_descriptive_errors() {
        // Flip a payload byte on the wire by speaking the protocol by hand.
        let (mut a, b) = UnixStream::pair().unwrap();
        let consumer = thread::spawn(move || {
            let mut source = SocketSource::accept(b).unwrap();
            source.next_frame_bytes().unwrap_err().to_string()
        });
        let mut hello = [0u8; SOCKET_HELLO_BYTES];
        hello[0..8].copy_from_slice(&IDENT);
        hello[8..12].copy_from_slice(&CODEC_VERSION.to_le_bytes());
        hello[16..20].copy_from_slice(&4u32.to_le_bytes());
        a.write_all(&hello).unwrap();
        let payload = vec![0xABu8; 64];
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[0] = TAG_FRAME;
        header[9..13].copy_from_slice(&1u32.to_le_bytes());
        header[13..17].copy_from_slice(&64u32.to_le_bytes());
        header[17..21].copy_from_slice(&(payload_checksum(&payload) ^ 1).to_le_bytes());
        a.write_all(&header).unwrap();
        a.write_all(&payload).unwrap();
        let msg = consumer.join().unwrap();
        assert!(msg.contains("checksum mismatch"), "got: {msg}");

        // An End record whose count disagrees with the wire.
        let (mut a, b) = UnixStream::pair().unwrap();
        let consumer = thread::spawn(move || {
            let mut source = SocketSource::accept(b).unwrap();
            source.next_frame_bytes().unwrap_err().to_string()
        });
        a.write_all(&hello).unwrap();
        let mut end = [0u8; 9];
        end[0] = TAG_END;
        end[1..9].copy_from_slice(&7u64.to_le_bytes());
        a.write_all(&end).unwrap();
        let msg = consumer.join().unwrap();
        assert!(msg.contains("End record says 7"), "got: {msg}");
    }

    #[test]
    fn bad_hello_is_told_apart_from_a_future_version() {
        let (mut a, b) = UnixStream::pair().unwrap();
        a.write_all(b"GET / HTTP/1.1\r\nHost: no\r\n").unwrap();
        let err = SocketSource::accept(b).unwrap_err();
        assert!(matches!(err, SocketError::NotAStream { .. }), "got: {err}");

        let (mut a, b) = UnixStream::pair().unwrap();
        let mut hello = [0u8; SOCKET_HELLO_BYTES];
        hello[0..8].copy_from_slice(b"lbas/9\n\0");
        a.write_all(&hello).unwrap();
        let err = SocketSource::accept(b).unwrap_err();
        assert!(
            matches!(&err, SocketError::UnknownVersion { version, .. } if version == "9"),
            "got: {err}"
        );
        assert!(err.to_string().contains("lbas/9"));
    }

    #[test]
    fn credits_refresh_the_load_sample_as_the_consumer_drains() {
        let config = FrameConfig {
            records_per_frame: 4,
            ..FrameConfig::default()
        };
        let (sink, mut source) = socket_pair(0, 4).unwrap();
        let mut tx = SocketSender::new(sink, config);
        for i in 0..8 {
            tx.push(&record(i)); // 2 frames, window 4
        }
        assert_eq!(tx.load_sample().inflight, 2);
        for _ in 0..2 {
            source.next_frame_bytes().unwrap().unwrap();
        }
        // The credits are on the wire; the next push's poll absorbs them.
        for i in 8..12 {
            tx.push(&record(i));
        }
        // Give the poll a beat: credits travel a real socket.
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut inflight = tx.load_sample().inflight;
        while inflight > 1 && Instant::now() < deadline {
            thread::yield_now();
            tx.poll_credits();
            inflight = tx.load_sample().inflight;
        }
        assert!(
            inflight <= 2,
            "returned credits must lower the occupancy sample: {inflight}"
        );
    }
}
