//! The sink/source seam: where sealed frames *go* and where frames *come
//! from*, as first-class traits.
//!
//! Both execution models move sealed compressed frames — the modeled
//! channel through its timed buffer, the live channel through a lock-free
//! queue. [`FrameSink`] and [`FrameSource`] name those two directions so
//! that new backends (an on-disk flight recorder today, a socket tomorrow)
//! plug in without touching the capture or dispatch paths:
//!
//! * [`StreamSink`] / [`StreamSource`] adapt `lba_record`'s segmented
//!   `lbas/1` stream writer/reader to the seam, making any run durable.
//! * [`TeeSink`] fans one sealed frame out to two sinks, which is how a
//!   run *mirrors* its wire traffic into a recording while the normal
//!   in-memory transport keeps flowing — the tee costs one `memcpy`-free
//!   borrow per sealed frame plus whatever the secondary sink does.
//! * The channels themselves participate: both `ModeledFrameChannel` and
//!   the live `FrameSender` accept a tee sink
//!   ([`ModeledFrameChannel::tee_into`](crate::ModeledFrameChannel::tee_into),
//!   [`FrameSender::tee_into`](crate::live::FrameSender::tee_into)) and
//!   mirror every frame at the moment it seals, and the consumer halves
//!   implement [`FrameSource`] to drain raw sealed frames.
//!
//! Sink failures (disk full, permissions) must not take down the
//! monitored application: the channels latch the *first* sink error, stop
//! mirroring, and surface the error when the tee is taken back — the
//! run's own transport is never disturbed.

use lba_record::{SegmentReader, SegmentWriter, StreamSummary};

/// A sealed compressed frame, borrowed at the moment of sealing.
#[derive(Debug, Clone, Copy)]
pub struct SealedFrame<'a> {
    /// The frame's complete wire image (header, payload, line padding).
    pub bytes: &'a [u8],
    /// Records the frame carries.
    pub records: u32,
    /// Producer-core cycle at which the frame sealed; 0 on transports
    /// with no modeled clock (the live channel).
    pub sealed_at: u64,
}

impl SealedFrame<'_> {
    /// Wire bits the frame occupies on the transport.
    #[must_use]
    pub fn wire_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }
}

/// Errors a sink or source can report. Boxed so backends with different
/// failure domains (filesystem, sockets) share the seam.
pub type SinkError = Box<dyn std::error::Error + Send + Sync>;

/// Where sealed frames go.
pub trait FrameSink {
    /// Accepts one sealed frame.
    ///
    /// # Errors
    ///
    /// Backend-specific; a failing sink is broken and will not be offered
    /// further frames by the channels' tee machinery.
    fn put_frame(&mut self, frame: &SealedFrame<'_>) -> Result<(), SinkError>;

    /// Flushes and closes the sink cleanly. Called through the trait
    /// object so owners of a `Box<dyn FrameSink>` can finish without
    /// knowing the concrete type.
    ///
    /// # Errors
    ///
    /// Backend-specific.
    fn finish_sink(&mut self) -> Result<(), SinkError> {
        Ok(())
    }
}

/// Where sealed frames come from.
pub trait FrameSource {
    /// The next sealed frame's wire image, or `Ok(None)` at the clean end
    /// of the source.
    ///
    /// # Errors
    ///
    /// Backend-specific (e.g. a truncated or corrupt recording).
    fn next_frame_bytes(&mut self) -> Result<Option<Vec<u8>>, SinkError>;
}

/// The tee slot a channel embeds: an optional mirror sink plus a
/// first-error latch. Sink failures must never disturb the channel's own
/// transport, so [`mirror`](ChannelTee::mirror) swallows the error, stops
/// mirroring, and hands the error back when the tee is
/// [taken](ChannelTee::take).
#[derive(Default)]
pub struct ChannelTee {
    sink: Option<Box<dyn FrameSink + Send>>,
    error: Option<SinkError>,
}

impl std::fmt::Debug for ChannelTee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTee")
            .field("active", &self.sink.is_some())
            .field("errored", &self.error.is_some())
            .finish()
    }
}

impl ChannelTee {
    /// Installs (or replaces) the mirror sink and clears any latched error.
    pub fn install(&mut self, sink: Box<dyn FrameSink + Send>) {
        self.sink = Some(sink);
        self.error = None;
    }

    /// Offers one sealed frame to the mirror sink, latching the first
    /// error and dropping the sink on failure.
    pub fn mirror(&mut self, frame: &SealedFrame<'_>) {
        if let Some(sink) = self.sink.as_mut() {
            if let Err(e) = sink.put_frame(frame) {
                self.error = Some(e);
                self.sink = None;
            }
        }
    }

    /// Takes the sink back (to finish it), or reports the first mirror
    /// error if one was latched.
    ///
    /// # Errors
    ///
    /// The first error a [`mirror`](ChannelTee::mirror) call swallowed.
    pub fn take(&mut self) -> Result<Option<Box<dyn FrameSink + Send>>, SinkError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        Ok(self.sink.take())
    }

    /// Whether a sink is installed and healthy.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.sink.is_some()
    }
}

/// Fans each sealed frame out to two sinks — the adapter that lets any
/// run mode mirror its wire traffic into a recording.
#[derive(Debug)]
pub struct TeeSink<A, B> {
    first: A,
    second: B,
}

impl<A: FrameSink, B: FrameSink> TeeSink<A, B> {
    /// Builds a tee over two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// Takes the two sinks back.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: FrameSink, B: FrameSink> FrameSink for TeeSink<A, B> {
    fn put_frame(&mut self, frame: &SealedFrame<'_>) -> Result<(), SinkError> {
        self.first.put_frame(frame)?;
        self.second.put_frame(frame)
    }

    fn finish_sink(&mut self) -> Result<(), SinkError> {
        let first = self.first.finish_sink();
        let second = self.second.finish_sink();
        first?;
        second
    }
}

/// [`FrameSink`] over a segmented `lbas/1` stream: every sealed frame
/// becomes a durable stream record; [`finish_sink`](FrameSink::finish_sink)
/// closes the stream with its End record and captures the
/// [`StreamSummary`].
#[derive(Debug)]
pub struct StreamSink {
    writer: Option<SegmentWriter>,
    summary: Option<StreamSummary>,
}

impl StreamSink {
    /// Wraps a segment writer as a frame sink.
    #[must_use]
    pub fn new(writer: SegmentWriter) -> Self {
        StreamSink {
            writer: Some(writer),
            summary: None,
        }
    }

    /// The stream summary, available after a successful
    /// [`finish_sink`](FrameSink::finish_sink).
    #[must_use]
    pub fn summary(&self) -> Option<StreamSummary> {
        self.summary
    }
}

impl FrameSink for StreamSink {
    fn put_frame(&mut self, frame: &SealedFrame<'_>) -> Result<(), SinkError> {
        let writer = self.writer.as_mut().ok_or("stream sink already finished")?;
        writer
            .append(frame.sealed_at, frame.records, frame.bytes)
            .map_err(SinkError::from)
    }

    fn finish_sink(&mut self) -> Result<(), SinkError> {
        if let Some(writer) = self.writer.take() {
            self.summary = Some(writer.finish()?);
        }
        Ok(())
    }
}

/// [`FrameSource`] over a recorded `lbas/1` stream, yielding the sealed
/// frame images in their original seal order.
#[derive(Debug)]
pub struct StreamSource {
    reader: SegmentReader,
}

impl StreamSource {
    /// Wraps a segment reader as a frame source.
    #[must_use]
    pub fn new(reader: SegmentReader) -> Self {
        StreamSource { reader }
    }

    /// The codec version the recorded frames were sealed under.
    #[must_use]
    pub fn codec_version(&self) -> u32 {
        self.reader.codec_version()
    }
}

impl FrameSource for StreamSource {
    fn next_frame_bytes(&mut self) -> Result<Option<Vec<u8>>, SinkError> {
        match self.reader.next_frame() {
            Ok(frame) => Ok(frame.map(|f| f.bytes)),
            Err(e) => Err(SinkError::from(e)),
        }
    }
}

/// A sink that keeps every frame in memory — handy for tests and for
/// fan-out experiments where the secondary consumer is in-process.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The mirrored frames as `(sealed_at, records, wire image)`.
    pub frames: Vec<(u64, u32, Vec<u8>)>,
    /// Whether `finish_sink` ran.
    pub finished: bool,
}

impl FrameSink for VecSink {
    fn put_frame(&mut self, frame: &SealedFrame<'_>) -> Result<(), SinkError> {
        self.frames
            .push((frame.sealed_at, frame.records, frame.bytes.to_vec()));
        Ok(())
    }

    fn finish_sink(&mut self) -> Result<(), SinkError> {
        self.finished = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_record::StreamConfig;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "lba-sink-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn image(records: u32) -> Vec<u8> {
        let mut bytes = vec![0u8; 64];
        bytes[0..4].copy_from_slice(&records.to_le_bytes());
        bytes
    }

    #[test]
    fn tee_fans_out_to_both_sinks_and_finishes_both() {
        let mut tee = TeeSink::new(VecSink::default(), VecSink::default());
        let img = image(3);
        let frame = SealedFrame {
            bytes: &img,
            records: 3,
            sealed_at: 42,
        };
        tee.put_frame(&frame).unwrap();
        tee.finish_sink().unwrap();
        let (a, b) = tee.into_inner();
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.frames, vec![(42, 3, img)]);
        assert!(a.finished && b.finished);
    }

    #[test]
    fn stream_sink_round_trips_through_stream_source() {
        let dir = temp_dir("roundtrip");
        let writer = SegmentWriter::create(&dir, 0, 7, StreamConfig::default()).unwrap();
        let mut sink = StreamSink::new(writer);
        let images: Vec<Vec<u8>> = (1..=4u32).map(image).collect();
        for (i, img) in images.iter().enumerate() {
            sink.put_frame(&SealedFrame {
                bytes: img,
                records: i as u32 + 1,
                sealed_at: i as u64 * 10,
            })
            .unwrap();
        }
        sink.finish_sink().unwrap();
        assert_eq!(sink.summary().unwrap().frames, 4);
        // Finishing twice is fine; appending after a finish is an error.
        sink.finish_sink().unwrap();
        assert!(sink
            .put_frame(&SealedFrame {
                bytes: &images[0],
                records: 1,
                sealed_at: 0
            })
            .is_err());

        let reader = SegmentReader::open(&dir, 0).unwrap();
        let mut source = StreamSource::new(reader);
        assert_eq!(source.codec_version(), 7);
        for img in &images {
            assert_eq!(source.next_frame_bytes().unwrap().as_ref(), Some(img));
        }
        assert!(source.next_frame_bytes().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
