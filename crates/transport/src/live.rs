//! Real cross-thread log transport for live monitoring.
//!
//! The deterministic [`LogBufferModel`](crate::LogBufferModel) gives exact
//! timing; this module gives the *functional* equivalent with genuine
//! parallelism: the application machine runs on one OS thread pushing
//! records, the lifeguard consumes them on another. Integration tests
//! assert that both modes produce identical findings.
//!
//! # Examples
//!
//! ```
//! use lba_record::EventRecord;
//! use lba_transport::live;
//!
//! let (producer, consumer) = live::channel(1024);
//! let writer = std::thread::spawn(move || {
//!     for i in 0..100 {
//!         producer.send(EventRecord::alu(0x1000 + i * 8, 0, None, None, None));
//!     }
//!     // producer dropped here closes the channel
//! });
//! let mut seen = 0;
//! while let Some(_rec) = consumer.recv() {
//!     seen += 1;
//! }
//! writer.join().unwrap();
//! assert_eq!(seen, 100);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use crossbeam::queue::ArrayQueue;

use lba_record::EventRecord;

struct Shared {
    queue: ArrayQueue<EventRecord>,
    closed: AtomicBool,
}

/// The application-side handle: pushes records, blocking on back-pressure.
pub struct LiveProducer {
    shared: Arc<Shared>,
}

/// The lifeguard-side handle: pops records, blocking until data or close.
pub struct LiveConsumer {
    shared: Arc<Shared>,
}

/// Creates a bounded SPSC log channel holding up to `capacity_records`
/// in-flight records.
///
/// Dropping the [`LiveProducer`] closes the channel; [`LiveConsumer::recv`]
/// then drains the remaining records and returns `None`.
///
/// # Panics
///
/// Panics if `capacity_records` is zero.
#[must_use]
pub fn channel(capacity_records: usize) -> (LiveProducer, LiveConsumer) {
    assert!(capacity_records > 0, "live channel capacity must be non-zero");
    let shared = Arc::new(Shared {
        queue: ArrayQueue::new(capacity_records),
        closed: AtomicBool::new(false),
    });
    (LiveProducer { shared: Arc::clone(&shared) }, LiveConsumer { shared })
}

impl LiveProducer {
    /// Sends one record, spinning (with yields) while the buffer is full —
    /// the live analogue of the model's back-pressure stall.
    pub fn send(&self, record: EventRecord) {
        let mut rec = record;
        loop {
            match self.shared.queue.push(rec) {
                Ok(()) => return,
                Err(back) => {
                    rec = back;
                    thread::yield_now();
                }
            }
        }
    }
}

impl Drop for LiveProducer {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl LiveConsumer {
    /// Receives the next record, blocking until one is available. Returns
    /// `None` once the producer is dropped and the queue is drained.
    pub fn recv(&self) -> Option<EventRecord> {
        loop {
            if let Some(rec) = self.shared.queue.pop() {
                return Some(rec);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Drain anything that raced with the close flag.
                return self.shared.queue.pop();
            }
            thread::yield_now();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<EventRecord> {
        self.shared.queue.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u64) -> EventRecord {
        EventRecord::alu(pc, 0, None, None, None)
    }

    #[test]
    fn records_arrive_in_order() {
        let (tx, rx) = channel(8);
        let writer = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(rec(i));
            }
        });
        let mut expected = 0;
        while let Some(r) = rx.recv() {
            assert_eq!(r.pc, expected);
            expected += 1;
        }
        writer.join().unwrap();
        assert_eq!(expected, 1000);
    }

    #[test]
    fn small_buffer_exerts_back_pressure_without_loss() {
        let (tx, rx) = channel(1);
        let writer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(rec(i));
            }
        });
        let mut count = 0;
        while rx.recv().is_some() {
            count += 1;
        }
        writer.join().unwrap();
        assert_eq!(count, 100);
    }

    #[test]
    fn close_with_empty_queue_returns_none() {
        let (tx, rx) = channel(4);
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = channel(4);
        assert_eq!(rx.try_recv(), None);
        tx.send(rec(1));
        assert_eq!(rx.try_recv().map(|r| r.pc), Some(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = channel(0);
    }
}
