//! Real cross-thread log transport for live monitoring.
//!
//! The deterministic [`ModeledFrameChannel`](crate::ModeledFrameChannel)
//! gives exact timing; this module gives the *functional* equivalent with
//! genuine parallelism. Two transports live here:
//!
//! * [`channel`] — the legacy per-record SPSC queue: one queue operation
//!   per [`EventRecord`]. Kept as the uninstrumented baseline the framed
//!   channel is benchmarked against.
//! * [`frame_channel`] / [`LiveFrameChannel`] — the framed transport: the
//!   producer compresses records into cache-line-multiple frames
//!   ([`FrameEncoder`]) and ships each frame as one byte buffer, amortising
//!   a queue operation over `records_per_frame` records; the consumer
//!   decompresses on its own thread. This is the live analogue of the
//!   paper's compressed log moving through the cache hierarchy, and it
//!   measures real wire bytes per record.
//!
//! # Examples
//!
//! ```
//! use lba_compress::FrameConfig;
//! use lba_record::EventRecord;
//! use lba_transport::live;
//!
//! let (mut tx, mut rx) = live::frame_channel(16, FrameConfig::default());
//! let writer = std::thread::spawn(move || {
//!     for i in 0..100 {
//!         tx.push(&EventRecord::alu(0x1000 + i * 8, 0, None, None, None));
//!     }
//!     // tx dropped here: flushes the partial frame and closes the channel
//! });
//! let mut seen = 0;
//! while let Some(_rec) = rx.recv() {
//!     seen += 1;
//! }
//! writer.join().unwrap();
//! assert_eq!(seen, 100);
//! assert!(rx.stats().frames >= 1);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::queue::ArrayQueue;

use lba_compress::{Frame, FrameConfig, FrameDecoder, FrameEncoder};
use lba_record::EventRecord;

use crate::channel::{
    ChannelStats, LoadSample, LogChannel, PoppedFrame, PoppedRecord, PushOutcome,
};
use crate::sink::{ChannelTee, FrameSink, FrameSource, SealedFrame, SinkError};

/// Spin briefly before yielding to the scheduler: the peer is typically
/// mid-frame (microseconds away), so burning a few dozen pause
/// instructions is cheaper than a syscall per poll.
fn backoff(spins: &mut u32) {
    if *spins < 128 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        thread::yield_now();
    }
}

struct Shared {
    queue: ArrayQueue<EventRecord>,
    closed: AtomicBool,
    /// Set when the consumer is dropped, so a producer blocked on a full
    /// queue can bail out instead of spinning forever.
    consumer_gone: AtomicBool,
}

/// The application-side handle: pushes records, blocking on back-pressure.
pub struct LiveProducer {
    shared: Arc<Shared>,
}

/// The lifeguard-side handle: pops records, blocking until data or close.
pub struct LiveConsumer {
    shared: Arc<Shared>,
}

/// Creates a bounded SPSC log channel holding up to `capacity_records`
/// in-flight records — one queue operation per record.
///
/// Dropping the [`LiveProducer`] closes the channel; [`LiveConsumer::recv`]
/// then drains the remaining records and returns `None`.
///
/// # Panics
///
/// Panics if `capacity_records` is zero.
#[must_use]
pub fn channel(capacity_records: usize) -> (LiveProducer, LiveConsumer) {
    assert!(
        capacity_records > 0,
        "live channel capacity must be non-zero"
    );
    let shared = Arc::new(Shared {
        queue: ArrayQueue::new(capacity_records),
        closed: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
    });
    (
        LiveProducer {
            shared: Arc::clone(&shared),
        },
        LiveConsumer { shared },
    )
}

impl LiveProducer {
    /// Sends one record, spinning (with yields) while the buffer is full —
    /// the live analogue of the model's back-pressure stall. The record is
    /// dropped if the consumer has gone away (e.g. panicked), so the
    /// producer cannot hang.
    pub fn send(&self, record: EventRecord) {
        let mut rec = record;
        let mut spins = 0;
        loop {
            match self.shared.queue.push(rec) {
                Ok(()) => return,
                Err(back) => {
                    if self.shared.consumer_gone.load(Ordering::Acquire) {
                        return;
                    }
                    rec = back;
                    backoff(&mut spins);
                }
            }
        }
    }
}

impl Drop for LiveProducer {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl LiveConsumer {
    /// Receives the next record, blocking until one is available. Returns
    /// `None` once the producer is dropped and the queue is drained.
    pub fn recv(&self) -> Option<EventRecord> {
        let mut spins = 0;
        loop {
            if let Some(rec) = self.shared.queue.pop() {
                return Some(rec);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Drain anything that raced with the close flag.
                return self.shared.queue.pop();
            }
            backoff(&mut spins);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<EventRecord> {
        self.shared.queue.pop()
    }
}

impl Drop for LiveConsumer {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Ordering::Release);
    }
}

struct FrameShared {
    queue: ArrayQueue<Vec<u8>>,
    /// Spent wire buffers returned by the consumer for the producer to
    /// refill, sparing an allocation (and a cross-thread free) per frame.
    pool: ArrayQueue<Vec<u8>>,
    closed: AtomicBool,
    /// Set when the receiver is dropped, so a sender blocked on a full
    /// queue (including the flush in its own Drop) cannot hang.
    consumer_gone: AtomicBool,
    /// Wire bits currently queued (producer adds, consumer subtracts); a
    /// lone relaxed counter so the consumer's pop path stays lock-free.
    inflight_bits: AtomicU64,
    /// Cumulative statistics, written by the producer once per frame.
    stats: Mutex<ChannelStats>,
}

/// A sealed frame's metadata, captured before its byte buffer moves into
/// the queue so the accounting can be committed (or abandoned) after the
/// enqueue attempt resolves.
#[derive(Clone, Copy)]
struct ShipTicket {
    records: u32,
    payload_bits: u64,
    wire_bits: u64,
    /// In-flight wire bits the instant this frame was sealed (the
    /// high-water candidate).
    inflight_bits: u64,
}

impl FrameShared {
    fn snapshot(&self) -> ChannelStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Marks a sealed frame in flight and captures its accounting ticket.
    /// Must be called before the enqueue attempt (so the consumer's
    /// [`account_pop`](Self::account_pop) can never run first and underflow
    /// the counter); pair with [`commit_ship`](Self::commit_ship) once the
    /// frame is queued, or [`abort_ship`](Self::abort_ship) if it is
    /// discarded — cumulative statistics must only ever describe frames the
    /// consumer can actually receive.
    fn begin_ship(&self, frame: &Frame) -> ShipTicket {
        let wire_bits = frame.wire_bits();
        let inflight = self.inflight_bits.fetch_add(wire_bits, Ordering::Relaxed) + wire_bits;
        ShipTicket {
            records: frame.records,
            payload_bits: frame.payload_bits,
            wire_bits,
            inflight_bits: inflight,
        }
    }

    /// Folds a successfully enqueued frame into the cumulative statistics.
    fn commit_ship(&self, ticket: ShipTicket) {
        let mut guard = self.stats.lock().expect("stats lock");
        guard.records += u64::from(ticket.records);
        guard.frames += 1;
        guard.payload_bits += ticket.payload_bits;
        guard.wire_bits += ticket.wire_bits;
        guard.high_water_bits = guard.high_water_bits.max(ticket.inflight_bits);
    }

    /// Releases a discarded frame's in-flight occupancy without touching
    /// the cumulative statistics.
    fn abort_ship(&self, ticket: ShipTicket) {
        self.inflight_bits
            .fetch_sub(ticket.wire_bits, Ordering::Relaxed);
    }

    fn account_pop(&self, bytes: &[u8]) {
        self.inflight_bits
            .fetch_sub(bytes.len() as u64 * 8, Ordering::Relaxed);
    }
}

/// Producer half of the framed live channel: owns the compressor.
pub struct FrameSender {
    encoder: FrameEncoder,
    shared: Arc<FrameShared>,
    /// Optional mirror of every shipped frame into a [`FrameSink`] (the
    /// flight recorder); see [`tee_into`](Self::tee_into).
    tee: ChannelTee,
    /// How long [`ship`](Self::ship) may spin against a full queue before
    /// declaring the consumer stalled; `None` (the default) spins forever,
    /// the pre-timeout behaviour.
    stall_timeout: Option<Duration>,
    /// Latched once a ship attempt exceeded `stall_timeout`. Every later
    /// frame is discarded immediately — the run is reporting a fatal
    /// stall, so there is no consumer left worth waiting for.
    stalled: bool,
}

impl FrameSender {
    /// Mirrors every subsequently shipped frame into `sink` — the
    /// flight-recorder hook. Frames are mirrored before entering the
    /// queue, so the recording is the exact wire traffic in ship order
    /// with `sealed_at` 0 (the live transport has no modeled clock). A
    /// failing sink never disturbs the channel: the first error is
    /// latched, the sink dropped, and the error surfaces from
    /// [`take_tee`](Self::take_tee).
    pub fn tee_into(&mut self, sink: Box<dyn FrameSink + Send>) {
        self.tee.install(sink);
    }

    /// Takes the tee sink back (for finishing), or reports the first
    /// mirror error if the sink failed mid-run.
    ///
    /// # Errors
    ///
    /// The first error a mirror write hit.
    pub fn take_tee(&mut self) -> Result<Option<Box<dyn FrameSink + Send>>, SinkError> {
        self.tee.take()
    }

    /// Bounds how long a ship may spin against a full queue before the
    /// consumer is declared stalled (see [`stalled`](Self::stalled)).
    /// `None` restores the unbounded spin.
    pub fn set_stall_timeout(&mut self, timeout: Option<Duration>) {
        self.stall_timeout = timeout;
    }

    /// Whether a ship attempt exceeded the stall timeout. Once set, the
    /// sender discards every further frame; the driver surfaces the
    /// condition as a run error.
    #[must_use]
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// The producer-visible transport load: queued frames against the
    /// queue's slot capacity. One relaxed length read — cheap enough to
    /// sample on every capture-controller step.
    #[must_use]
    pub fn load_sample(&self) -> LoadSample {
        LoadSample {
            inflight: self.shared.queue.len() as u64,
            capacity: self.shared.queue.capacity() as u64,
        }
    }

    /// Sets or clears the degraded-capture mark on subsequently sealed
    /// frames; callers flush first so the mark is frame-accurate.
    pub fn set_degraded(&mut self, on: bool) {
        self.encoder.set_degraded(on);
    }

    /// Appends one record; when it completes a frame, ships the frame,
    /// spinning (with yields) while the queue is full.
    pub fn push(&mut self, record: &EventRecord) {
        if let Some(frame) = self.encoder.push(record) {
            self.ship(frame);
        }
    }

    /// Like [`push`](Self::push), but seals and ships the open frame
    /// immediately — with the epoch-end mark in its wire header — when
    /// `end_epoch` is set, so frames never straddle epoch boundaries (see
    /// [`EpochRouter`](crate::EpochRouter)). With `end_epoch` false this
    /// is exactly `push`.
    pub fn push_epoch(&mut self, record: &EventRecord, end_epoch: bool) {
        if let Some(frame) = self.encoder.push_epoch(record, end_epoch) {
            self.ship(frame);
        }
    }

    /// Hands a consumer-returned buffer to the encoder for the next frame.
    fn refill(&mut self) {
        if let Some(buf) = self.shared.pool.pop() {
            self.encoder.recycle(buf);
        }
    }

    /// Seals and ships the open partial frame — call at syscalls so the
    /// consumer sees every preceding record (containment), and rely on
    /// [`Drop`] for the end-of-program flush.
    pub fn flush(&mut self) {
        if let Some(frame) = self.encoder.flush() {
            self.ship(frame);
        }
    }

    /// Producer-side statistics over shipped frames.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.shared.snapshot()
    }

    fn ship(&mut self, frame: Frame) {
        if self.stalled {
            // A stall was already declared: the run is on its way to a
            // fatal error, so discard instead of re-paying the timeout on
            // every sealed frame (the Drop-driven flush included).
            return;
        }
        self.tee.mirror(&SealedFrame {
            bytes: &frame.bytes,
            records: frame.records,
            sealed_at: 0,
        });
        let ticket = self.shared.begin_ship(&frame);
        let mut bytes = frame.bytes;
        let mut spins = 0;
        // The stall clock starts at the first failed push, so the fast
        // path never reads the OS clock.
        let mut stall_start: Option<Instant> = None;
        loop {
            match self.shared.queue.push(bytes) {
                Ok(()) => break,
                Err(back) => {
                    if self.shared.consumer_gone.load(Ordering::Acquire) {
                        // Receiver dropped (e.g. panicked): discard rather
                        // than spin forever — and back the accounting out,
                        // so the statistics describe only frames that
                        // actually shipped.
                        self.shared.abort_ship(ticket);
                        return;
                    }
                    if let Some(limit) = self.stall_timeout {
                        let start = stall_start.get_or_insert_with(Instant::now);
                        if start.elapsed() >= limit {
                            // Consumer alive but not draining: latch the
                            // stall instead of spinning unboundedly. The
                            // frame is discarded with its accounting
                            // backed out, exactly like the
                            // consumer-gone path.
                            self.shared.abort_ship(ticket);
                            self.stalled = true;
                            return;
                        }
                    }
                    bytes = back;
                    backoff(&mut spins);
                }
            }
        }
        self.shared.commit_ship(ticket);
        self.refill();
    }
}

impl Drop for FrameSender {
    fn drop(&mut self) {
        self.flush();
        self.shared.closed.store(true, Ordering::Release);
    }
}

/// Consumer half of the framed live channel: owns the decompressor.
pub struct FrameReceiver {
    decoder: FrameDecoder,
    /// Decoded records of the current frame, served from `cursor`; the
    /// buffer is reused across frames to avoid a per-frame allocation.
    pending: Vec<EventRecord>,
    cursor: usize,
    /// Whether the most recently decoded frame carried the epoch-end mark.
    frame_epoch_end: bool,
    /// Fault injection: spin iterations burned before each frame receive,
    /// simulating a lifeguard core that drains slowly (see
    /// [`set_drag`](Self::set_drag)).
    drag: u32,
    shared: Arc<FrameShared>,
}

impl FrameReceiver {
    /// Fault injection: burn `spins` pause iterations before every frame
    /// receive, simulating a slow-draining consumer so the queue fills
    /// and the producer's [`LoadSample`] climbs. Zero (the default)
    /// disables the drag.
    pub fn set_drag(&mut self, spins: u32) {
        self.drag = spins;
    }

    /// Burns the configured drag (no-op when disabled).
    fn apply_drag(&self) {
        for _ in 0..self.drag {
            std::hint::spin_loop();
        }
    }

    /// Receives the next record, blocking until a frame arrives. Returns
    /// `None` once the producer is dropped and the queue is drained.
    ///
    /// # Panics
    ///
    /// Panics if a frame fails to decode — the producer is in-process, so
    /// corruption is a codec bug, not an I/O condition.
    pub fn recv(&mut self) -> Option<EventRecord> {
        self.recv_ref().copied()
    }

    /// Like [`recv`](Self::recv), but lends the record out of the decode
    /// buffer instead of copying it — for consumers (like the lifeguard
    /// dispatch) that only need `&EventRecord`.
    pub fn recv_ref(&mut self) -> Option<&EventRecord> {
        loop {
            if self.cursor < self.pending.len() {
                self.cursor += 1;
                return self.pending.get(self.cursor - 1);
            }
            let bytes = self.recv_frame()?;
            self.decode(&bytes);
            let _ = self.shared.pool.push(bytes); // return for reuse
        }
    }

    /// Receives a frame's worth of records as one slice, blocking until a
    /// frame arrives — the batch counterpart of [`recv`](Self::recv), one
    /// queue operation and one decode per `records_per_frame` records.
    /// Returns `None` once the producer is dropped and the queue drained.
    ///
    /// Mixing with [`recv`](Self::recv) is allowed: records already served
    /// record-by-record are not repeated.
    ///
    /// # Panics
    ///
    /// Panics if a frame fails to decode (see [`recv`](Self::recv)).
    pub fn recv_batch(&mut self) -> Option<&[EventRecord]> {
        if self.cursor >= self.pending.len() {
            let bytes = self.recv_frame()?;
            self.ingest(bytes);
        }
        Some(self.serve_rest())
    }

    /// Like [`recv_batch`](Self::recv_batch), but also reports whether the
    /// served frame carried the epoch-end mark — the consumer half of the
    /// epoch-parallel transport (see [`EpochRouter`](crate::EpochRouter)
    /// and [`FrameSender::push_epoch`]). Epoch workers drive this method
    /// exclusively, so every call serves exactly one frame and the flag
    /// describes that frame.
    pub fn recv_batch_epoch(&mut self) -> Option<(&[EventRecord], bool)> {
        if self.cursor >= self.pending.len() {
            let bytes = self.recv_frame()?;
            self.ingest(bytes);
        }
        let epoch_end = self.frame_epoch_end;
        Some((self.serve_rest(), epoch_end))
    }

    /// Decodes a received frame buffer and returns it to the buffer pool.
    fn ingest(&mut self, bytes: Vec<u8>) {
        self.decode(&bytes);
        let _ = self.shared.pool.push(bytes); // return for reuse
    }

    /// Hands out every decoded-but-unserved record as one slice.
    fn serve_rest(&mut self) -> &[EventRecord] {
        let start = self.cursor;
        self.cursor = self.pending.len();
        &self.pending[start..]
    }

    /// Non-blocking receive: `None` when no complete frame has arrived.
    pub fn try_recv(&mut self) -> Option<EventRecord> {
        loop {
            if let Some(rec) = self.next_pending() {
                return Some(rec);
            }
            self.apply_drag();
            let bytes = self.shared.queue.pop()?;
            self.shared.account_pop(&bytes);
            self.decode(&bytes);
            let _ = self.shared.pool.push(bytes); // return for reuse
        }
    }

    /// Channel statistics (complete once the producer has been dropped).
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.shared.snapshot()
    }

    #[inline]
    fn next_pending(&mut self) -> Option<EventRecord> {
        let rec = self.pending.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(rec)
    }

    fn recv_frame(&self) -> Option<Vec<u8>> {
        self.apply_drag();
        let mut spins = 0;
        loop {
            if let Some(bytes) = self.shared.queue.pop() {
                self.shared.account_pop(&bytes);
                return Some(bytes);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Drain anything that raced with the close flag.
                let bytes = self.shared.queue.pop()?;
                self.shared.account_pop(&bytes);
                return Some(bytes);
            }
            backoff(&mut spins);
        }
    }

    fn decode(&mut self, bytes: &[u8]) {
        // Drop only the consumed prefix: the unsplit channel can decode a
        // frame to make room while earlier records are still unread.
        self.pending.drain(..self.cursor);
        self.cursor = 0;
        self.frame_epoch_end = Frame::header_epoch_end(bytes);
        self.decoder
            .decode_frame(bytes, &mut self.pending)
            .unwrap_or_else(|e| panic!("live frame failed to decode: {e}"));
    }
}

impl Drop for FrameReceiver {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Ordering::Release);
    }
}

/// The consumer half as a raw frame drain: blocks for the next sealed
/// wire image, `Ok(None)` once the producer closed and the queue drained.
/// A raw drain bypasses the record-level decode — do not interleave with
/// [`recv`](FrameReceiver::recv) and friends mid-frame.
impl FrameSource for FrameReceiver {
    fn next_frame_bytes(&mut self) -> Result<Option<Vec<u8>>, SinkError> {
        Ok(self.recv_frame())
    }
}

/// Creates the framed SPSC channel holding up to `capacity_frames`
/// in-flight frames.
///
/// Dropping the [`FrameSender`] flushes the partial frame and closes the
/// channel; [`FrameReceiver::recv`] then drains what remains and returns
/// `None`.
///
/// # Panics
///
/// Panics if `capacity_frames` is zero.
#[must_use]
pub fn frame_channel(capacity_frames: usize, config: FrameConfig) -> (FrameSender, FrameReceiver) {
    assert!(
        capacity_frames > 0,
        "live channel capacity must be non-zero"
    );
    let shared = Arc::new(FrameShared {
        queue: ArrayQueue::new(capacity_frames),
        pool: ArrayQueue::new(capacity_frames),
        closed: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
        inflight_bits: AtomicU64::new(0),
        stats: Mutex::new(ChannelStats::default()),
    });
    (
        FrameSender {
            encoder: FrameEncoder::new(config),
            shared: Arc::clone(&shared),
            tee: ChannelTee::default(),
            stall_timeout: None,
            stalled: false,
        },
        FrameReceiver {
            decoder: FrameDecoder::new(config),
            pending: Vec::new(),
            cursor: 0,
            frame_epoch_end: false,
            drag: 0,
            shared,
        },
    )
}

/// Creates `shards` independent framed SPSC channels — the live-parallel
/// fan-out. Each pair is a [`frame_channel`] of its own: its own compressor
/// and decompressor (so predictor state never crosses shards and the shard
/// streams decode concurrently on different cores), its own frame queue of
/// `capacity_frames`, and its own [`ChannelStats`].
///
/// Routing records to shards is the caller's job; see
/// [`shard_of`](crate::shard_of) for the address-interleaved policy both
/// sharded run modes use.
///
/// # Panics
///
/// Panics if `shards` or `capacity_frames` is zero.
#[must_use]
pub fn shard_frame_channels(
    shards: usize,
    capacity_frames: usize,
    config: FrameConfig,
) -> (Vec<FrameSender>, Vec<FrameReceiver>) {
    assert!(shards > 0, "need at least one shard");
    (0..shards)
        .map(|_| frame_channel(capacity_frames, config))
        .unzip()
}

/// Both halves of the framed live channel as one [`LogChannel`].
///
/// [`split`](LiveFrameChannel::split) yields the two thread-safe halves for
/// the genuine two-thread pipeline; unsplit, the channel implements the
/// trait for single-threaded drivers (tests, benches, and any code written
/// against `dyn LogChannel`). In unsplit use a full queue is resolved by
/// decoding the oldest frame in place, so pushes never block.
pub struct LiveFrameChannel {
    // Field order matters: the receiver must drop before the sender so the
    // sender's flush-on-drop sees `consumer_gone` and cannot spin on a
    // full queue with nobody left to pop it.
    receiver: FrameReceiver,
    sender: FrameSender,
}

impl LiveFrameChannel {
    /// Creates the channel; see [`frame_channel`] for parameters.
    #[must_use]
    pub fn new(capacity_frames: usize, config: FrameConfig) -> Self {
        let (sender, receiver) = frame_channel(capacity_frames, config);
        LiveFrameChannel { sender, receiver }
    }

    /// Splits into the producer and consumer halves for cross-thread use.
    #[must_use]
    pub fn split(self) -> (FrameSender, FrameReceiver) {
        (self.sender, self.receiver)
    }

    /// Mirrors every subsequently shipped frame into `sink`; see
    /// [`FrameSender::tee_into`].
    pub fn tee_into(&mut self, sink: Box<dyn FrameSink + Send>) {
        self.sender.tee_into(sink);
    }

    /// Takes the tee sink back; see [`FrameSender::take_tee`].
    ///
    /// # Errors
    ///
    /// The first error a mirror write hit.
    pub fn take_tee(&mut self) -> Result<Option<Box<dyn FrameSink + Send>>, SinkError> {
        self.sender.take_tee()
    }

    fn ship_nonblocking(&mut self, frame: Frame) -> PushOutcome {
        let wire_bits = frame.wire_bits();
        self.sender.tee.mirror(&SealedFrame {
            bytes: &frame.bytes,
            records: frame.records,
            sealed_at: 0,
        });
        let ticket = self.sender.shared.begin_ship(&frame);
        let mut bytes = frame.bytes;
        loop {
            match self.sender.shared.queue.push(bytes) {
                Ok(()) => break,
                Err(back) => {
                    bytes = back;
                    // We own the consumer half: make room by decoding the
                    // oldest frame instead of spinning against ourselves.
                    let oldest = self
                        .sender
                        .shared
                        .queue
                        .pop()
                        .expect("full queue has a frame");
                    self.receiver.shared.account_pop(&oldest);
                    self.receiver.decode(&oldest);
                    let _ = self.receiver.shared.pool.push(oldest);
                }
            }
        }
        self.sender.shared.commit_ship(ticket);
        self.sender.refill();
        PushOutcome::Sealed { wire_bits }
    }
}

impl LogChannel for LiveFrameChannel {
    fn push_record(&mut self, record: &EventRecord, _now: u64) -> PushOutcome {
        match self.sender.encoder.push(record) {
            Some(frame) => self.ship_nonblocking(frame),
            None => PushOutcome::Buffered,
        }
    }

    fn flush(&mut self, _now: u64) -> PushOutcome {
        match self.sender.encoder.flush() {
            Some(frame) => self.ship_nonblocking(frame),
            None => PushOutcome::Buffered,
        }
    }

    fn pop_record(&mut self) -> Option<PoppedRecord> {
        self.receiver.try_recv().map(|record| PoppedRecord {
            record,
            ready_at: 0,
        })
    }

    fn pop_frame(&mut self) -> Option<PoppedFrame<'_>> {
        let rx = &mut self.receiver;
        if rx.cursor >= rx.pending.len() {
            // Non-blocking like pop_record: only a frame already queued.
            let bytes = rx.shared.queue.pop()?;
            rx.shared.account_pop(&bytes);
            rx.ingest(bytes);
        }
        let epoch_end = rx.frame_epoch_end;
        Some(PoppedFrame {
            records: rx.serve_rest(),
            ready_at: 0,
            epoch_end,
        })
    }

    fn has_parked(&self) -> bool {
        false // back-pressure is resolved inside push_record
    }

    fn retry_parked(&mut self, _now: u64) -> Option<u64> {
        None
    }

    fn stats(&self) -> ChannelStats {
        self.sender.shared.snapshot()
    }

    fn load_sample(&self) -> LoadSample {
        self.sender.load_sample()
    }

    fn mark_degraded(&mut self, on: bool) {
        self.sender.set_degraded(on);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u64) -> EventRecord {
        EventRecord::alu(pc, 0, None, None, None)
    }

    #[test]
    fn records_arrive_in_order() {
        let (tx, rx) = channel(8);
        let writer = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(rec(i));
            }
        });
        let mut expected = 0;
        while let Some(r) = rx.recv() {
            assert_eq!(r.pc, expected);
            expected += 1;
        }
        writer.join().unwrap();
        assert_eq!(expected, 1000);
    }

    #[test]
    fn small_buffer_exerts_back_pressure_without_loss() {
        let (tx, rx) = channel(1);
        let writer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(rec(i));
            }
        });
        let mut count = 0;
        while rx.recv().is_some() {
            count += 1;
        }
        writer.join().unwrap();
        assert_eq!(count, 100);
    }

    #[test]
    fn close_with_empty_queue_returns_none() {
        let (tx, rx) = channel(4);
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = channel(4);
        assert_eq!(rx.try_recv(), None);
        tx.send(rec(1));
        assert_eq!(rx.try_recv().map(|r| r.pc), Some(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = channel(0);
    }

    #[test]
    fn framed_records_arrive_in_order_across_threads() {
        let (mut tx, mut rx) = frame_channel(
            4,
            FrameConfig {
                records_per_frame: 64,
                compress: true,
            },
        );
        let writer = thread::spawn(move || {
            for i in 0..5000 {
                tx.push(&rec(0x1000 + i * 8));
            }
        });
        let mut expected = 0x1000;
        let mut count = 0u64;
        while let Some(r) = rx.recv() {
            assert_eq!(r.pc, expected);
            expected += 8;
            count += 1;
        }
        writer.join().unwrap();
        assert_eq!(count, 5000);
        let stats = rx.stats();
        assert_eq!(stats.records, 5000);
        // 5000 records at 64/frame, plus the flush-on-drop partial frame.
        assert_eq!(stats.frames, 5000 / 64 + 1);
        assert!(stats.wire_bits >= stats.payload_bits);
        assert!(stats.high_water_bits > 0);
    }

    #[test]
    fn framed_tiny_queue_exerts_back_pressure_without_loss() {
        let (mut tx, mut rx) = frame_channel(
            1,
            FrameConfig {
                records_per_frame: 8,
                compress: true,
            },
        );
        let writer = thread::spawn(move || {
            for i in 0..500 {
                tx.push(&rec(0x1000 + i * 8));
            }
        });
        let mut count = 0;
        while rx.recv().is_some() {
            count += 1;
        }
        writer.join().unwrap();
        assert_eq!(count, 500);
    }

    #[test]
    fn framed_raw_mode_round_trips() {
        let (mut tx, mut rx) = frame_channel(
            4,
            FrameConfig {
                records_per_frame: 16,
                compress: false,
            },
        );
        let writer = thread::spawn(move || {
            for i in 0..100 {
                tx.push(&rec(0x2000 + i * 4));
            }
        });
        let mut count = 0;
        while rx.recv().is_some() {
            count += 1;
        }
        writer.join().unwrap();
        assert_eq!(count, 100);
    }

    #[test]
    fn flush_makes_partial_frames_visible() {
        let (mut tx, mut rx) = frame_channel(
            4,
            FrameConfig {
                records_per_frame: 1000,
                compress: true,
            },
        );
        tx.push(&rec(0x1000));
        tx.push(&rec(0x1008));
        assert_eq!(rx.try_recv(), None, "partial frame not visible yet");
        tx.flush();
        assert_eq!(rx.try_recv().map(|r| r.pc), Some(0x1000));
        assert_eq!(rx.try_recv().map(|r| r.pc), Some(0x1008));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn discarded_frames_leave_stats_untouched() {
        // Regression: `ship` used to account records/frames/wire bits (and
        // add in-flight occupancy) *before* the enqueue, so a frame
        // discarded because the receiver vanished inflated the statistics
        // and leaked `inflight_bits`, skewing `high_water_bits` forever.
        let (mut tx, rx) = frame_channel(
            1,
            FrameConfig {
                records_per_frame: 4,
                compress: true,
            },
        );
        // Seal one frame: it occupies the queue's only slot.
        for i in 0..4 {
            tx.push(&rec(0x1000 + i * 8));
        }
        let queued = tx.stats();
        assert_eq!(queued.frames, 1);
        assert_eq!(queued.records, 4);

        // Receiver gone mid-stream: every further sealed frame hits the
        // full queue and is discarded.
        drop(rx);
        for i in 0..40 {
            tx.push(&rec(0x2000 + i * 8));
        }
        assert_eq!(tx.stats(), queued, "discarded frames must not count");

        // The flush of a partial frame is discarded the same way — and the
        // high-water mark cannot creep from leaked in-flight bits.
        tx.push(&rec(0x3000));
        tx.flush();
        assert_eq!(tx.stats(), queued);
    }

    #[test]
    fn epoch_marks_cross_the_live_channel() {
        let (mut tx, mut rx) = frame_channel(
            8,
            FrameConfig {
                records_per_frame: 4,
                compress: true,
            },
        );
        let writer = thread::spawn(move || {
            for i in 0..20u64 {
                // Epochs of 7: boundaries after records 6 and 13; the tail
                // (14..20) ships unmarked via the flush-on-drop.
                tx.push_epoch(&rec(0x1000 + i * 8), i % 7 == 6);
            }
        });
        let mut epochs = Vec::new();
        let mut current = 0u64;
        while let Some((records, epoch_end)) = rx.recv_batch_epoch() {
            current += records.len() as u64;
            if epoch_end {
                epochs.push(current);
                current = 0;
            }
        }
        if current > 0 {
            epochs.push(current); // the unmarked tail epoch
        }
        writer.join().unwrap();
        assert_eq!(epochs, [7, 7, 6]);
        assert_eq!(rx.stats().records, 20);
    }

    #[test]
    fn shard_channels_are_independent_streams() {
        let config = FrameConfig {
            records_per_frame: 8,
            compress: true,
        };
        let (txs, rxs) = shard_frame_channels(3, 4, config);
        assert_eq!(txs.len(), 3);
        let writers: Vec<_> = txs
            .into_iter()
            .enumerate()
            .map(|(shard, mut tx)| {
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.push(&rec(0x1000 * (shard as u64 + 1) + i * 8));
                    }
                })
            })
            .collect();
        for (shard, mut rx) in rxs.into_iter().enumerate() {
            let mut expected = 0x1000 * (shard as u64 + 1);
            let mut count = 0;
            while let Some(r) = rx.recv() {
                assert_eq!(r.pc, expected, "shard {shard} stream stays in order");
                expected += 8;
                count += 1;
            }
            assert_eq!(count, 100);
            let stats = rx.stats();
            assert_eq!(stats.records, 100);
            assert!(stats.frames >= 100 / 8);
            assert!(stats.wire_bits >= stats.payload_bits);
        }
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn stall_timeout_latches_instead_of_spinning_forever() {
        let (mut tx, rx) = frame_channel(
            1,
            FrameConfig {
                records_per_frame: 2,
                compress: true,
            },
        );
        tx.set_stall_timeout(Some(Duration::from_millis(5)));
        // Fill the queue's only slot; the consumer never drains it.
        tx.push(&rec(0x1000));
        tx.push(&rec(0x1008));
        assert!(!tx.stalled());
        let full = tx.load_sample();
        assert_eq!((full.inflight, full.capacity), (1, 1));
        assert_eq!(full.occupancy_permille(), 1000);
        // The next sealed frame cannot ship: the sender must latch the
        // stall within the timeout instead of spinning unboundedly.
        tx.push(&rec(0x1010));
        tx.push(&rec(0x1018));
        assert!(tx.stalled(), "stall must latch once the timeout elapses");
        // Later frames (the flush-on-drop included) are discarded
        // immediately — no repeated timeout, and the stats stay honest.
        let stats = tx.stats();
        tx.push(&rec(0x1020));
        tx.push(&rec(0x1028));
        assert_eq!(tx.stats(), stats, "discarded frames must not count");
        drop(tx);
        drop(rx);
    }

    #[test]
    fn receiver_drag_slows_the_drain() {
        let (mut tx, mut rx) = frame_channel(
            4,
            FrameConfig {
                records_per_frame: 4,
                compress: true,
            },
        );
        rx.set_drag(10_000);
        let writer = thread::spawn(move || {
            for i in 0..40 {
                tx.push(&rec(0x1000 + i * 8));
            }
        });
        let mut count = 0;
        while rx.recv().is_some() {
            count += 1;
        }
        writer.join().unwrap();
        assert_eq!(count, 40, "drag slows the drain but loses nothing");
    }

    #[test]
    fn unsplit_channel_implements_the_trait_without_blocking() {
        // Queue of one frame, frames of two records: pushes must make
        // progress by decoding in place rather than deadlocking.
        let mut ch = LiveFrameChannel::new(
            1,
            FrameConfig {
                records_per_frame: 2,
                compress: true,
            },
        );
        let mut popped = Vec::new();
        for i in 0..100 {
            match ch.push_record(&rec(0x1000 + i * 8), i) {
                PushOutcome::BackPressure { .. } => panic!("live channel never parks"),
                PushOutcome::Buffered | PushOutcome::Sealed { .. } => {}
            }
        }
        ch.flush(100);
        while let Some(p) = ch.pop_record() {
            popped.push(p.record.pc);
        }
        assert_eq!(popped.len(), 100);
        assert!(popped.windows(2).all(|w| w[0] < w[1]), "in order");
        assert_eq!(ch.stats().records, 100);
    }
}
