//! The `LogChannel` abstraction: one transport contract for both
//! execution models.
//!
//! The paper's log transport is a stream of compressed cache-line-multiple
//! frames flowing from the capture engine to the dispatch engine. This
//! trait captures that contract at record granularity — push on the
//! producer side, pop on the consumer side, statistics in wire bytes — so
//! the co-simulation and the live two-thread pipeline drive the identical
//! interface and differ only in *how* frames move:
//!
//! * [`ModeledFrameChannel`](crate::ModeledFrameChannel) — deterministic:
//!   frames are timestamped and queued against a byte budget, giving exact
//!   back-pressure and lag accounting;
//! * [`LiveFrameChannel`](crate::live::LiveFrameChannel) — real: frame byte
//!   buffers cross an SPSC queue between OS threads, one queue operation
//!   per frame instead of per record.
//!
//! # Back-pressure protocol
//!
//! [`push_record`](LogChannel::push_record) returning
//! [`PushOutcome::BackPressure`] means a sealed frame did not fit and is
//! *parked*. The producer must free space — pop records via
//! [`pop_record`](LogChannel::pop_record) — and call
//! [`retry_parked`](LogChannel::retry_parked) until it succeeds. Channels
//! that resolve back-pressure internally by blocking (the live channel)
//! never return `BackPressure`.

use lba_record::{EventKind, EventRecord};

/// The shard owning `record` under address-interleaved routing, or `None`
/// for records every shard must see.
///
/// Load/store records belong to the shard owning their 64-byte cache line
/// (`(addr / 64) % shards`), and a capture-side `Repeat` fold summary
/// routes with the line-local accesses it summarizes; every other kind
/// (alloc/free, lock/unlock, syscalls, …) is broadcast because it updates
/// state all shards need. Both the modeled (`run_lba_parallel`) and live
/// (`run_live_parallel`) sharded modes route with this function, so their
/// per-shard record streams — and therefore their per-shard wire
/// streams — are identical.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_of(record: &EventRecord, shards: usize) -> Option<usize> {
    assert!(shards > 0, "need at least one shard");
    match record.kind {
        EventKind::Load | EventKind::Store | EventKind::Repeat => {
            Some(((record.addr / 64) % shards as u64) as usize)
        }
        _ => None,
    }
}

/// Where one record goes under epoch routing: its worker, its epoch
/// number, and whether it is the epoch's last record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochRoute {
    /// Worker index in `0..workers` (epochs go round-robin).
    pub worker: usize,
    /// Global epoch number, starting at zero.
    pub epoch: u64,
    /// Whether this record closes its epoch — the producer must seal the
    /// worker's frame with the epoch-end mark so the boundary survives the
    /// wire (`FrameEncoder::push_epoch`).
    pub end_epoch: bool,
}

/// Routes a sequential record stream to epoch workers — the
/// order-sensitive counterpart of [`shard_of`].
///
/// Where address-interleaved sharding splits by *address* (sound only for
/// lifeguards whose state is address-local), epoch routing splits by
/// *time*: the stream is cut into contiguous epochs at every syscall —
/// the natural containment point, where the log is flushed anyway — and
/// additionally every `epoch_records` records, so long syscall-free
/// stretches still parallelise. Whole epochs go to workers round-robin
/// (`epoch % workers`), so each worker sees complete epochs in increasing
/// epoch order and a merge thread can stitch summaries back in global
/// order by polling workers round-robin.
///
/// # Examples
///
/// ```
/// use lba_record::{EventKind, EventRecord};
/// use lba_transport::EpochRouter;
///
/// let mut router = EpochRouter::new(2, 4);
/// let rec = EventRecord::alu(0x1000, 0, None, None, None);
/// let route = router.route(&rec);
/// assert_eq!((route.worker, route.epoch), (0, 0));
/// assert!(!route.end_epoch);
/// let mut sys = rec;
/// sys.kind = EventKind::Syscall;
/// assert!(router.route(&sys).end_epoch, "syscalls close epochs");
/// assert_eq!(router.route(&rec).worker, 1, "next epoch, next worker");
/// ```
#[derive(Debug, Clone)]
pub struct EpochRouter {
    workers: usize,
    epoch_records: usize,
    epoch: u64,
    in_epoch: usize,
}

impl EpochRouter {
    /// Creates a router fanning epochs over `workers` workers, closing an
    /// epoch at every syscall and after every `epoch_records` records.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `epoch_records` is zero.
    #[must_use]
    pub fn new(workers: usize, epoch_records: usize) -> Self {
        assert!(workers > 0, "need at least one epoch worker");
        assert!(epoch_records > 0, "epochs must hold at least one record");
        EpochRouter {
            workers,
            epoch_records,
            epoch: 0,
            in_epoch: 0,
        }
    }

    /// Routes the next record of the sequential stream.
    pub fn route(&mut self, record: &EventRecord) -> EpochRoute {
        self.in_epoch += 1;
        let end_epoch = record.kind == EventKind::Syscall || self.in_epoch >= self.epoch_records;
        let route = EpochRoute {
            worker: (self.epoch % self.workers as u64) as usize,
            epoch: self.epoch,
            end_epoch,
        };
        if end_epoch {
            self.epoch += 1;
            self.in_epoch = 0;
        }
        route
    }

    /// Total epochs the routed stream decomposes into so far, the open
    /// tail epoch (if any) included.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epoch + u64::from(self.in_epoch > 0)
    }

    /// Whether the current epoch has routed records but no closing mark
    /// yet — the stream tail, which ships via a plain (unmarked) flush.
    #[must_use]
    pub fn open(&self) -> bool {
        self.in_epoch > 0
    }
}

/// A cheap producer-side snapshot of transport occupancy — the load
/// signal the adaptive capture controller steers by.
///
/// Units are transport-specific: bits for the modeled byte-budget buffer,
/// queue slots for the live frame queue. Only the *ratio* matters, which
/// is what [`occupancy_permille`](Self::occupancy_permille) exposes; the
/// controller's hysteresis thresholds are expressed in permille so they
/// apply uniformly to both transports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSample {
    /// Occupied transport units currently in flight toward the consumer
    /// (parked frames included — they are the clearest overload signal).
    pub inflight: u64,
    /// The transport's capacity in the same units.
    pub capacity: u64,
}

impl LoadSample {
    /// Occupancy as a permille ratio (0 = empty, 1000 = full). Exceeds
    /// 1000 when parked frames or an oversized admission leave the
    /// transport over-committed.
    #[must_use]
    pub fn occupancy_permille(&self) -> u32 {
        if self.capacity == 0 {
            return 0;
        }
        let ratio = u128::from(self.inflight) * 1000 / u128::from(self.capacity);
        u32::try_from(ratio).unwrap_or(u32::MAX)
    }
}

/// Aggregate statistics for one channel, in the units the paper cares
/// about: records, frames, and bytes on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Records carried by sealed frames.
    pub records: u64,
    /// Frames sealed and shipped.
    pub frames: u64,
    /// Compressed (or raw) payload bits, before framing.
    pub payload_bits: u64,
    /// Bits on the wire: payload plus frame headers and line padding.
    pub wire_bits: u64,
    /// High-water mark of in-flight wire bits (how full the buffer got).
    pub high_water_bits: u64,
}

impl ChannelStats {
    /// Average wire bytes per record, framing overhead included.
    #[must_use]
    pub fn wire_bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.wire_bits as f64 / 8.0 / self.records as f64
        }
    }
}

/// A record handed to the consumer, with the producer-clock cycle at which
/// its frame was shipped (zero for live channels, which have no modeled
/// clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoppedRecord {
    /// The event record.
    pub record: EventRecord,
    /// Producer-core cycle at which the record's frame became visible.
    pub ready_at: u64,
}

/// A frame's worth of decoded records handed to the consumer in one call,
/// borrowed from the channel's decode buffer — the batch counterpart of
/// [`PoppedRecord`].
///
/// All records in a frame became visible at the same instant (the frame
/// ships as a unit), so one `ready_at` stamp covers the whole slice. The
/// borrow ends before the next channel call, which is exactly the dispatch
/// engine's consumption pattern: take a frame, deliver it, come back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoppedFrame<'a> {
    /// The frame's records, in capture order.
    pub records: &'a [EventRecord],
    /// Producer-core cycle at which the frame became visible.
    pub ready_at: u64,
    /// Whether this frame carries the epoch-end mark in its wire header —
    /// sealed by `FrameEncoder::push_epoch` at an epoch boundary. Always
    /// `false` on streams produced without epoch routing.
    pub epoch_end: bool,
}

/// Result of a producer-side push or flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The record joined the open partial frame; nothing shipped.
    Buffered,
    /// The record sealed a frame that was admitted to the transport.
    Sealed {
        /// Wire bits shipped (header and padding included).
        wire_bits: u64,
    },
    /// The record sealed a frame that does not fit: it is parked and the
    /// producer is stalled until space frees (see the module docs).
    BackPressure {
        /// Wire bits of the parked frame.
        wire_bits: u64,
    },
}

/// The framed log transport contract (see the module docs).
pub trait LogChannel {
    /// Pushes one captured record. `now` is the producer-core cycle used to
    /// timestamp the frame this record ends up in; live channels ignore it.
    fn push_record(&mut self, record: &EventRecord, now: u64) -> PushOutcome;

    /// Seals the open partial frame so every pushed record becomes visible
    /// to the consumer — called at syscalls (containment) and end of
    /// program.
    fn flush(&mut self, now: u64) -> PushOutcome;

    /// Pops the next record on the consumer side. `None` means no record is
    /// currently available (modeled: buffer empty; live: channel closed and
    /// drained).
    ///
    /// This is the record-granular legacy path, kept callable as the
    /// benchmark baseline; batch consumers use
    /// [`pop_frame`](LogChannel::pop_frame).
    fn pop_record(&mut self) -> Option<PoppedRecord>;

    /// Pops everything left of the oldest available frame as one slice with
    /// a single `ready_at` stamp, consuming the frame whole (its buffer
    /// space frees immediately). `None` means exactly what it means for
    /// [`pop_record`](LogChannel::pop_record): nothing available right now.
    ///
    /// Mixing granularities is allowed: after `k` `pop_record` calls into a
    /// frame of `n` records, `pop_frame` yields the remaining `n - k`.
    fn pop_frame(&mut self) -> Option<PoppedFrame<'_>>;

    /// Whether a sealed frame is parked awaiting space.
    fn has_parked(&self) -> bool;

    /// Attempts to admit the oldest parked frame, timestamped `now`;
    /// returns its wire bits on success.
    fn retry_parked(&mut self, now: u64) -> Option<u64>;

    /// Lifetime statistics over sealed frames.
    fn stats(&self) -> ChannelStats;

    /// Whether nothing remains for the consumer — no queued, parked, or
    /// partially-consumed frame. Drain loops use this to tell a transient
    /// pop refusal (fault injection modeling a stalled consumer) from a
    /// truly empty channel, so injected stalls can never truncate an
    /// end-of-run drain. The default `true` matches channels that resolve
    /// availability by blocking instead of refusing.
    fn drained(&self) -> bool {
        true
    }

    /// A cheap occupancy snapshot for the adaptive capture controller.
    /// Channels that cannot measure load return the default (empty)
    /// sample, which reads as zero occupancy — the controller never
    /// engages on them.
    fn load_sample(&self) -> LoadSample {
        LoadSample::default()
    }

    /// Sets or clears the degraded-capture mark carried by subsequently
    /// sealed frames (`FrameEncoder::set_degraded`), so degraded spans
    /// survive the flight recorder and replay. Callers flush before
    /// toggling, keeping the mark frame-accurate. Channels without a real
    /// encoder ignore the call.
    fn mark_degraded(&mut self, on: bool) {
        let _ = on;
    }
}
