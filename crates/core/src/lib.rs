//! # LBA: Log-Based Architectures
//!
//! A full-system reproduction of *"Log-Based Architectures for
//! General-Purpose Monitoring of Deployed Code"* (Chen et al., ASID'06 —
//! the ASPLOS 2006 workshop on architectural and system support for
//! improving software dependability).
//!
//! The paper proposes hardware support on a chip multiprocessor for
//! **logging an application's dynamic instruction trace** on one core and
//! delivering it — compressed, through the cache hierarchy — to a second
//! core, where a *lifeguard* consumes it as a stream of typed event
//! records. This crate ties the substrates together into the paper's three
//! execution models:
//!
//! * [`run_unmonitored`] — the baseline: the program alone on one core;
//! * [`run_lba`] — the proposed system: capture → VPC compression → framed
//!   log channel → `nlba` dispatch → lifeguard handlers on a second core,
//!   with decoupled clocks, back-pressure, and syscall-stall containment;
//! * [`run_dbi`] — the comparison point: the same lifeguard inline via
//!   Valgrind-style dynamic binary instrumentation on the application core.
//!
//! The [`experiment`] module regenerates every table and figure in the
//! paper (`cargo run --release -p lba-bench --bin figures`), and the
//! [`parallel`], [`live_parallel`] and filtering extensions implement the
//! §3 future work — [`run_live_parallel`] runs the sharded design for
//! real, with one consumer thread per shard decoding its own compressed
//! frame stream.
//!
//! # Quickstart
//!
//! ```
//! use lba::{run_lba, run_unmonitored, SystemConfig};
//! use lba_lifeguards::AddrCheck;
//! use lba_workloads::bugs;
//!
//! let program = bugs::memory_bugs();
//! let config = SystemConfig::default();
//!
//! let baseline = run_unmonitored(&program, &config)?;
//! let mut addrcheck = AddrCheck::new();
//! let monitored = run_lba(&program, &mut addrcheck, &config)?;
//!
//! assert!(!monitored.findings.is_empty(), "the planted bugs are caught");
//! let slowdown = monitored.slowdown_vs(&baseline);
//! assert!(slowdown > 1.0);
//! # Ok::<(), lba::RunError>(())
//! ```

#![deny(missing_docs)]

mod config;
pub mod controller;
mod cosim;
pub mod epoch_parallel;
mod error;
pub mod experiment;
mod kind;
mod live;
pub mod live_parallel;
pub mod parallel;
pub mod pipeline;
mod recorder;
pub mod remote;
pub mod replay;
pub mod report;
mod run;
pub mod runner;
pub mod table;

pub use config::{LogConfig, RecordConfig, SystemConfig, MAX_LIVE_CHANNEL_FRAMES};
pub use controller::{AdaptiveConfig, CaptureController, Transition, Verdict};
pub use cosim::run_lba;
pub use epoch_parallel::{
    run_epoch_parallel, run_live_epoch_parallel, run_live_taint_parallel, run_replay_epoch,
    run_taint_parallel, EpochParallelReport, LiveEpochParallelReport,
};
pub use error::LbaError;
pub use kind::LifeguardKind;
pub use live::run_live;
pub use live_parallel::run_live_parallel;
pub use pipeline::{
    ConsumerTopology, EpochRouted, Execution, ModeOutcome, MonitorSpec, Producer, ProducerFinish,
    ProducerLink, ReplaySource, Route, RunModeSpec, ShardedByLine, SingleConsumer, TopologyKind,
    MONITORS, RUN_MODES,
};
pub use remote::run_remote;
pub use replay::{run_replay, run_replay_with, ReplayError, ReplayMode};
pub use report::{
    LiveParallelReport, LiveReport, LogStats, Mode, PipelineReport, RemoteReport, ReplayReport,
    ReplayStreamStats, RunReport, SalvagedTail, StallBreakdown,
};
pub use run::{run_dbi, run_unmonitored};
pub use runner::{MonitorChoice, Run, RunMode, RunOutcome};

// Per-shard transport statistics appear in the parallel reports; re-export
// the type so downstream code can name it without a direct lba-transport
// dependency. The load/fault types parameterize `LogConfig` and the
// degradation experiments.
pub use lba_transport::{ChannelStats, FaultInjector, FaultProfile, LoadSample};

// Capture-pass types: the stats appear in run reports, and the class/spec
// pair is what custom lifeguards implement `Lifeguard::idempotency` with.
// The degradation set is the same story for `Lifeguard::degradation`.
pub use lba_lifeguard::{
    CaptureFilter, CaptureStats, DegradationPolicy, DegradationRequest, DegradationStats,
    DegradedInterval, IdempotencyClass, RegionClassifier, SamplingSpec, WindowSpec,
    MAX_RECORDED_INTERVALS,
};

// The execution error type comes from the CPU substrate.
pub use lba_cpu::RunError;
