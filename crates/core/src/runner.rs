//! One entry point for every execution model: the [`Run`] builder.
//!
//! The run modes accreted as free functions — thirteen of them by the
//! time the socket transport landed — each with its own argument shape
//! (`&mut dyn Lifeguard` here, a factory closure there, a hardwired
//! `TaintCheck` in the epoch modes) and its own error type. [`Run`]
//! collapses them behind one registry-driven builder:
//!
//! ```
//! use lba::{LifeguardKind, Run, RunMode};
//! use lba_workloads::bugs;
//!
//! let program = bugs::memory_bugs();
//! let outcome = Run::new(&program)
//!     .mode(RunMode::Live)
//!     .monitor(LifeguardKind::AddrCheck)
//!     .run()?;
//! assert!(!outcome.findings.is_empty()); // Derefs to PipelineReport
//! # Ok::<(), lba::LbaError>(())
//! ```
//!
//! The builder validates the mode/monitor pairing against the capability
//! flags in [`pipeline::MONITORS`](crate::MONITORS) and
//! [`pipeline::RUN_MODES`](crate::RUN_MODES) *before* running anything —
//! sharding TaintCheck is an [`LbaError::Unsupported`] with the reason,
//! not a wrong answer — and folds every mode's failure into [`LbaError`].
//! The mode-shaped reports survive unchanged inside [`RunOutcome`], which
//! [`Deref`]s to the shared [`PipelineReport`] so mode-generic callers
//! (the bench harness, the equivalence grid) read findings and log
//! statistics without matching on the shape.

use std::fmt;
use std::ops::Deref;
use std::path::PathBuf;

use lba_isa::Program;
use lba_lifeguards::TaintCheck;

use crate::config::SystemConfig;
use crate::epoch_parallel::{EpochParallelReport, LiveEpochParallelReport};
use crate::error::LbaError;
use crate::kind::LifeguardKind;
use crate::parallel::ParallelReport;
use crate::pipeline::{MonitorSpec, RunModeSpec, MONITORS, RUN_MODES};
use crate::replay::ReplayMode;
use crate::report::{
    LiveParallelReport, LiveReport, PipelineReport, RemoteReport, ReplayReport, RunReport,
};

/// Every execution model the builder can drive: the nine registry modes
/// (see [`RUN_MODES`]) plus the two unmonitored/inline baselines, which
/// stand outside the registry because they ship no log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// Modeled co-simulation with exact clocks ([`crate::run_lba`]).
    Lba,
    /// Real threads over an in-process framed channel
    /// ([`crate::run_live`]).
    Live,
    /// Modeled address-sharded fan-out ([`crate::parallel::run_lba_parallel`]).
    LbaParallel,
    /// Sharded lifeguards on real threads ([`crate::run_live_parallel`]).
    LiveParallel,
    /// Sharded lifeguards behind real sockets ([`crate::run_remote`]).
    Remote,
    /// Modeled epoch-parallel taint tracking
    /// ([`crate::run_taint_parallel`]).
    EpochParallel,
    /// Epoch-parallel taint tracking on real threads
    /// ([`crate::run_live_taint_parallel`]).
    LiveEpochParallel,
    /// Offline replay of a flight-recorder stream set
    /// ([`crate::run_replay`]); needs [`Run::replay_from`].
    Replay,
    /// Epoch-parallel replay of a sharded recording
    /// ([`crate::run_replay_epoch`]); needs [`Run::replay_from`].
    ReplayEpoch,
    /// The program alone, no monitoring ([`crate::run_unmonitored`]).
    Unmonitored,
    /// The lifeguard inline via dynamic binary instrumentation
    /// ([`crate::run_dbi`]).
    Dbi,
}

impl RunMode {
    /// Every mode, registry rows first in table order, then the two
    /// baselines.
    pub const ALL: [RunMode; 11] = [
        RunMode::Lba,
        RunMode::Live,
        RunMode::LbaParallel,
        RunMode::LiveParallel,
        RunMode::Remote,
        RunMode::EpochParallel,
        RunMode::LiveEpochParallel,
        RunMode::Replay,
        RunMode::ReplayEpoch,
        RunMode::Unmonitored,
        RunMode::Dbi,
    ];

    /// The matching [`RUN_MODES`] row name, or `None` for the two
    /// baseline modes that stand outside the registry.
    #[must_use]
    pub fn registry_name(self) -> Option<&'static str> {
        match self {
            RunMode::Lba => Some("lba"),
            RunMode::Live => Some("live"),
            RunMode::LbaParallel => Some("lba-parallel"),
            RunMode::LiveParallel => Some("live-parallel"),
            RunMode::Remote => Some("remote"),
            RunMode::EpochParallel => Some("epoch-parallel"),
            RunMode::LiveEpochParallel => Some("live-epoch-parallel"),
            RunMode::Replay => Some("replay"),
            RunMode::ReplayEpoch => Some("replay-epoch"),
            RunMode::Unmonitored | RunMode::Dbi => None,
        }
    }

    /// Stable name: the registry row's for registry modes, `unmonitored`
    /// / `dbi` for the baselines.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RunMode::Unmonitored => "unmonitored",
            RunMode::Dbi => "dbi",
            other => other.registry_name().expect("registry mode has a row"),
        }
    }

    fn registry_spec(self) -> Option<&'static RunModeSpec> {
        let name = self.registry_name()?;
        RUN_MODES.iter().find(|m| m.name == name)
    }
}

impl fmt::Display for RunMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A monitor selection: anything that resolves to a [`MONITORS`] row.
/// [`LifeguardKind`] covers the paper's three; pass a
/// [`&'static MonitorSpec`](MonitorSpec) directly for the extensions
/// (MemProfile) or custom registry entries.
#[derive(Debug, Clone, Copy)]
pub struct MonitorChoice(&'static MonitorSpec);

impl From<&'static MonitorSpec> for MonitorChoice {
    fn from(spec: &'static MonitorSpec) -> Self {
        MonitorChoice(spec)
    }
}

impl From<LifeguardKind> for MonitorChoice {
    fn from(kind: LifeguardKind) -> Self {
        let spec = MONITORS
            .iter()
            .find(|m| m.name == kind.name())
            .expect("every LifeguardKind has a MONITORS row");
        MonitorChoice(spec)
    }
}

/// Builder for one monitored run — see the [module docs](self) for the
/// shape. Defaults: [`RunMode::Lba`], AddrCheck, 2 workers,
/// [`SystemConfig::default`], [`ReplayMode::Strict`].
pub struct Run<'a> {
    program: &'a Program,
    mode: RunMode,
    monitor: MonitorChoice,
    workers: usize,
    config: Option<&'a SystemConfig>,
    replay_from: Option<PathBuf>,
    replay_mode: ReplayMode,
}

impl<'a> Run<'a> {
    /// Starts a run request for `program` with the default mode, monitor
    /// and configuration.
    #[must_use]
    pub fn new(program: &'a Program) -> Self {
        Run {
            program,
            mode: RunMode::Lba,
            monitor: MonitorChoice::from(LifeguardKind::AddrCheck),
            workers: 2,
            config: None,
            replay_from: None,
            replay_mode: ReplayMode::Strict,
        }
    }

    /// Selects the execution model.
    #[must_use]
    pub fn mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the lifeguard: a [`LifeguardKind`] or a
    /// [`&'static MonitorSpec`](MonitorSpec) row. Ignored by
    /// [`RunMode::Unmonitored`].
    #[must_use]
    pub fn monitor(mut self, monitor: impl Into<MonitorChoice>) -> Self {
        self.monitor = monitor.into();
        self
    }

    /// Shard/worker count for the fan-out modes (`*Parallel`, `Remote`);
    /// the single-consumer modes ignore it. Defaults to 2.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Uses `config` instead of [`SystemConfig::default`].
    #[must_use]
    pub fn config(mut self, config: &'a SystemConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// The recording directory the replay modes consume — required by
    /// [`RunMode::Replay`] and [`RunMode::ReplayEpoch`].
    #[must_use]
    pub fn replay_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.replay_from = Some(dir.into());
        self
    }

    /// Damage policy for [`RunMode::Replay`] (strict by default).
    #[must_use]
    pub fn replay_mode(mut self, mode: ReplayMode) -> Self {
        self.replay_mode = mode;
        self
    }

    /// Validates the request against the registry capability flags and
    /// executes it.
    ///
    /// # Errors
    ///
    /// [`LbaError::Unsupported`] when the mode's `supports` predicate
    /// rejects the monitor (before anything runs);
    /// [`LbaError::InvalidRequest`] for a replay mode with no
    /// [`replay_from`](Self::replay_from) directory or a fan-out mode
    /// with zero workers; otherwise whatever the underlying mode reports,
    /// folded into [`LbaError`].
    pub fn run(self) -> Result<RunOutcome, LbaError> {
        let monitor = self.monitor.0;
        if let Some(spec) = self.mode.registry_spec() {
            if !(spec.supports)(monitor) {
                return Err(LbaError::Unsupported {
                    mode: spec.name,
                    monitor: monitor.name.to_string(),
                });
            }
        }
        let fan_out = matches!(
            self.mode,
            RunMode::LbaParallel
                | RunMode::LiveParallel
                | RunMode::Remote
                | RunMode::EpochParallel
                | RunMode::LiveEpochParallel
        );
        if fan_out && self.workers == 0 {
            return Err(LbaError::InvalidRequest {
                detail: format!("mode `{}` needs at least one worker", self.mode),
            });
        }
        let default_config;
        let config = match self.config {
            Some(config) => config,
            None => {
                default_config = SystemConfig::default();
                &default_config
            }
        };
        let replay_dir = |dir: Option<PathBuf>| {
            dir.ok_or_else(|| LbaError::InvalidRequest {
                detail: format!(
                    "mode `{}` replays a recording: set `replay_from(dir)`",
                    self.mode
                ),
            })
        };
        match self.mode {
            RunMode::Lba => {
                let mut lifeguard = (monitor.make)();
                let report = crate::cosim::run_lba(self.program, lifeguard.as_mut(), config)?;
                Ok(RunOutcome::Run(report))
            }
            RunMode::Live => {
                let mut lifeguard = (monitor.make)();
                let report = crate::live::run_live(self.program, lifeguard.as_mut(), config)?;
                Ok(RunOutcome::Live(report))
            }
            RunMode::LbaParallel => {
                let report = crate::parallel::run_lba_parallel(
                    self.program,
                    monitor.make,
                    self.workers,
                    config,
                )?;
                Ok(RunOutcome::Parallel(report))
            }
            RunMode::LiveParallel => {
                let report = crate::live_parallel::run_live_parallel(
                    self.program,
                    monitor.make,
                    self.workers,
                    config,
                )?;
                Ok(RunOutcome::LiveParallel(report))
            }
            RunMode::Remote => {
                let report =
                    crate::remote::run_remote(self.program, monitor.make, self.workers, config)?;
                Ok(RunOutcome::Remote(report))
            }
            RunMode::EpochParallel => {
                // The supports check admitted only epoch-capable monitors,
                // and TaintCheck is the one epoch summariser implemented.
                let mut master = TaintCheck::new();
                let report = crate::epoch_parallel::run_epoch_parallel(
                    self.program,
                    &mut master,
                    self.workers,
                    config,
                )?;
                Ok(RunOutcome::Epoch(report))
            }
            RunMode::LiveEpochParallel => {
                let mut master = TaintCheck::new();
                let report = crate::epoch_parallel::run_live_epoch_parallel(
                    self.program,
                    &mut master,
                    self.workers,
                    config,
                )?;
                Ok(RunOutcome::LiveEpoch(report))
            }
            RunMode::Replay => {
                let dir = replay_dir(self.replay_from)?;
                let report =
                    crate::replay::run_replay_with(dir, monitor.make, config, self.replay_mode)?;
                Ok(RunOutcome::Replay(report))
            }
            RunMode::ReplayEpoch => {
                let dir = replay_dir(self.replay_from)?;
                let mut master = TaintCheck::new();
                let report = crate::epoch_parallel::run_replay_epoch(dir, &mut master, config)?;
                Ok(RunOutcome::Replay(report))
            }
            RunMode::Unmonitored => {
                let report = crate::run::run_unmonitored(self.program, config)?;
                Ok(RunOutcome::Run(report))
            }
            RunMode::Dbi => {
                let mut lifeguard = (monitor.make)();
                let report = crate::run::run_dbi(self.program, lifeguard.as_mut(), config)?;
                Ok(RunOutcome::Run(report))
            }
        }
    }
}

/// The mode-shaped report a [`Run`] produced, behind one type.
///
/// Every variant [`Deref`]s to the shared [`PipelineReport`], so
/// mode-generic code reads `outcome.findings` / `outcome.log` directly;
/// match on the variant when the mode-specific fields (clocks, shard
/// logs, salvage ledger) matter.
#[derive(Debug)]
pub enum RunOutcome {
    /// Modeled co-simulation or baseline ([`RunMode::Lba`],
    /// [`RunMode::Unmonitored`], [`RunMode::Dbi`]).
    Run(RunReport),
    /// [`RunMode::Live`].
    Live(LiveReport),
    /// [`RunMode::LbaParallel`].
    Parallel(ParallelReport),
    /// [`RunMode::LiveParallel`].
    LiveParallel(LiveParallelReport),
    /// [`RunMode::Remote`].
    Remote(RemoteReport),
    /// [`RunMode::EpochParallel`].
    Epoch(EpochParallelReport),
    /// [`RunMode::LiveEpochParallel`].
    LiveEpoch(LiveEpochParallelReport),
    /// [`RunMode::Replay`] and [`RunMode::ReplayEpoch`].
    Replay(ReplayReport),
}

impl Deref for RunOutcome {
    type Target = PipelineReport;

    fn deref(&self) -> &PipelineReport {
        match self {
            RunOutcome::Run(r) => r,
            RunOutcome::Live(r) => r,
            RunOutcome::Parallel(r) => r,
            RunOutcome::LiveParallel(r) => r,
            RunOutcome::Remote(r) => r,
            RunOutcome::Epoch(r) => r,
            RunOutcome::LiveEpoch(r) => r,
            RunOutcome::Replay(r) => r,
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The modeled fan-out reports define no Display of their own;
        // summarise them from the shared pipeline fields.
        let summary = |f: &mut fmt::Formatter<'_>, mode: &str, report: &PipelineReport| {
            writeln!(
                f,
                "[{mode}] {} finding(s); {} records in {} frames",
                report.findings.len(),
                report.log.records,
                report.log.frames,
            )
        };
        match self {
            RunOutcome::Run(r) => r.fmt(f),
            RunOutcome::Live(r) => r.fmt(f),
            RunOutcome::Parallel(r) => summary(f, "lba-parallel", r),
            RunOutcome::LiveParallel(r) => r.fmt(f),
            RunOutcome::Remote(r) => r.fmt(f),
            RunOutcome::Epoch(r) => summary(f, "epoch-parallel", r),
            RunOutcome::LiveEpoch(r) => summary(f, "live-epoch-parallel", r),
            RunOutcome::Replay(r) => r.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_lifeguard::FindingKind;
    use lba_workloads::bugs;

    #[test]
    fn run_mode_names_are_bijective_with_the_registry() {
        let registry: Vec<&str> = RUN_MODES.iter().map(|m| m.name).collect();
        let builder: Vec<&str> = RunMode::ALL
            .iter()
            .filter_map(|m| m.registry_name())
            .collect();
        assert_eq!(
            registry, builder,
            "RunMode must mirror pipeline::RUN_MODES, in table order"
        );
        let baselines: Vec<&str> = RunMode::ALL
            .iter()
            .filter(|m| m.registry_name().is_none())
            .map(|m| m.name())
            .collect();
        assert_eq!(baselines, ["unmonitored", "dbi"]);
    }

    #[test]
    fn every_registry_mode_runs_through_the_builder() {
        let memory = bugs::memory_bugs();
        let tainted = bugs::tainted_syscall();
        let config = SystemConfig::default();
        let recording =
            std::env::temp_dir().join(format!("lba-runner-grid-{}", std::process::id()));
        for mode in RunMode::ALL {
            // The epoch modes support only TaintCheck, which needs the
            // tainted workload; everything else is exercised with
            // AddrCheck here (the grid in tests/equivalence.rs sweeps the
            // full monitor set).
            let (program, monitor) = match mode {
                RunMode::EpochParallel | RunMode::LiveEpochParallel => {
                    (&tainted, LifeguardKind::TaintCheck)
                }
                _ => (&memory, LifeguardKind::AddrCheck),
            };
            let mut request = Run::new(program)
                .mode(mode)
                .monitor(monitor)
                .config(&config);
            if matches!(mode, RunMode::Replay | RunMode::ReplayEpoch) {
                // Record with a matching topology first, then point the
                // builder at the recording.
                let mut rec = config.clone();
                rec.log.record_to = Some(crate::config::RecordConfig::new(&recording));
                let _ = std::fs::remove_dir_all(&recording);
                if mode == RunMode::ReplayEpoch {
                    Run::new(&tainted)
                        .mode(RunMode::EpochParallel)
                        .monitor(LifeguardKind::TaintCheck)
                        .config(&rec)
                        .run()
                        .expect("recording run");
                    request = request.monitor(LifeguardKind::TaintCheck);
                } else {
                    Run::new(&memory)
                        .mode(RunMode::Lba)
                        .monitor(LifeguardKind::AddrCheck)
                        .config(&rec)
                        .run()
                        .expect("recording run");
                }
                request = request.replay_from(&recording);
            }
            let outcome = request.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
            if mode != RunMode::Unmonitored {
                assert!(
                    !outcome.findings.is_empty(),
                    "{mode} must surface the planted bugs"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&recording);
    }

    #[test]
    fn capability_flags_reject_before_running() {
        let program = bugs::memory_bugs();
        let err = Run::new(&program)
            .mode(RunMode::LiveParallel)
            .monitor(LifeguardKind::TaintCheck)
            .run()
            .unwrap_err();
        assert!(
            matches!(
                err,
                LbaError::Unsupported {
                    mode: "live-parallel",
                    ..
                }
            ),
            "got: {err}"
        );
        assert!(err.to_string().contains("taintcheck"));
    }

    #[test]
    fn replay_without_a_recording_is_an_invalid_request() {
        let program = bugs::memory_bugs();
        let err = Run::new(&program).mode(RunMode::Replay).run().unwrap_err();
        assert!(matches!(err, LbaError::InvalidRequest { .. }));
        assert!(err.to_string().contains("replay_from"));
    }

    #[test]
    fn zero_workers_is_an_invalid_request_not_a_panic() {
        let program = bugs::memory_bugs();
        let err = Run::new(&program)
            .mode(RunMode::Remote)
            .workers(0)
            .run()
            .unwrap_err();
        assert!(matches!(err, LbaError::InvalidRequest { .. }));
    }

    #[test]
    fn outcome_derefs_to_the_shared_pipeline_report() {
        let program = bugs::memory_bugs();
        let outcome = Run::new(&program)
            .mode(RunMode::Remote)
            .monitor(LifeguardKind::AddrCheck)
            .run()
            .unwrap();
        assert!(outcome
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DoubleFree));
        assert!(outcome.log.records > 0);
        assert!(matches!(outcome, RunOutcome::Remote(_)));
        assert!(outcome.to_string().contains("remote"));
    }
}
