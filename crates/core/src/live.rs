//! Live monitoring: application and lifeguard on real OS threads.
//!
//! The timing results come from the deterministic co-simulation
//! ([`run_lba`](crate::run_lba)); this mode demonstrates the *functional*
//! pipeline with genuine parallelism — the machine compresses records into
//! cache-line-multiple frames on one thread while the lifeguard
//! decompresses and consumes them on another, connected by the framed SPSC
//! channel from `lba-transport`. One queue operation moves an entire frame
//! (`config.log.records_per_frame` records), and the reported statistics
//! are *real* wire bytes, so the live mode exercises and measures the
//! paper's < 1 B/instruction wire format instead of shipping raw structs.
//!
//! The producer side is [`Producer::live`] driving a [`LiveLink`]: the
//! identical capture pass the co-simulation runs, plugged into the framed
//! sender. Integration tests assert the findings — and the shipped wire
//! stream — match the deterministic mode exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use lba_cache::MemSystem;
use lba_cpu::{Machine, RunError};
use lba_isa::Program;
use lba_lifeguard::{DegradationRequest, DispatchEngine, Lifeguard};
use lba_transport::live;

use crate::config::SystemConfig;
use crate::pipeline::{Producer, ProducerLink};
use crate::report::{LiveReport, LogStats, PipelineReport};

/// Encoding of the analysis-side dial slot the consumer publishes and the
/// producer drains: no request pending.
const DIAL_NONE: u64 = 0;
/// Dial slot: the lifeguard asked to engage degraded capture.
const DIAL_ENGAGE: u64 = 1;
/// Dial slot: the lifeguard asked to disengage degraded capture.
const DIAL_DISENGAGE: u64 = 2;

/// The live mode's [`ProducerLink`]: shipped records go straight into the
/// framed SPSC sender, degradation transitions seal the open frame and
/// toggle the wire's degraded mark, and the controller steers by the real
/// queue occupancy plus the finding count and dial requests the consumer
/// thread publishes through atomics.
struct LiveLink<'a> {
    tx: live::FrameSender,
    finding_count: &'a AtomicU64,
    dial: &'a AtomicU64,
}

impl ProducerLink for LiveLink<'_> {
    fn ship(&mut self, rec: &lba_record::EventRecord) {
        self.tx.push(rec);
    }

    fn on_engage(&mut self) {
        self.tx.flush();
        self.tx.set_degraded(true);
    }

    fn on_disengage(&mut self) {
        self.tx.flush();
        self.tx.set_degraded(false);
    }

    fn load_sample(&self) -> lba_transport::LoadSample {
        self.tx.load_sample()
    }

    fn finding_count(&self) -> u64 {
        self.finding_count.load(Ordering::Relaxed)
    }

    fn contain_syscall(&mut self) {
        // Real threads cannot stall a modeled clock; containment reduces
        // to sealing the frame so the consumer can observe everything
        // that precedes the syscall.
        self.tx.flush();
    }

    fn take_degradation_request(&mut self) -> Option<DegradationRequest> {
        match self.dial.swap(DIAL_NONE, Ordering::Relaxed) {
            DIAL_ENGAGE => Some(DegradationRequest::Engage),
            DIAL_DISENGAGE => Some(DegradationRequest::Disengage),
            _ => None,
        }
    }
}

/// Runs `program` on one thread and the lifeguard on another, returning
/// the lifeguard's findings together with the measured wire statistics.
///
/// The capture-side filter and the syscall containment flush behave as in
/// the co-simulation: filtered records never reach the channel, and each
/// syscall seals the open frame so the lifeguard can observe everything
/// that precedes it.
///
/// New code should prefer the unified [`Run`](crate::Run) builder
/// (`RunMode::Live`); this free function remains the mode's direct entry
/// point.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine thread.
pub fn run_live(
    program: &Program,
    lifeguard: &mut dyn Lifeguard,
    config: &SystemConfig,
) -> Result<LiveReport, RunError> {
    config.log.validate_framing()?;
    // The queue depth — frames in flight before the producer blocks — is
    // the live analogue of the modeled buffer's byte budget, derived from
    // `buffer_bytes` rather than hard-coded (regression: a fixed depth of
    // 64 used to ignore the budget entirely).
    let (mut tx, mut rx) =
        live::frame_channel(config.log.live_channel_frames(), config.log.frame_config());
    // Flight recorder: mirror every shipped frame into stream 0. The sink
    // moves to the producer thread with `tx` (it is `Send`), so recording
    // costs nothing on the consumer.
    if let Some(record) = &config.log.record_to {
        tx.tee_into(crate::recorder::open_sink(record, 0)?);
    }
    // Bound the producer's spin on a full queue: a consumer that genuinely
    // stops draining surfaces as `RunError::ChannelStalled`, not a livelock.
    tx.set_stall_timeout(config.log.channel_stall_timeout);
    // Fault injection, live flavour: the consumer burns spin cycles per
    // frame so the queue genuinely fills and the load signal climbs.
    if let Some(fault) = &config.log.fault {
        rx.set_drag(fault.drain_drag);
    }
    let engine = DispatchEngine::new(config.dispatch);
    let machine_config = config.machine;
    // The identical capture pass the co-simulation runs (range filter +
    // idempotency window in one predicate), so the two modes ship the
    // same record stream byte for byte.
    let mut stage = Producer::live(&*lifeguard, config);
    // The finding-snapback signal: the consumer publishes its running
    // finding count; any growth the producer's controller observes snaps
    // capture back to full fidelity.
    let finding_count = AtomicU64::new(0);
    // The analysis-side degradation dial: the consumer polls the
    // lifeguard after each delivery and publishes the latest request; the
    // producer drains it into the controller.
    let dial = AtomicU64::new(DIAL_NONE);

    thread::scope(|scope| {
        let finding_count = &finding_count;
        let dial = &dial;
        let producer = scope.spawn(
            move || -> Result<crate::pipeline::ProducerFinish, RunError> {
                let mut machine = Machine::new(program, machine_config);
                let mut mem = MemSystem::new(config.mem_single());
                let mut link = LiveLink {
                    tx,
                    finding_count,
                    dial,
                };
                machine.run(&mut mem, |r| stage.observe(&r.record, &mut link))?;
                // A latched stall means frames were silently discarded past
                // the timeout: the run is no longer lossless and must fail
                // loudly.
                if link.tx.stalled() {
                    return Err(RunError::ChannelStalled);
                }
                // Snap back out of degradation, settle fold counts, ship the
                // tail — the shared epilogue.
                let finish = stage.finish(&mut link);
                // Seal the final partial frame *before* taking the tee back,
                // so the recording carries the complete wire stream; the
                // drop-flush below then has nothing left to ship.
                link.tx.flush();
                if link.tx.stalled() {
                    return Err(RunError::ChannelStalled);
                }
                crate::recorder::finish_tee(link.tx.take_tee())?;
                Ok(finish)
                // `link.tx` drops here: flushes the final partial frame and
                // closes the channel.
            },
        );

        // Consume on this thread: shadow-cost accounting still needs a
        // MemSystem, but live mode is functional — timing is not reported.
        // Frame-granular by default (one blocking receive and one dispatch
        // setup per frame); the per-record path is the bench baseline.
        let mut mem = MemSystem::new(config.mem_dual());
        let mut findings = Vec::new();
        if config.log.batch_dispatch {
            while let Some(batch) = rx.recv_batch() {
                engine.deliver_batch(lifeguard, batch, &mut mem, 1, &mut findings);
                finding_count.store(findings.len() as u64, Ordering::Relaxed);
                if let Some(req) = engine.poll_degradation(lifeguard) {
                    dial.store(encode_dial(req), Ordering::Relaxed);
                }
            }
        } else {
            while let Some(record) = rx.recv_ref() {
                engine.deliver(lifeguard, record, &mut mem, 1, &mut findings);
                finding_count.store(findings.len() as u64, Ordering::Relaxed);
                if let Some(req) = engine.poll_degradation(lifeguard) {
                    dial.store(encode_dial(req), Ordering::Relaxed);
                }
            }
        }
        engine.finish(lifeguard, &mut mem, 1, &mut findings);

        let finish = producer.join().expect("producer thread must not panic")?;
        let stats = rx.stats();
        Ok(LiveReport {
            program: program.name().to_string(),
            pipeline: PipelineReport {
                findings,
                log: LogStats::from_channel(stats, finish.capture, finish.trace.instructions()),
                capture: finish.capture,
                degradation: finish.degradation,
            },
            trace: finish.trace,
        })
    })
}

/// Maps a [`DegradationRequest`] onto the dial slot's wire encoding.
fn encode_dial(req: DegradationRequest) -> u64 {
    match req {
        DegradationRequest::Engage => DIAL_ENGAGE,
        DegradationRequest::Disengage => DIAL_DISENGAGE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::run_lba;
    use lba_lifeguard::FindingKind;
    use lba_lifeguards::{AddrCheck, TaintCheck};
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn live_mode_detects_bugs() {
        let program = bugs::memory_bugs();
        let mut lg = AddrCheck::new();
        let report = run_live(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DoubleFree));
    }

    #[test]
    fn live_findings_match_deterministic_mode() {
        let config = SystemConfig::default();
        let program = bugs::exploit();
        let mut lg = TaintCheck::new();
        let live = run_live(&program, &mut lg, &config).unwrap();
        let mut lg = TaintCheck::new();
        let cosim = run_lba(&program, &mut lg, &config).unwrap();
        assert_eq!(live.findings, cosim.findings);
    }

    #[test]
    fn live_mode_measures_sub_byte_wire_traffic() {
        // The acceptance bar for the framed transport: with compression
        // on, the *live* path ships less than one real byte per
        // instruction, padding and headers included.
        let program = Benchmark::Gzip.build();
        let config = SystemConfig::default();
        let mut lg = AddrCheck::new();
        let report = run_live(&program, &mut lg, &config).unwrap();
        assert!(report.log.records > 0);
        assert!(report.log.frames > 0);
        assert!(
            report.log.wire_bytes_per_instruction < 1.0,
            "live wire traffic {:.3} B/inst must stay below one byte",
            report.log.wire_bytes_per_instruction
        );
        // And it agrees with the modeled channel's accounting of the same
        // program (both run the identical frame codec).
        let mut lg = AddrCheck::new();
        let cosim = run_lba(&program, &mut lg, &config).unwrap();
        assert_eq!(report.log.records, cosim.log.records);
        assert_eq!(report.log.compressed_bits, cosim.log.compressed_bits);
        assert_eq!(report.log.frames, cosim.log.frames);
        assert_eq!(report.log.wire_bits, cosim.log.wire_bits);
    }

    #[test]
    fn live_back_pressure_depth_follows_the_buffer_budget() {
        // Regression: the live mode used to hard-code a 64-frame queue and
        // silently ignore `buffer_bytes`. A sub-frame budget now means a
        // one-deep queue — maximal back-pressure — and the pipeline must
        // still complete, lossless, with the same wire stream the default
        // budget ships.
        let program = bugs::memory_bugs();
        let mut tight = SystemConfig::default();
        tight.log.buffer_bytes = 64;
        assert_eq!(tight.log.live_channel_frames(), 1);
        let mut lg = AddrCheck::new();
        let constrained = run_live(&program, &mut lg, &tight).unwrap();
        let mut lg = AddrCheck::new();
        let roomy = run_live(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert_eq!(constrained.findings, roomy.findings);
        assert_eq!(constrained.log.records, roomy.log.records);
        assert_eq!(constrained.log.wire_bits, roomy.log.wire_bits);
    }

    #[test]
    fn live_mode_honours_the_capture_filter() {
        let program = Benchmark::Gzip.build();
        let mut config = SystemConfig::default();
        config.log.filter = Some(lba_lifeguard::AddrRangeFilter::new(vec![(
            lba_mem::layout::HEAP_BASE,
            lba_mem::layout::HEAP_END,
        )]));
        let mut lg = AddrCheck::new();
        let live = run_live(&program, &mut lg, &config).unwrap();
        assert!(
            live.log.filtered > 0,
            "filter must drop events in live mode too"
        );
        let mut lg = AddrCheck::new();
        let cosim = run_lba(&program, &mut lg, &config).unwrap();
        assert_eq!(live.findings, cosim.findings);
        assert_eq!(live.log.filtered, cosim.log.filtered);
    }
}
