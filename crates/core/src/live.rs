//! Live monitoring: application and lifeguard on real OS threads.
//!
//! The timing results come from the deterministic co-simulation
//! ([`run_lba`](crate::run_lba)); this mode demonstrates the *functional*
//! pipeline with genuine parallelism — the machine compresses records into
//! cache-line-multiple frames on one thread while the lifeguard
//! decompresses and consumes them on another, connected by the framed SPSC
//! channel from `lba-transport`. One queue operation moves an entire frame
//! (`config.log.records_per_frame` records), and the reported statistics
//! are *real* wire bytes, so the live mode now exercises and measures the
//! paper's < 1 B/instruction wire format instead of shipping raw structs.
//! Integration tests assert the findings match the deterministic mode
//! exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use lba_cache::MemSystem;
use lba_cpu::{Machine, RunError};
use lba_isa::Program;
use lba_lifeguard::{CaptureStats, DegradationStats, DispatchEngine, Lifeguard};
use lba_record::{EventKind, EventRecord, TraceStats};
use lba_transport::live;

use crate::config::SystemConfig;
use crate::controller::{CaptureController, Transition, Verdict};
use crate::report::{LiveReport, LogStats};

/// Runs `program` on one thread and the lifeguard on another, returning
/// the lifeguard's findings together with the measured wire statistics.
///
/// The capture-side filter and the syscall containment flush behave as in
/// the co-simulation: filtered records never reach the channel, and each
/// syscall seals the open frame so the lifeguard can observe everything
/// that precedes it.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine thread.
pub fn run_live(
    program: &Program,
    lifeguard: &mut dyn Lifeguard,
    config: &SystemConfig,
) -> Result<LiveReport, RunError> {
    config.log.validate_framing()?;
    // The queue depth — frames in flight before the producer blocks — is
    // the live analogue of the modeled buffer's byte budget, derived from
    // `buffer_bytes` rather than hard-coded (regression: a fixed depth of
    // 64 used to ignore the budget entirely).
    let (mut tx, mut rx) =
        live::frame_channel(config.log.live_channel_frames(), config.log.frame_config());
    // Flight recorder: mirror every shipped frame into stream 0. The sink
    // moves to the producer thread with `tx` (it is `Send`), so recording
    // costs nothing on the consumer.
    if let Some(record) = &config.log.record_to {
        tx.tee_into(crate::recorder::open_sink(record, 0)?);
    }
    // Satellite robustness fix: bound the producer's spin on a full queue.
    // A consumer that genuinely stops draining now surfaces as
    // `RunError::ChannelStalled` instead of a livelock.
    tx.set_stall_timeout(config.log.channel_stall_timeout);
    // Fault injection, live flavour: the consumer burns spin cycles per
    // frame so the queue genuinely fills and the load signal climbs.
    if let Some(fault) = &config.log.fault {
        rx.set_drag(fault.drain_drag);
    }
    let engine = DispatchEngine::new(config.dispatch);
    let machine_config = config.machine;
    // The identical capture pass the co-simulation runs (range filter +
    // idempotency window in one predicate), so the two modes ship the
    // same record stream byte for byte.
    let policy = lifeguard.degradation();
    let mut filter = config
        .log
        .adaptive_capture_filter(lifeguard.idempotency(), &policy);
    let mut controller = config
        .log
        .adaptive
        .and_then(|a| CaptureController::new(a, policy));
    // The finding-snapback signal: the consumer publishes its running
    // finding count; any growth the producer's controller observes snaps
    // capture back to full fidelity.
    let finding_count = AtomicU64::new(0);

    thread::scope(|scope| {
        let finding_count = &finding_count;
        let producer = scope.spawn(
            move || -> Result<(TraceStats, CaptureStats, DegradationStats), RunError> {
                let mut machine = Machine::new(program, machine_config);
                let mut mem = MemSystem::new(config.mem_single());
                let mut trace = TraceStats::new();
                let mut shipping: Vec<EventRecord> = Vec::new();
                machine.run(&mut mem, |r| {
                    trace.observe(&r.record);
                    let mut admit = Verdict::Ship;
                    if let Some(ctl) = controller.as_mut() {
                        match ctl.tick(tx.load_sample(), finding_count.load(Ordering::Relaxed)) {
                            Some(Transition::Engage { widen }) => {
                                tx.flush();
                                if widen {
                                    filter.widen_window();
                                }
                                tx.set_degraded(true);
                            }
                            Some(Transition::Disengage { tighten, .. }) => {
                                tx.flush();
                                tx.set_degraded(false);
                                if tighten {
                                    filter.tighten_window_into(&mut shipping, |rec| tx.push(rec));
                                }
                            }
                            None => {}
                        }
                        admit = ctl.admit(&r.record);
                    }
                    if admit == Verdict::Ship {
                        filter.capture_into(&r.record, &mut shipping, |rec| tx.push(rec));
                    }
                    if r.record.kind == EventKind::Syscall && config.log.syscall_stall {
                        tx.flush();
                    }
                })?;
                // A latched stall means frames were silently discarded
                // past the timeout: the run is no longer lossless and
                // must fail loudly.
                if tx.stalled() {
                    return Err(RunError::ChannelStalled);
                }
                // A run ending degraded snaps back first, so the closing
                // fold summaries ship at full fidelity.
                let degradation = match controller {
                    Some(ctl) => {
                        if ctl.engaged() {
                            tx.flush();
                            tx.set_degraded(false);
                            if policy.widen_window {
                                filter.tighten_window_into(&mut shipping, |rec| tx.push(rec));
                            }
                        }
                        ctl.finish()
                    }
                    None => DegradationStats::default(),
                };
                // Settle outstanding fold counts before the channel closes.
                filter.finish_into(&mut shipping, |rec| tx.push(rec));
                // Seal the final partial frame *before* taking the tee back,
                // so the recording carries the complete wire stream; the
                // drop-flush below then has nothing left to ship.
                tx.flush();
                if tx.stalled() {
                    return Err(RunError::ChannelStalled);
                }
                crate::recorder::finish_tee(tx.take_tee())?;
                Ok((trace, filter.stats(), degradation))
                // `tx` drops here: flushes the final partial frame and closes
                // the channel.
            },
        );

        // Consume on this thread: shadow-cost accounting still needs a
        // MemSystem, but live mode is functional — timing is not reported.
        // Frame-granular by default (one blocking receive and one dispatch
        // setup per frame); the per-record path is the bench baseline.
        let mut mem = MemSystem::new(config.mem_dual());
        let mut findings = Vec::new();
        if config.log.batch_dispatch {
            while let Some(batch) = rx.recv_batch() {
                engine.deliver_batch(lifeguard, batch, &mut mem, 1, &mut findings);
                finding_count.store(findings.len() as u64, Ordering::Relaxed);
            }
        } else {
            while let Some(record) = rx.recv_ref() {
                engine.deliver(lifeguard, record, &mut mem, 1, &mut findings);
                finding_count.store(findings.len() as u64, Ordering::Relaxed);
            }
        }
        engine.finish(lifeguard, &mut mem, 1, &mut findings);

        let (trace, capture, degradation) =
            producer.join().expect("producer thread must not panic")?;
        let stats = rx.stats();
        let instructions = trace.instructions().max(1);
        Ok(LiveReport {
            program: program.name().to_string(),
            findings,
            log: LogStats {
                records: stats.records,
                captured: capture.captured,
                filtered: capture.range_filtered,
                deduped: capture.deduped,
                folded: capture.folded,
                frames: stats.frames,
                compressed_bits: stats.payload_bits,
                wire_bits: stats.wire_bits,
                bytes_per_instruction: stats.payload_bits as f64 / 8.0 / instructions as f64,
                wire_bytes_per_instruction: stats.wire_bits as f64 / 8.0 / instructions as f64,
            },
            trace,
            degradation,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::run_lba;
    use lba_lifeguard::FindingKind;
    use lba_lifeguards::{AddrCheck, TaintCheck};
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn live_mode_detects_bugs() {
        let program = bugs::memory_bugs();
        let mut lg = AddrCheck::new();
        let report = run_live(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DoubleFree));
    }

    #[test]
    fn live_findings_match_deterministic_mode() {
        let config = SystemConfig::default();
        let program = bugs::exploit();
        let mut lg = TaintCheck::new();
        let live = run_live(&program, &mut lg, &config).unwrap();
        let mut lg = TaintCheck::new();
        let cosim = run_lba(&program, &mut lg, &config).unwrap();
        assert_eq!(live.findings, cosim.findings);
    }

    #[test]
    fn live_mode_measures_sub_byte_wire_traffic() {
        // The acceptance bar for the framed transport: with compression
        // on, the *live* path ships less than one real byte per
        // instruction, padding and headers included.
        let program = Benchmark::Gzip.build();
        let config = SystemConfig::default();
        let mut lg = AddrCheck::new();
        let report = run_live(&program, &mut lg, &config).unwrap();
        assert!(report.log.records > 0);
        assert!(report.log.frames > 0);
        assert!(
            report.log.wire_bytes_per_instruction < 1.0,
            "live wire traffic {:.3} B/inst must stay below one byte",
            report.log.wire_bytes_per_instruction
        );
        // And it agrees with the modeled channel's accounting of the same
        // program (both run the identical frame codec).
        let mut lg = AddrCheck::new();
        let cosim = run_lba(&program, &mut lg, &config).unwrap();
        assert_eq!(report.log.records, cosim.log.records);
        assert_eq!(report.log.compressed_bits, cosim.log.compressed_bits);
        assert_eq!(report.log.frames, cosim.log.frames);
        assert_eq!(report.log.wire_bits, cosim.log.wire_bits);
    }

    #[test]
    fn live_back_pressure_depth_follows_the_buffer_budget() {
        // Regression: the live mode used to hard-code a 64-frame queue and
        // silently ignore `buffer_bytes`. A sub-frame budget now means a
        // one-deep queue — maximal back-pressure — and the pipeline must
        // still complete, lossless, with the same wire stream the default
        // budget ships.
        let program = bugs::memory_bugs();
        let mut tight = SystemConfig::default();
        tight.log.buffer_bytes = 64;
        assert_eq!(tight.log.live_channel_frames(), 1);
        let mut lg = AddrCheck::new();
        let constrained = run_live(&program, &mut lg, &tight).unwrap();
        let mut lg = AddrCheck::new();
        let roomy = run_live(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert_eq!(constrained.findings, roomy.findings);
        assert_eq!(constrained.log.records, roomy.log.records);
        assert_eq!(constrained.log.wire_bits, roomy.log.wire_bits);
    }

    #[test]
    fn live_mode_honours_the_capture_filter() {
        let program = Benchmark::Gzip.build();
        let mut config = SystemConfig::default();
        config.log.filter = Some(lba_lifeguard::AddrRangeFilter::new(vec![(
            lba_mem::layout::HEAP_BASE,
            lba_mem::layout::HEAP_END,
        )]));
        let mut lg = AddrCheck::new();
        let live = run_live(&program, &mut lg, &config).unwrap();
        assert!(
            live.log.filtered > 0,
            "filter must drop events in live mode too"
        );
        let mut lg = AddrCheck::new();
        let cosim = run_lba(&program, &mut lg, &config).unwrap();
        assert_eq!(live.findings, cosim.findings);
        assert_eq!(live.log.filtered, cosim.log.filtered);
    }
}
