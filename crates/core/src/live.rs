//! Live monitoring: application and lifeguard on real OS threads.
//!
//! The timing results come from the deterministic co-simulation
//! ([`run_lba`](crate::run_lba)); this mode demonstrates the *functional*
//! pipeline with genuine parallelism — the machine produces records on one
//! thread while the lifeguard consumes them on another, connected by the
//! bounded SPSC channel from `lba-transport`. Integration tests assert the
//! findings match the deterministic mode exactly.

use std::thread;

use lba_cache::MemSystem;
use lba_cpu::{Machine, RunError};
use lba_isa::Program;
use lba_lifeguard::{DispatchEngine, Finding, Lifeguard};
use lba_transport::live;

use crate::config::SystemConfig;

/// Runs `program` on one thread and the lifeguard on another, returning
/// the lifeguard's findings.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine thread.
pub fn run_live(
    program: &Program,
    lifeguard: &mut dyn Lifeguard,
    config: &SystemConfig,
) -> Result<Vec<Finding>, RunError> {
    let (tx, rx) = live::channel(4096);
    let engine = DispatchEngine::new(config.dispatch);
    let machine_config = config.machine;

    let result = thread::scope(|scope| {
        let producer = scope.spawn(move || -> Result<(), RunError> {
            let mut machine = Machine::new(program, machine_config);
            let mut mem = MemSystem::new(config.mem_single());
            machine.run(&mut mem, |r| tx.send(r.record))?;
            Ok(())
            // `tx` drops here, closing the channel.
        });

        // Consume on this thread: shadow-cost accounting still needs a
        // MemSystem, but live mode is functional — timing is not reported.
        let mut mem = MemSystem::new(config.mem_dual());
        let mut findings = Vec::new();
        while let Some(record) = rx.recv() {
            engine.deliver(lifeguard, &record, &mut mem, 1, &mut findings);
        }
        engine.finish(lifeguard, &mut mem, 1, &mut findings);

        producer.join().expect("producer thread must not panic")?;
        Ok(findings)
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::run_lba;
    use lba_lifeguard::FindingKind;
    use lba_lifeguards::{AddrCheck, TaintCheck};
    use lba_workloads::bugs;

    #[test]
    fn live_mode_detects_bugs() {
        let program = bugs::memory_bugs();
        let mut lg = AddrCheck::new();
        let findings = run_live(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert!(findings.iter().any(|f| f.kind == FindingKind::DoubleFree));
    }

    #[test]
    fn live_findings_match_deterministic_mode() {
        let config = SystemConfig::default();
        let program = bugs::exploit();
        let mut lg = TaintCheck::new();
        let live = run_live(&program, &mut lg, &config).unwrap();
        let mut lg = TaintCheck::new();
        let cosim = run_lba(&program, &mut lg, &config).unwrap();
        assert_eq!(live, cosim.findings);
    }
}
