//! The LBA co-simulation: two decoupled cores coordinating through the
//! log buffer.

use lba_cache::MemSystem;
use lba_compress::{BitReader, BitWriter, LogCompressor, LogDecompressor};
use lba_cpu::{Machine, RunError, StepOutcome};
use lba_isa::Program;
use lba_lifeguard::{DispatchEngine, Finding, Lifeguard};
use lba_record::{EventKind, EventRecord, TraceStats, RAW_RECORD_BYTES};
use lba_transport::LogBufferModel;

use crate::config::SystemConfig;
use crate::report::{LogStats, Mode, RunReport, StallBreakdown};

/// The lifeguard core's MemSystem index (the application core is 0, which
/// is the machine's default).
const LG_CORE: usize = 1;

/// Bits per transferred cache line of log data.
const LINE_BITS: u64 = 64 * 8;

struct Cosim<'a> {
    mem: MemSystem,
    buffer: LogBufferModel,
    engine: DispatchEngine,
    lifeguard: &'a mut dyn Lifeguard,
    findings: Vec<Finding>,
    /// Application-core clock (cycles).
    t_app: u64,
    /// Lifeguard-core clock (cycles).
    t_lg: u64,
    /// Pending log bits not yet accounted as line transfers.
    line_accum: u64,
    line_transfer_cycles: u64,
    stalls: StallBreakdown,
}

impl Cosim<'_> {
    /// Consumes one buffered entry on the lifeguard core, advancing its
    /// clock. Returns `false` when the buffer is empty.
    fn consume_one(&mut self) -> bool {
        let Some(entry) = self.buffer.pop() else {
            return false;
        };
        // The lifeguard cannot read an entry before it was produced.
        self.t_lg = self.t_lg.max(entry.ready_at);
        self.t_lg += self.engine.deliver(
            self.lifeguard,
            &entry.record,
            &mut self.mem,
            LG_CORE,
            &mut self.findings,
        );
        true
    }

    /// Drains the buffer completely (syscall stall and end-of-program).
    fn drain(&mut self) {
        while self.consume_one() {}
    }
}

/// Runs `program` under LBA: the application executes on core 0 while the
/// lifeguard consumes the compressed log on core 1.
///
/// The two cores are decoupled (per §2 of the paper): the application only
/// waits when (i) the log buffer is full — back-pressure — or (ii) it
/// enters a syscall and the OS enforces the containment policy by draining
/// the log first. End-to-end time is the later of the two core clocks.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine.
///
/// # Panics
///
/// Panics if `config.log.verify_compression` is set and the compressed
/// stream fails to round-trip (a compressor bug, not a user error).
pub fn run_lba(
    program: &Program,
    lifeguard: &mut dyn Lifeguard,
    config: &SystemConfig,
) -> Result<RunReport, RunError> {
    let mut machine = Machine::new(program, config.machine);
    let mut compressor = LogCompressor::new();
    let mut bits_out = BitWriter::new();
    let mut trace = TraceStats::new();
    let mut verify_log: Vec<EventRecord> = Vec::new();

    let mut sim = Cosim {
        mem: MemSystem::new(config.mem_dual()),
        buffer: LogBufferModel::new(config.log.buffer_bytes),
        engine: DispatchEngine::new(config.dispatch),
        lifeguard,
        findings: Vec::new(),
        t_app: 0,
        t_lg: 0,
        line_accum: 0,
        line_transfer_cycles: config.log.line_transfer_cycles,
        stalls: StallBreakdown::default(),
    };
    let mut filtered: u64 = 0;

    loop {
        match machine.step(&mut sim.mem)? {
            StepOutcome::Finished => break,
            StepOutcome::Retired(r) => {
                sim.t_app += r.cycles;
                trace.observe(&r.record);

                // Capture-side address-range filter (extension).
                if let Some(filter) = &config.log.filter {
                    if !filter.passes(&r.record) {
                        filtered += 1;
                        continue;
                    }
                }

                // Compression engine (hardware: no app cycles, but the
                // compressed bytes occupy shared-L2 bandwidth).
                let bits = if config.log.compression {
                    compressor.encode(&r.record, &mut bits_out)
                } else {
                    compressor.encode(&r.record, &mut bits_out); // stats only
                    (RAW_RECORD_BYTES * 8) as u64
                };
                if config.log.verify_compression {
                    verify_log.push(r.record);
                }
                sim.line_accum += bits;
                while sim.line_accum >= LINE_BITS {
                    sim.line_accum -= LINE_BITS;
                    // One line written by capture, later read by dispatch.
                    sim.t_app += sim.line_transfer_cycles;
                    sim.t_lg += sim.line_transfer_cycles;
                }

                // Back-pressure: wait (by advancing the consumer) until the
                // entry fits.
                if !sim.buffer.fits(bits) {
                    let before = sim.t_app;
                    while !sim.buffer.fits(bits) && sim.consume_one() {}
                    sim.t_app = sim.t_app.max(sim.t_lg);
                    sim.stalls.buffer_full_cycles += sim.t_app - before;
                }
                sim.buffer
                    .try_push(r.record, bits, sim.t_app)
                    .expect("space was freed above");

                // Containment: stall the syscall until the lifeguard has
                // checked everything that precedes it.
                if r.record.kind == EventKind::Syscall && config.log.syscall_stall {
                    let before = sim.t_app;
                    sim.drain();
                    sim.t_app = sim.t_app.max(sim.t_lg);
                    sim.stalls.syscall_stall_cycles += sim.t_app - before;
                    sim.stalls.syscalls += 1;
                } else if !config.log.decoupled {
                    // Lock-step ablation: synchronise after every record.
                    sim.drain();
                    sim.t_app = sim.t_app.max(sim.t_lg);
                }
            }
        }
    }

    // End of program: the lifeguard finishes the remaining log and runs its
    // final checks.
    sim.drain();
    sim.t_lg += sim.engine.finish(sim.lifeguard, &mut sim.mem, LG_CORE, &mut sim.findings);

    if config.log.verify_compression {
        let bytes = bits_out.into_bytes();
        let mut reader = BitReader::new(&bytes);
        let mut decompressor = LogDecompressor::new();
        for (i, expected) in verify_log.iter().enumerate() {
            let got = decompressor
                .decode(&mut reader)
                .unwrap_or_else(|e| panic!("decompression failed at record {i}: {e}"));
            assert_eq!(got, *expected, "compression round-trip mismatch at record {i}");
        }
    }

    let stats = compressor.stats();
    let instructions = trace.instructions().max(1);
    Ok(RunReport {
        program: program.name().to_string(),
        mode: Mode::Lba,
        total_cycles: sim.t_app.max(sim.t_lg),
        app_cycles: sim.t_app,
        lifeguard_cycles: sim.t_lg,
        trace,
        findings: sim.findings,
        log: LogStats {
            records: stats.records,
            filtered,
            compressed_bits: stats.bits,
            bytes_per_instruction: stats.bits as f64 / 8.0 / instructions as f64,
        },
        stalls: sim.stalls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_dbi, run_unmonitored};
    use lba_lifeguard::FindingKind;
    use lba_lifeguards::{AddrCheck, LockSet, TaintCheck};
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn lba_slower_than_baseline_faster_than_dbi() {
        let program = Benchmark::Gzip.build();
        let config = SystemConfig::default();
        let base = run_unmonitored(&program, &config).unwrap();

        let mut lg = AddrCheck::new();
        let lba = run_lba(&program, &mut lg, &config).unwrap();
        let mut lg = AddrCheck::new();
        let dbi = run_dbi(&program, &mut lg, &config).unwrap();

        let lba_x = lba.slowdown_vs(&base);
        let dbi_x = dbi.slowdown_vs(&base);
        assert!(lba_x > 1.0, "monitoring is not free: {lba_x:.2}");
        assert!(dbi_x > 2.0 * lba_x, "LBA ({lba_x:.1}x) must beat DBI ({dbi_x:.1}x) well");
    }

    #[test]
    fn lba_detects_planted_memory_bugs() {
        let program = bugs::memory_bugs();
        let mut lg = AddrCheck::new();
        let report = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
        use FindingKind::*;
        for kind in [UnallocatedAccess, DoubleFree, InvalidFree, Leak] {
            assert!(report.findings_of(kind).next().is_some(), "missing {kind}");
        }
    }

    #[test]
    fn lba_detects_exploit() {
        let program = bugs::exploit();
        let mut lg = TaintCheck::new();
        let report = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert!(report.findings_of(FindingKind::TaintedJump).next().is_some());
    }

    #[test]
    fn lba_detects_data_race() {
        let program = bugs::data_race();
        let mut lg = LockSet::new();
        let report = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert!(report.findings_of(FindingKind::DataRace).next().is_some());
    }

    #[test]
    fn clean_benchmarks_have_no_findings() {
        let config = SystemConfig::default();
        for benchmark in [Benchmark::Gzip, Benchmark::Water] {
            let program = benchmark.build();
            let mut addr = AddrCheck::new();
            let report = run_lba(&program, &mut addr, &config).unwrap();
            assert!(
                report.findings.is_empty(),
                "{}/addrcheck: {:?}",
                benchmark.name(),
                report.findings
            );
            let mut lock = LockSet::new();
            let report = run_lba(&program, &mut lock, &config).unwrap();
            assert!(
                report.findings.is_empty(),
                "{}/lockset: {:?}",
                benchmark.name(),
                report.findings
            );
        }
    }

    #[test]
    fn compression_round_trip_verified_inline() {
        let program = Benchmark::Tidy.build();
        let mut config = SystemConfig::default();
        config.log.verify_compression = true;
        let mut lg = AddrCheck::new();
        // run_lba panics internally if the round-trip fails.
        let report = run_lba(&program, &mut lg, &config).unwrap();
        assert!(report.log.records > 0);
    }

    #[test]
    fn compressed_log_is_below_one_byte_per_instruction() {
        let config = SystemConfig::default();
        let program = Benchmark::Gzip.build();
        let mut lg = AddrCheck::new();
        let report = run_lba(&program, &mut lg, &config).unwrap();
        assert!(
            report.log.bytes_per_instruction < 1.0,
            "got {:.3} B/inst",
            report.log.bytes_per_instruction
        );
    }

    #[test]
    fn tiny_buffer_causes_back_pressure() {
        let program = Benchmark::Bc.build();
        let mut config = SystemConfig::default();
        config.log.buffer_bytes = 64;
        let mut lg = TaintCheck::new();
        let report = run_lba(&program, &mut lg, &config).unwrap();
        assert!(report.stalls.buffer_full_cycles > 0, "64-byte buffer must stall");
    }

    #[test]
    fn syscall_stalls_are_charged() {
        let program = Benchmark::Gs.build();
        let config = SystemConfig::default();
        let mut lg = AddrCheck::new();
        let report = run_lba(&program, &mut lg, &config).unwrap();
        assert!(report.stalls.syscalls > 0);
        assert!(report.stalls.syscall_stall_cycles > 0);
    }

    #[test]
    fn lockstep_is_no_faster_than_decoupled() {
        let program = Benchmark::Bc.build();
        let mut config = SystemConfig::default();
        let mut lg = TaintCheck::new();
        let decoupled = run_lba(&program, &mut lg, &config).unwrap();
        config.log.decoupled = false;
        let mut lg = TaintCheck::new();
        let lockstep = run_lba(&program, &mut lg, &config).unwrap();
        assert!(lockstep.total_cycles >= decoupled.total_cycles);
    }

    #[test]
    fn heap_filter_cuts_lifeguard_work() {
        let program = Benchmark::Gzip.build();
        let config = SystemConfig::default();
        let mut lg = AddrCheck::new();
        let unfiltered = run_lba(&program, &mut lg, &config).unwrap();

        let mut filtered_cfg = SystemConfig::default();
        filtered_cfg.log.filter = Some(lba_lifeguard::AddrRangeFilter::new(vec![(
            lba_mem::layout::HEAP_BASE,
            lba_mem::layout::HEAP_END,
        )]));
        let mut lg = AddrCheck::new();
        let filtered = run_lba(&program, &mut lg, &filtered_cfg).unwrap();

        assert!(filtered.log.filtered > 0, "filter must drop events");
        assert!(
            filtered.lifeguard_cycles < unfiltered.lifeguard_cycles,
            "filtering must reduce lifeguard time"
        );
        // Heap-range filtering is sound for AddrCheck: same findings.
        assert_eq!(filtered.findings, unfiltered.findings);
    }
}
