//! The LBA co-simulation: two decoupled cores coordinating through the
//! framed log channel.

use lba_cache::MemSystem;
use lba_compress::FRAME_LINE_BYTES;
use lba_cpu::{Machine, RunError, StepOutcome};
use lba_isa::Program;
use lba_lifeguard::{DegradationRequest, DispatchEngine, Finding, Lifeguard};
use lba_record::EventRecord;
use lba_transport::{modeled_channel, FaultInjector, LoadSample, LogChannel, PushOutcome};

use crate::config::SystemConfig;
use crate::pipeline::{Producer, ProducerLink};
use crate::report::{LogStats, Mode, PipelineReport, RunReport, StallBreakdown};

/// The lifeguard core's MemSystem index (the application core is 0, which
/// is the machine's default).
const LG_CORE: usize = 1;

/// Bits per transferred cache line of log data.
const LINE_BITS: u64 = FRAME_LINE_BYTES as u64 * 8;

/// Generic over the channel so the hot loop devirtualises: `run_lba`
/// instantiates it with [`ModeledFrameChannel`] and the codec inlines into
/// the push/pop paths, while the `LogChannel` bound keeps the transport
/// contract the single source of truth.
struct Cosim<'a, C: LogChannel> {
    mem: MemSystem,
    channel: C,
    engine: DispatchEngine,
    lifeguard: &'a mut dyn Lifeguard,
    findings: Vec<Finding>,
    /// Application-core clock (cycles).
    t_app: u64,
    /// Lifeguard-core clock (cycles).
    t_lg: u64,
    line_transfer_cycles: u64,
    /// Frame-granular consumption (default) versus the per-record baseline.
    batch: bool,
    stalls: StallBreakdown,
    /// The latest analysis-side degradation request polled off the
    /// lifeguard after a delivery, awaiting pickup by the producer.
    pending_request: Option<DegradationRequest>,
}

impl<C: LogChannel> Cosim<'_, C> {
    /// Charges both cores the shared-L2 occupancy of a shipped frame:
    /// written line by line by the capture engine, later read by dispatch.
    /// Returns the cycles charged to each clock.
    fn charge_lines(&mut self, wire_bits: u64) -> u64 {
        let cycles = (wire_bits / LINE_BITS) * self.line_transfer_cycles;
        self.t_app += cycles;
        self.t_lg += cycles;
        cycles
    }

    /// Consumes one channel record on the lifeguard core, advancing its
    /// clock. Returns `false` when the channel is empty.
    fn consume_one(&mut self) -> bool {
        let Some(popped) = self.channel.pop_record() else {
            return false;
        };
        // The lifeguard cannot read a record before its frame shipped.
        self.t_lg = self.t_lg.max(popped.ready_at);
        self.t_lg += self.engine.deliver(
            self.lifeguard,
            &popped.record,
            &mut self.mem,
            LG_CORE,
            &mut self.findings,
        );
        if let Some(req) = self.engine.poll_degradation(self.lifeguard) {
            self.pending_request = Some(req);
        }
        true
    }

    /// Consumes one whole frame on the lifeguard core, advancing its clock.
    /// Returns `false` when the channel is empty.
    ///
    /// Cycle-equivalent to popping the frame's records one at a time: every
    /// record of a frame shares its `ready_at` (so the clock catch-up
    /// happens once), handler costs are additive, and the frame's buffer
    /// lines free at the same point — after its last record is consumed.
    fn consume_frame(&mut self) -> bool {
        let Some(frame) = self.channel.pop_frame() else {
            return false;
        };
        self.t_lg = self.t_lg.max(frame.ready_at);
        self.t_lg += self.engine.deliver_batch(
            self.lifeguard,
            frame.records,
            &mut self.mem,
            LG_CORE,
            &mut self.findings,
        );
        if let Some(req) = self.engine.poll_degradation(self.lifeguard) {
            self.pending_request = Some(req);
        }
        true
    }

    /// Consumes the next unit of log — a frame or a record, per the
    /// configured granularity.
    fn consume(&mut self) -> bool {
        if self.batch {
            self.consume_frame()
        } else {
            self.consume_one()
        }
    }

    /// Resolves producer back-pressure: the lifeguard drains records until
    /// the parked frame is admitted, and the application clock absorbs the
    /// wait.
    fn resolve_back_pressure(&mut self) {
        let before = self.t_app;
        // Line-transfer cycles for the admitted frame are the ordinary
        // shipping cost every frame pays; keep them out of the stall
        // counter.
        let mut shipped_cycles = 0;
        while self.channel.has_parked() {
            let stamp = self.t_app.max(self.t_lg);
            if let Some(wire_bits) = self.channel.retry_parked(stamp) {
                shipped_cycles += self.charge_lines(wire_bits);
                continue;
            }
            assert!(
                self.consume(),
                "a parked frame must be admitted once the buffer drains"
            );
        }
        self.t_app = self.t_app.max(self.t_lg);
        self.stalls.buffer_full_cycles += (self.t_app - before).saturating_sub(shipped_cycles);
    }

    /// Applies a producer-side push/flush outcome to the clocks.
    fn absorb(&mut self, outcome: PushOutcome) {
        match outcome {
            PushOutcome::Buffered => {}
            PushOutcome::Sealed { wire_bits } => {
                self.charge_lines(wire_bits);
            }
            PushOutcome::BackPressure { .. } => self.resolve_back_pressure(),
        }
    }

    /// Drains the channel completely, parked frames included (syscall
    /// stall and end-of-program). Loops until the channel reports
    /// [`drained`](LogChannel::drained), not merely until one pop comes
    /// back empty: under fault injection a pop refusal models a stalled
    /// consumer, and mistaking it for emptiness would truncate the drain
    /// and lose findings. Injected stall bursts are bounded, so the loop
    /// always terminates.
    fn drain(&mut self) {
        loop {
            if self.consume() {
                continue;
            }
            let stamp = self.t_app.max(self.t_lg);
            if let Some(wire_bits) = self.channel.retry_parked(stamp) {
                self.charge_lines(wire_bits);
                continue;
            }
            if self.channel.drained() {
                break;
            }
        }
    }
}

/// The co-simulation's transport plumbing under the shared [`Producer`]:
/// pushes and flushes absorb modeled timing, syscall containment drains
/// the log on the application clock, and the lock-step ablation
/// synchronises the two clocks after every record.
impl<C: LogChannel> ProducerLink for Cosim<'_, C> {
    fn ship(&mut self, rec: &EventRecord) {
        let outcome = self.channel.push_record(rec, self.t_app);
        self.absorb(outcome);
    }

    fn on_engage(&mut self) {
        let outcome = self.channel.flush(self.t_app);
        self.absorb(outcome);
        self.channel.mark_degraded(true);
    }

    fn on_disengage(&mut self) {
        let outcome = self.channel.flush(self.t_app);
        self.absorb(outcome);
        self.channel.mark_degraded(false);
    }

    fn load_sample(&self) -> LoadSample {
        self.channel.load_sample()
    }

    fn finding_count(&self) -> u64 {
        self.findings.len() as u64
    }

    fn contain_syscall(&mut self) {
        // Flush first: any back-pressure it hits is buffer stall, kept
        // disjoint from the containment stall measured below.
        let outcome = self.channel.flush(self.t_app);
        self.absorb(outcome);
        let before = self.t_app;
        self.drain();
        self.t_app = self.t_app.max(self.t_lg);
        self.stalls.syscall_stall_cycles += self.t_app - before;
        self.stalls.syscalls += 1;
    }

    fn lockstep(&mut self) {
        // Synchronise after every record, paying a one-record frame each
        // time.
        let outcome = self.channel.flush(self.t_app);
        self.absorb(outcome);
        self.drain();
        self.t_app = self.t_app.max(self.t_lg);
    }

    fn take_degradation_request(&mut self) -> Option<DegradationRequest> {
        self.pending_request.take()
    }
}

/// Runs `program` under LBA: the application executes on core 0 while the
/// lifeguard consumes the compressed, framed log on core 1.
///
/// The two cores are decoupled (per §2 of the paper): the application only
/// waits when (i) the log buffer is full — back-pressure — or (ii) it
/// enters a syscall and the OS enforces the containment policy by flushing
/// the open frame and draining the log first. End-to-end time is the later
/// of the two core clocks. The transport is driven entirely through the
/// [`LogChannel`] trait; this run plugs in the deterministic
/// [`ModeledFrameChannel`](lba_transport::ModeledFrameChannel), which runs the real frame codec so the timing
/// model ships the same wire bytes as the live mode.
///
/// Consumption is frame-granular by default: the lifeguard takes each
/// frame as one slice ([`LogChannel::pop_frame`]) and the dispatch engine
/// delivers it as a batch, amortising per-record bookkeeping without
/// changing findings, wire bits or cycle totals (pinned by the
/// `tests/batching.rs` proptest). `config.log.batch_dispatch = false`
/// selects the per-record baseline path.
///
/// Capture runs one filter pass per retired record
/// ([`LogConfig::capture_filter`](crate::LogConfig::capture_filter)): the
/// optional address-range filter composed with the idempotency window,
/// which drops duplicate load/stores the lifeguard's declared contract
/// (`Lifeguard::idempotency`) proves re-derive an already-reached
/// verdict — before they cost compression, wire, or dispatch. Findings
/// are proptest-pinned identical to unfiltered runs
/// (`tests/idempotency.rs`).
///
/// New code should prefer the unified [`Run`](crate::Run) builder
/// (`RunMode::Lba`), which validates mode/monitor pairings against the
/// registry; this free function remains the mode's direct entry point.
///
/// # Errors
///
/// Returns [`RunError::LogBufferTooSmall`] when `config.log.buffer_bytes`
/// cannot hold even one cache-line frame, and propagates any [`RunError`]
/// from the machine.
///
/// # Panics
///
/// Panics if `config.log.verify_compression` is set and the framed stream
/// fails to round-trip (a codec bug, not a user error).
pub fn run_lba(
    program: &Program,
    lifeguard: &mut dyn Lifeguard,
    config: &SystemConfig,
) -> Result<RunReport, RunError> {
    config.log.validate_framing()?;
    if config.log.buffer_bytes < FRAME_LINE_BYTES as u64 {
        return Err(RunError::LogBufferTooSmall {
            buffer_bytes: config.log.buffer_bytes,
            frame_bytes: FRAME_LINE_BYTES as u64,
        });
    }
    let mut machine = Machine::new(program, config.machine);
    // The shared producer stage chain: trace accounting, the capture-pass
    // predicate (address-range filter composed with the per-lifeguard
    // idempotency window, with a widen reserve under adaptive capture),
    // the adaptive controller when configured, and syscall containment.
    let mut producer = Producer::single(lifeguard, config);

    // Batched consumption pairs with the zero-copy channel (the hardware
    // decompressor's work is modeled, not re-run in host software); the
    // per-record baseline keeps the software-decoding channel. Both ship
    // identical wire bytes; `verify_compression` decodes and cross-checks
    // either way.
    let mut channel = modeled_channel(
        config.log.buffer_bytes,
        config.log.frame_config(),
        config.log.batch_dispatch,
        config.log.verify_compression,
    );
    // Flight recorder: mirror every sealed frame into stream 0 of the
    // configured recording directory.
    if let Some(record) = &config.log.record_to {
        channel.tee_into(crate::recorder::open_sink(record, 0)?);
    }
    // The transport always runs behind the fault injector; the default
    // profile is quiet (pure delegation), so an uninjected run pays one
    // pass-through branch per pop and nothing else.
    let channel = FaultInjector::new(channel, config.log.fault.unwrap_or_default());
    let mut sim = Cosim {
        mem: MemSystem::new(config.mem_dual()),
        channel,
        engine: DispatchEngine::new(config.dispatch),
        lifeguard,
        findings: Vec::new(),
        t_app: 0,
        t_lg: 0,
        line_transfer_cycles: config.log.line_transfer_cycles,
        batch: config.log.batch_dispatch,
        stalls: StallBreakdown::default(),
        pending_request: None,
    };

    // The run loop is now one stage-chain call per retired record: the
    // shared producer decides what ships, when fidelity transitions and
    // how syscalls contain; the Cosim link absorbs the modeled timing.
    loop {
        match machine.step(&mut sim.mem)? {
            StepOutcome::Finished => break,
            StepOutcome::Retired(r) => {
                sim.t_app += r.cycles;
                producer.observe(&r.record, &mut sim);
            }
        }
    }

    // End of stream: the producer snaps back out of any open degraded
    // interval and settles outstanding fold counts; then flush the
    // partial frame, let the lifeguard finish the remaining log, and run
    // its final checks.
    let finish = producer.finish(&mut sim);
    let outcome = sim.channel.flush(sim.t_app);
    sim.absorb(outcome);
    sim.drain();
    sim.t_lg += sim
        .engine
        .finish(sim.lifeguard, &mut sim.mem, LG_CORE, &mut sim.findings);

    // Close the flight recording (End record + flush) and surface any
    // mirror error the channel latched mid-run.
    crate::recorder::finish_tee(sim.channel.inner_mut().take_tee())?;

    let stats = sim.channel.stats();
    Ok(RunReport {
        program: program.name().to_string(),
        mode: Mode::Lba,
        total_cycles: sim.t_app.max(sim.t_lg),
        app_cycles: sim.t_app,
        lifeguard_cycles: sim.t_lg,
        pipeline: PipelineReport {
            findings: sim.findings,
            log: LogStats::from_channel(stats, finish.capture, finish.trace.instructions()),
            capture: finish.capture,
            degradation: finish.degradation,
        },
        trace: finish.trace,
        stalls: sim.stalls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_dbi, run_unmonitored};
    use lba_lifeguard::FindingKind;
    use lba_lifeguards::{AddrCheck, LockSet, TaintCheck};
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn lba_slower_than_baseline_faster_than_dbi() {
        let program = Benchmark::Gzip.build();
        let config = SystemConfig::default();
        let base = run_unmonitored(&program, &config).unwrap();

        let mut lg = AddrCheck::new();
        let lba = run_lba(&program, &mut lg, &config).unwrap();
        let mut lg = AddrCheck::new();
        let dbi = run_dbi(&program, &mut lg, &config).unwrap();

        let lba_x = lba.slowdown_vs(&base);
        let dbi_x = dbi.slowdown_vs(&base);
        assert!(lba_x > 1.0, "monitoring is not free: {lba_x:.2}");
        assert!(
            dbi_x > 2.0 * lba_x,
            "LBA ({lba_x:.1}x) must beat DBI ({dbi_x:.1}x) well"
        );
    }

    #[test]
    fn lba_detects_planted_memory_bugs() {
        let program = bugs::memory_bugs();
        let mut lg = AddrCheck::new();
        let report = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
        use FindingKind::*;
        for kind in [UnallocatedAccess, DoubleFree, InvalidFree, Leak] {
            assert!(report.findings_of(kind).next().is_some(), "missing {kind}");
        }
    }

    #[test]
    fn lba_detects_exploit() {
        let program = bugs::exploit();
        let mut lg = TaintCheck::new();
        let report = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert!(report
            .findings_of(FindingKind::TaintedJump)
            .next()
            .is_some());
    }

    #[test]
    fn lba_detects_data_race() {
        let program = bugs::data_race();
        let mut lg = LockSet::new();
        let report = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
        assert!(report.findings_of(FindingKind::DataRace).next().is_some());
    }

    #[test]
    fn clean_benchmarks_have_no_findings() {
        let config = SystemConfig::default();
        for benchmark in [Benchmark::Gzip, Benchmark::Water] {
            let program = benchmark.build();
            let mut addr = AddrCheck::new();
            let report = run_lba(&program, &mut addr, &config).unwrap();
            assert!(
                report.findings.is_empty(),
                "{}/addrcheck: {:?}",
                benchmark.name(),
                report.findings
            );
            let mut lock = LockSet::new();
            let report = run_lba(&program, &mut lock, &config).unwrap();
            assert!(
                report.findings.is_empty(),
                "{}/lockset: {:?}",
                benchmark.name(),
                report.findings
            );
        }
    }

    #[test]
    fn compression_round_trip_verified_inline() {
        let program = Benchmark::Tidy.build();
        let mut config = SystemConfig::default();
        config.log.verify_compression = true;
        let mut lg = AddrCheck::new();
        // The channel panics internally if any frame fails to round-trip.
        let report = run_lba(&program, &mut lg, &config).unwrap();
        assert!(report.log.records > 0);
    }

    #[test]
    fn compressed_log_is_below_one_byte_per_instruction() {
        let config = SystemConfig::default();
        let program = Benchmark::Gzip.build();
        let mut lg = AddrCheck::new();
        let report = run_lba(&program, &mut lg, &config).unwrap();
        assert!(
            report.log.bytes_per_instruction < 1.0,
            "got {:.3} B/inst",
            report.log.bytes_per_instruction
        );
        // The claim must survive framing: headers and line padding
        // included, the wire stays under a byte per instruction.
        assert!(
            report.log.wire_bytes_per_instruction < 1.0,
            "got {:.3} wire B/inst",
            report.log.wire_bytes_per_instruction
        );
        assert!(report.log.wire_bits >= report.log.compressed_bits);
        assert!(report.log.frames > 0);
    }

    #[test]
    fn tiny_buffer_causes_back_pressure() {
        let program = Benchmark::Bc.build();
        let mut config = SystemConfig::default();
        config.log.buffer_bytes = 64;
        let mut lg = TaintCheck::new();
        let report = run_lba(&program, &mut lg, &config).unwrap();
        assert!(
            report.stalls.buffer_full_cycles > 0,
            "64-byte buffer must stall"
        );
    }

    #[test]
    fn sub_frame_buffer_is_a_config_error_not_a_panic() {
        // Regression: this configuration used to reach deep into the
        // transport before failing; it must be a descriptive error.
        let program = Benchmark::Bc.build();
        let mut config = SystemConfig::default();
        config.log.buffer_bytes = 1;
        let mut lg = AddrCheck::new();
        let err = run_lba(&program, &mut lg, &config).unwrap_err();
        assert_eq!(
            err,
            RunError::LogBufferTooSmall {
                buffer_bytes: 1,
                frame_bytes: 64
            },
            "expected a log-buffer config error"
        );
        assert!(
            err.to_string().contains("cannot hold"),
            "descriptive message: {err}"
        );
    }

    #[test]
    fn zero_records_per_frame_is_a_config_error_not_a_panic() {
        let program = Benchmark::Bc.build();
        let mut config = SystemConfig::default();
        config.log.records_per_frame = 0;
        let mut lg = AddrCheck::new();
        let err = run_lba(&program, &mut lg, &config).unwrap_err();
        assert_eq!(err, RunError::ZeroRecordsPerFrame);
        let mut lg = AddrCheck::new();
        let err = crate::live::run_live(&program, &mut lg, &config).unwrap_err();
        assert_eq!(err, RunError::ZeroRecordsPerFrame);
    }

    #[test]
    fn syscall_stalls_are_charged() {
        let program = Benchmark::Gs.build();
        let config = SystemConfig::default();
        let mut lg = AddrCheck::new();
        let report = run_lba(&program, &mut lg, &config).unwrap();
        assert!(report.stalls.syscalls > 0);
        assert!(report.stalls.syscall_stall_cycles > 0);
    }

    #[test]
    fn lockstep_is_no_faster_than_decoupled() {
        let program = Benchmark::Bc.build();
        let mut config = SystemConfig::default();
        let mut lg = TaintCheck::new();
        let decoupled = run_lba(&program, &mut lg, &config).unwrap();
        config.log.decoupled = false;
        let mut lg = TaintCheck::new();
        let lockstep = run_lba(&program, &mut lg, &config).unwrap();
        assert!(lockstep.total_cycles >= decoupled.total_cycles);
    }

    #[test]
    fn heap_filter_cuts_lifeguard_work() {
        let program = Benchmark::Gzip.build();
        let config = SystemConfig::default();
        let mut lg = AddrCheck::new();
        let unfiltered = run_lba(&program, &mut lg, &config).unwrap();

        let mut filtered_cfg = SystemConfig::default();
        filtered_cfg.log.filter = Some(lba_lifeguard::AddrRangeFilter::new(vec![(
            lba_mem::layout::HEAP_BASE,
            lba_mem::layout::HEAP_END,
        )]));
        let mut lg = AddrCheck::new();
        let filtered = run_lba(&program, &mut lg, &filtered_cfg).unwrap();

        assert!(filtered.log.filtered > 0, "filter must drop events");
        assert!(
            filtered.lifeguard_cycles < unfiltered.lifeguard_cycles,
            "filtering must reduce lifeguard time"
        );
        // Heap-range filtering is sound for AddrCheck: same findings.
        assert_eq!(filtered.findings, unfiltered.findings);
    }

    #[test]
    fn frame_size_trades_wire_overhead_for_lag() {
        // Bigger frames amortise header+padding: wire B/inst must not
        // increase when the batch grows.
        let program = Benchmark::Gzip.build();
        let mut small = SystemConfig::default();
        small.log.records_per_frame = 16;
        let mut big = SystemConfig::default();
        big.log.records_per_frame = 1024;
        let mut lg = AddrCheck::new();
        let small = run_lba(&program, &mut lg, &small).unwrap();
        let mut lg = AddrCheck::new();
        let big = run_lba(&program, &mut lg, &big).unwrap();
        assert!(
            big.log.wire_bytes_per_instruction <= small.log.wire_bytes_per_instruction,
            "1024-record frames ({:.3} B/inst) vs 16-record frames ({:.3} B/inst)",
            big.log.wire_bytes_per_instruction,
            small.log.wire_bytes_per_instruction
        );
        // Payload is identical either way: framing only changes overhead.
        assert_eq!(big.log.compressed_bits, small.log.compressed_bits);
        assert_eq!(big.findings, small.findings);
    }
}
