//! Flight-recorder glue: opening per-stream sinks for the run modes and
//! finishing them with errors folded into [`RunError`].

use lba_compress::CODEC_VERSION;
use lba_cpu::RunError;
use lba_record::SegmentWriter;
use lba_transport::{FrameSink, SinkError, StreamSink};

use crate::config::RecordConfig;

/// Opens the segmented stream sink for stream `stream` of a recording —
/// stream 0 for the single-channel modes, the shard index for the sharded
/// ones. The codec version of the running build is stamped into every
/// segment header so replay can refuse a mismatched stream.
pub(crate) fn open_sink(
    record: &RecordConfig,
    stream: u32,
) -> Result<Box<dyn FrameSink + Send>, RunError> {
    let writer = SegmentWriter::create(&record.dir, stream, CODEC_VERSION, record.stream_config())
        .map_err(|e| RunError::Recording {
            detail: e.to_string(),
        })?;
    Ok(Box::new(StreamSink::new(writer)))
}

/// Finishes a tee taken back from a channel: closes the stream (writing
/// its End record) and surfaces any mirror error the channel latched.
pub(crate) fn finish_tee(
    tee: Result<Option<Box<dyn FrameSink + Send>>, SinkError>,
) -> Result<(), RunError> {
    let recording = |e: SinkError| RunError::Recording {
        detail: e.to_string(),
    };
    match tee {
        Ok(Some(mut sink)) => sink.finish_sink().map_err(recording),
        Ok(None) => Ok(()),
        Err(e) => Err(recording(e)),
    }
}
